#include "serve/http_io.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "common/failpoint.h"

namespace pairwisehist {

namespace {

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Trim(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

}  // namespace

const std::string* HttpMessage::FindHeader(const std::string& name) const {
  for (const auto& h : headers) {
    if (EqualsIgnoreCase(h.first, name)) return &h.second;
  }
  return nullptr;
}

int HttpConn::ParseBuffered(HttpMessage* msg, Status* st) {
  msg->start_line.clear();
  msg->headers.clear();
  msg->body.clear();
  const size_t header_end = buf_.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    if (buf_.size() > kMaxHttpHeaderBytes) {
      *st = Status::OutOfRange("HTTP: headers exceed " +
                               std::to_string(kMaxHttpHeaderBytes) +
                               " bytes");
      return -1;
    }
    return 0;
  }
  if (header_end > kMaxHttpHeaderBytes) {
    *st = Status::OutOfRange("HTTP: headers exceed " +
                             std::to_string(kMaxHttpHeaderBytes) + " bytes");
    return -1;
  }

  // Parse start line + headers.
  const std::string head = buf_.substr(0, header_end);
  size_t line_start = 0;
  bool first = true;
  while (line_start <= head.size()) {
    size_t line_end = head.find("\r\n", line_start);
    if (line_end == std::string::npos) line_end = head.size();
    const std::string line = head.substr(line_start, line_end - line_start);
    if (first) {
      msg->start_line = line;
      first = false;
    } else if (!line.empty()) {
      const size_t colon = line.find(':');
      if (colon == std::string::npos) {
        *st = Status::InvalidArgument("HTTP: malformed header line");
        return -1;
      }
      msg->headers.emplace_back(Trim(line.substr(0, colon)),
                                Trim(line.substr(colon + 1)));
    }
    if (line_end == head.size()) break;
    line_start = line_end + 2;
  }
  if (msg->start_line.empty()) {
    *st = Status::InvalidArgument("HTTP: empty start line");
    return -1;
  }
  // Either "METHOD /path HTTP/x.y" (request) or "HTTP/x.y CODE text"
  // (response): three tokens with an HTTP-version at one end. Anything
  // else is not HTTP — reject instead of mis-routing garbage.
  {
    const size_t sp1 = msg->start_line.find(' ');
    const size_t sp2 =
        sp1 == std::string::npos ? sp1 : msg->start_line.find(' ', sp1 + 1);
    const bool request_shape =
        sp2 != std::string::npos &&
        msg->start_line.compare(sp2 + 1, 5, "HTTP/") == 0;
    const bool response_shape = msg->start_line.compare(0, 5, "HTTP/") == 0;
    if (!request_shape && !response_shape) {
      *st = Status::InvalidArgument("HTTP: malformed start line");
      return -1;
    }
  }

  // Body: exactly Content-Length bytes (0 when absent). The cap is
  // enforced here, before Read buffers a single body byte beyond it.
  size_t body_len = 0;
  if (const std::string* cl = msg->FindHeader("Content-Length")) {
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(cl->c_str(), &end, 10);
    if (end == cl->c_str() || *end != '\0' || errno == ERANGE) {
      *st = Status::InvalidArgument("HTTP: bad Content-Length");
      return -1;
    }
    if (v > kMaxHttpBodyBytes) {
      *st = Status::OutOfRange("HTTP: body of " + std::to_string(v) +
                               " bytes exceeds " +
                               std::to_string(kMaxHttpBodyBytes));
      return -1;
    }
    body_len = static_cast<size_t>(v);
  }
  const size_t msg_end = header_end + 4;
  if (buf_.size() < msg_end + body_len) return 0;
  msg->body = buf_.substr(msg_end, body_len);
  buf_.erase(0, msg_end + body_len);  // keep pipelined bytes for next Read
  return 1;
}

Status HttpConn::Read(HttpMessage* msg, bool* closed,
                      const ReadDeadlines& deadlines) {
  *closed = false;
  bool blocked = false;
  auto notify_block = [&]() -> Status {
    if (blocked || deadlines.on_block == nullptr || !*deadlines.on_block) {
      return Status::OK();
    }
    blocked = true;
    return (*deadlines.on_block)();
  };
  const auto start = std::chrono::steady_clock::now();
  auto last_progress = start;

  while (true) {
    Status st = Status::OK();
    const int parsed = ParseBuffered(msg, &st);
    if (parsed < 0) return st;
    if (parsed > 0) return Status::OK();
    if (deadlines.drain != nullptr &&
        deadlines.drain->load(std::memory_order_relaxed) && buf_.empty()) {
      *closed = true;  // between messages; drain closes the connection
      return Status::OK();
    }
    PH_RETURN_IF_ERROR(notify_block());
    struct pollfd pfd;
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("HTTP: poll failed");
    }
    if (deadlines.stop != nullptr &&
        deadlines.stop->load(std::memory_order_relaxed)) {
      return Status::Internal("HTTP: server stopping");
    }
    if (pr == 0) {
      // Timeout slice: re-check stop/drain and the idle budget.
      if (deadlines.idle_timeout_ms > 0) {
        const auto idle = std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - last_progress);
        if (idle.count() >=
            static_cast<int64_t>(deadlines.idle_timeout_ms)) {
          if (buf_.empty()) {
            *closed = true;  // reap the idle keep-alive connection
            return Status::OK();
          }
          return Status::DataLoss("HTTP: peer idle mid-message");
        }
      }
      continue;
    }
    char chunk[8192];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return Status::Internal("HTTP: recv failed");
    }
    if (n == 0) {
      if (buf_.empty()) {
        *closed = true;
        return Status::OK();
      }
      return Status::DataLoss("HTTP: connection closed mid-message");
    }
    buf_.append(chunk, static_cast<size_t>(n));
    last_progress = std::chrono::steady_clock::now();
  }
}

bool HttpConn::TryReadBuffered(HttpMessage* msg, Status* st) {
  *st = Status::OK();
  int parsed = ParseBuffered(msg, st);
  if (parsed != 0) return parsed > 0;
  // Opportunistic top-up: drain whatever already arrived, never wait.
  char chunk[8192];
  ssize_t n;
  while ((n = ::recv(fd_, chunk, sizeof(chunk), MSG_DONTWAIT)) > 0) {
    buf_.append(chunk, static_cast<size_t>(n));
    if (static_cast<size_t>(n) < sizeof(chunk)) break;
  }
  if (n < 0 && errno == EINTR) {
    // A signal beat the non-blocking recv; the buffered bytes still count.
  }
  parsed = ParseBuffered(msg, st);
  return parsed > 0;
}

Status HttpConn::Write(const std::string& data) {
  PH_RETURN_IF_ERROR(failpoint::Fire("http.send").status);
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_SNDTIMEO expired: the peer stopped draining its socket.
        return Status::Internal("HTTP: send timed out");
      }
      return Status::Internal("HTTP: send failed");
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace pairwisehist
