// Read coalescer: leader-based group commit for concurrent point queries.
//
// The first thread to submit while no batch is in flight becomes the
// leader: it (optionally) waits a short window for stragglers, drains the
// queue, and executes the whole group as one batch — so concurrent
// dashboard statements sharing an aggregation grid pay coverage +
// weighting once (the PR-5 batch win) instead of once per request.
// Threads that submit while a batch is in flight park on a condition
// variable and are picked up by the leader's next drain; the leader keeps
// draining until the queue is empty, then retires. Results are
// bit-identical to uncoalesced execution because batch execution itself
// is (see query/batch_exec.h).
#ifndef PAIRWISEHIST_SERVE_COALESCER_H_
#define PAIRWISEHIST_SERVE_COALESCER_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/ast.h"

namespace pairwisehist {

class ReadCoalescer {
 public:
  /// One submitted statement. The submitter owns the storage; `status`,
  /// `result` and `epoch` are filled by the executing leader before the
  /// submitter is released.
  struct Request {
    const std::string* sql = nullptr;
    QueryResult* result = nullptr;
    Status status = Status::OK();
    uint64_t epoch = 0;
    bool done = false;  ///< guarded by the coalescer mutex
  };

  /// Executes one drained group (size >= 1) as a batch, filling each
  /// request's status/result/epoch. Runs on the leader thread with no
  /// coalescer lock held.
  using BatchFn = std::function<void(const std::vector<Request*>&)>;

  struct Stats {
    uint64_t groups = 0;      ///< batches executed
    uint64_t statements = 0;  ///< total statements across groups
    uint64_t max_group = 0;   ///< largest single group
  };

  /// `window_us` > 0 makes the leader sleep that long before each drain,
  /// trading latency for larger groups; 0 (default) coalesces only
  /// requests that overlap an in-flight batch — no added latency.
  explicit ReadCoalescer(BatchFn fn, uint32_t window_us = 0);

  /// Blocks until `req` has been executed — by this thread as leader, or
  /// by a concurrent leader that drained it into a group.
  void Submit(Request* req);

  Stats stats() const;

 private:
  BatchFn fn_;
  uint32_t window_us_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Request*> queue_;
  bool leader_active_ = false;
  Stats stats_;
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_SERVE_COALESCER_H_
