#include "serve/plan_cache.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "query/sql_parser.h"

namespace pairwisehist {

PlanCache::PlanCache(size_t capacity, size_t shards) {
  const size_t n = std::max<size_t>(1, shards);
  per_shard_capacity_ = std::max<size_t>(1, capacity / n);
  shards_.reserve(n);
  alias_shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    alias_shards_.push_back(std::make_unique<AliasShard>());
  }
}

PlanCache::Shard& PlanCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

PlanCache::AliasShard& PlanCache::AliasShardFor(const std::string& raw) {
  return *alias_shards_[std::hash<std::string>{}(raw) % alias_shards_.size()];
}

std::optional<PreparedQuery> PlanCache::FindCached(
    const std::shared_ptr<const DbSnapshot>& snap, const std::string& key,
    bool* hit) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  for (Entry& e : shard.entries) {
    // Same snapshot object == same epoch: plans prepared against an
    // older (or newer) snapshot are not reusable for this request.
    if (e.snap.get() == snap.get() && e.key == key) {
      e.last_used = ++shard.tick;
      if (hit != nullptr) *hit = true;
      return e.pq;  // copy; entry keeps pinning the snapshot
    }
  }
  return std::nullopt;
}

StatusOr<PreparedQuery> PlanCache::Get(
    const std::shared_ptr<const DbSnapshot>& snap, const std::string& sql,
    bool* hit) {
  if (hit != nullptr) *hit = false;
  if (snap == nullptr) return Status::Internal("PlanCache: null snapshot");

  // Fast path: the exact request text was seen before, so the normalized
  // key is known without parsing.
  std::string key;
  {
    AliasShard& alias = AliasShardFor(sql);
    std::lock_guard<std::mutex> lock(alias.mu);
    auto it = alias.map.find(sql);
    if (it != alias.map.end()) key = it->second;
  }
  if (!key.empty()) {
    if (std::optional<PreparedQuery> cached = FindCached(snap, key, hit)) {
      return *std::move(cached);
    }
  }

  // Parse: the normalized round-trip SQL is the cache key, so syntactic
  // variants ("where x>1" vs "WHERE x > 1.0") share one entry.
  PH_ASSIGN_OR_RETURN(Query query, ParseSql(sql));
  if (key.empty()) {
    key = query.ToSql();
    AliasShard& alias = AliasShardFor(sql);
    std::lock_guard<std::mutex> lock(alias.mu);
    // Bound the alias index; wholesale reset is fine — aliases repopulate
    // on the next request and carry no pinned state.
    if (alias.map.size() >= 4 * per_shard_capacity_) alias.map.clear();
    alias.map.emplace(sql, key);
    // The normalized entry may exist already (inserted under a different
    // raw spelling).
    if (std::optional<PreparedQuery> cached = FindCached(snap, key, hit)) {
      return *std::move(cached);
    }
  }

  // Miss: prepare outside the shard lock (grid selection can take a
  // while), then publish. Concurrent misses on the same key may prepare
  // twice; the last insert wins, which is harmless — plans are
  // deterministic for a given (query, snapshot).
  PH_ASSIGN_OR_RETURN(PreparedQuery pq, snap->db.Prepare(std::move(query)));
  {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    Entry* slot = nullptr;
    for (Entry& e : shard.entries) {
      if (e.key == key) {  // stale epoch: replace in place
        slot = &e;
        break;
      }
    }
    if (slot == nullptr) {
      if (shard.entries.size() >= per_shard_capacity_) {
        slot = &*std::min_element(shard.entries.begin(), shard.entries.end(),
                                  [](const Entry& a, const Entry& b) {
                                    return a.last_used < b.last_used;
                                  });
      } else {
        shard.entries.emplace_back();
        slot = &shard.entries.back();
      }
    }
    slot->key = key;
    slot->snap = snap;
    slot->pq = pq;
    slot->last_used = ++shard.tick;
  }
  return pq;
}

void PlanCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->entries.clear();
  }
}

size_t PlanCache::size() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->entries.size();
  }
  return n;
}

}  // namespace pairwisehist
