// Minimal blocking HTTP/1.1 client with keep-alive, for the serve tests
// and the closed-loop bench. Numeric IPv4 hosts only (the embedded server
// is always reached as 127.0.0.1).
#ifndef PAIRWISEHIST_SERVE_HTTP_CLIENT_H_
#define PAIRWISEHIST_SERVE_HTTP_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "serve/http_io.h"
#include "serve/http_server.h"

namespace pairwisehist {

/// Retry policy for HttpClient::RequestWithRetry: capped exponential
/// backoff with decorrelated jitter. Only idempotent requests should use
/// it (queries are; appends are not unless the caller dedupes).
struct HttpRetryPolicy {
  uint32_t max_attempts = 4;
  uint32_t initial_backoff_ms = 10;
  uint32_t max_backoff_ms = 500;
  /// Jitter seed (deterministic per client for reproducible tests).
  uint64_t seed = 0x9e3779b97f4a7c15ULL;
};

class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient() { Close(); }
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Connects to `host`:`port` (host must be a numeric IPv4 address).
  Status Connect(const std::string& host, uint16_t port);

  /// Bounds how long a single send/recv may block (SO_SNDTIMEO /
  /// SO_RCVTIMEO on the socket). Applies to the current connection and
  /// any reconnects. 0 = wait forever (the default).
  void SetIoTimeout(uint32_t io_timeout_ms);

  /// Sends one request on the kept-alive connection and reads the
  /// response. Reconnects once if the server closed the connection.
  /// `headers` are extra request headers (e.g. {"X-Deadline-Ms","50"}).
  StatusOr<HttpResponse> Request(
      const std::string& method, const std::string& path,
      const std::string& body = "",
      const std::string& content_type = "application/json",
      const std::vector<std::pair<std::string, std::string>>& headers = {});

  /// Request() plus retry-on-overload for idempotent requests: retries
  /// connect/transport failures and 503 responses with capped exponential
  /// backoff + jitter, honoring a server Retry-After (seconds) when it is
  /// shorter than the computed backoff would allow. Non-503 responses
  /// (including other errors) return immediately.
  StatusOr<HttpResponse> RequestWithRetry(
      const std::string& method, const std::string& path,
      const std::string& body = "",
      const std::string& content_type = "application/json",
      const std::vector<std::pair<std::string, std::string>>& headers = {},
      const HttpRetryPolicy& policy = {});

  /// HTTP/1.1 pipelining: sends one request per body back-to-back in a
  /// single write, then reads the responses in order. A dashboard page
  /// firing all its tile statements down one connection pays the socket
  /// round trip once for the whole burst (and gives the server-side read
  /// coalescer concurrent statements to group). No reconnect on failure.
  StatusOr<std::vector<HttpResponse>> RequestPipelined(
      const std::string& method, const std::string& path,
      const std::vector<std::string>& bodies,
      const std::string& content_type = "application/json");

  void Close();
  bool connected() const { return conn_ != nullptr; }

  /// Transparent retries performed by RequestWithRetry so far.
  uint64_t retries() const { return retries_; }

 private:
  StatusOr<HttpResponse> RequestOnce(const std::string& wire);
  StatusOr<HttpResponse> ReadResponse();

  std::string host_;
  uint16_t port_ = 0;
  uint32_t io_timeout_ms_ = 0;
  uint64_t retries_ = 0;
  std::unique_ptr<HttpConn> conn_;
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_SERVE_HTTP_CLIENT_H_
