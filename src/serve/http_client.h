// Minimal blocking HTTP/1.1 client with keep-alive, for the serve tests
// and the closed-loop bench. Numeric IPv4 hosts only (the embedded server
// is always reached as 127.0.0.1).
#ifndef PAIRWISEHIST_SERVE_HTTP_CLIENT_H_
#define PAIRWISEHIST_SERVE_HTTP_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/http_io.h"
#include "serve/http_server.h"

namespace pairwisehist {

class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient() { Close(); }
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Connects to `host`:`port` (host must be a numeric IPv4 address).
  Status Connect(const std::string& host, uint16_t port);

  /// Sends one request on the kept-alive connection and reads the
  /// response. Reconnects once if the server closed the connection.
  StatusOr<HttpResponse> Request(
      const std::string& method, const std::string& path,
      const std::string& body = "",
      const std::string& content_type = "application/json");

  /// HTTP/1.1 pipelining: sends one request per body back-to-back in a
  /// single write, then reads the responses in order. A dashboard page
  /// firing all its tile statements down one connection pays the socket
  /// round trip once for the whole burst (and gives the server-side read
  /// coalescer concurrent statements to group). No reconnect on failure.
  StatusOr<std::vector<HttpResponse>> RequestPipelined(
      const std::string& method, const std::string& path,
      const std::vector<std::string>& bodies,
      const std::string& content_type = "application/json");

  void Close();
  bool connected() const { return conn_ != nullptr; }

 private:
  StatusOr<HttpResponse> RequestOnce(const std::string& wire);
  StatusOr<HttpResponse> ReadResponse();

  std::string host_;
  uint16_t port_ = 0;
  std::unique_ptr<HttpConn> conn_;
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_SERVE_HTTP_CLIENT_H_
