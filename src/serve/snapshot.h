// DbSnapshot: one immutable epoch of a served database.
//
// A snapshot owns a whole Db (synopsis set + per-segment engines + optional
// raw table). ServingDb publishes snapshots through an RCU-style atomic
// shared_ptr: readers pin one per request and execute against it without
// any locking; Db::WithAppended builds the successor epoch off the serving
// threads, sharing every already-sealed (immutable) segment. A snapshot
// stays alive — and every plan prepared against it stays valid — for as
// long as any reader or cached plan still references it.
#ifndef PAIRWISEHIST_SERVE_SNAPSHOT_H_
#define PAIRWISEHIST_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <utility>

#include "api/db.h"

namespace pairwisehist {

struct DbSnapshot {
  DbSnapshot(Db db_in, uint64_t epoch_in, uint64_t compaction_seq_in = 0)
      : db(std::move(db_in)),
        epoch(epoch_in),
        compaction_seq(compaction_seq_in) {}

  Db db;
  /// Monotonically increasing append generation (0 = the initial open).
  uint64_t epoch = 0;
  /// Monotonically increasing compaction generation. A compaction swap
  /// publishes the SAME epoch (no rows changed, so no WAL record — the
  /// recovery epoch chain stays gapless) with compaction_seq + 1; appends
  /// carry the current value forward. (epoch, compaction_seq) together
  /// identify a snapshot's exact segment structure.
  uint64_t compaction_seq = 0;
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_SERVE_SNAPSHOT_H_
