#include "serve/coalescer.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace pairwisehist {

ReadCoalescer::ReadCoalescer(BatchFn fn, uint32_t window_us)
    : fn_(std::move(fn)), window_us_(window_us) {}

void ReadCoalescer::Submit(Request* req) {
  std::unique_lock<std::mutex> lock(mu_);
  queue_.push_back(req);
  if (leader_active_) {
    // A leader is draining; it will pick this request up in its next
    // group and mark it done.
    cv_.wait(lock, [req] { return req->done; });
    return;
  }

  leader_active_ = true;
  std::vector<Request*> group;
  while (!queue_.empty()) {
    if (window_us_ > 0) {
      // Hold the leadership (but not the lock) while stragglers gather.
      lock.unlock();
      std::this_thread::sleep_for(std::chrono::microseconds(window_us_));
      lock.lock();
    }
    group.assign(queue_.begin(), queue_.end());
    queue_.clear();
    lock.unlock();

    fn_(group);

    lock.lock();
    stats_.groups += 1;
    stats_.statements += group.size();
    stats_.max_group = std::max<uint64_t>(stats_.max_group, group.size());
    for (Request* r : group) r->done = true;
    cv_.notify_all();
    // Loop: anything that queued while the batch ran becomes the next
    // group. The queue-empty check runs under the lock, so a request
    // enqueued after it observes leader_active_ == false and leads.
  }
  leader_active_ = false;
}

ReadCoalescer::Stats ReadCoalescer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace pairwisehist
