// Sharded LRU cache of prepared plans, keyed by normalized SQL.
//
// Preparation (parse → normalize → per-segment grid selection) is the
// expensive part of a sub-millisecond query; the cache makes repeated
// dashboard statements pay it once per snapshot epoch. Every entry pins
// the snapshot it was prepared against and matches by snapshot POINTER
// identity, so a cached plan can never dangle or read a retired segment:
// after an append OR a compaction swaps the serving snapshot (a compaction
// keeps the epoch but replaces segments — pointer identity catches what an
// epoch compare would miss), lookups against the new snapshot miss and
// lazily re-prepare, exactly like SegmentedPlan's own lazy extension — the
// old entry's pinned snapshot is released when the entry is replaced or
// evicted.
#ifndef PAIRWISEHIST_SERVE_PLAN_CACHE_H_
#define PAIRWISEHIST_SERVE_PLAN_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "serve/snapshot.h"

namespace pairwisehist {

class PlanCache {
 public:
  /// `capacity` entries total, spread over `shards` independently locked
  /// shards (lock contention is per-shard).
  explicit PlanCache(size_t capacity = 1024, size_t shards = 8);

  /// Returns a statement prepared against `snap`, reusing a cached plan
  /// when one exists for the same normalized SQL and the same snapshot.
  /// On a miss (or an epoch mismatch after an append) the statement is
  /// parsed and prepared outside the shard lock, then inserted. `*hit`
  /// reports whether the plan came from the cache.
  ///
  /// A raw-text alias index (exact request string -> normalized key)
  /// fronts the normalized lookup: dashboards resend byte-identical SQL,
  /// so steady-state hits skip the parse entirely. Aliases are
  /// snapshot-independent (parsing doesn't depend on data), so appends
  /// never invalidate them.
  StatusOr<PreparedQuery> Get(const std::shared_ptr<const DbSnapshot>& snap,
                              const std::string& sql, bool* hit);

  /// Drops every entry (and the snapshot references they pin).
  void Clear();

  /// Live entries across all shards (for tests / stats).
  size_t size() const;

 private:
  struct Entry {
    std::string key;  ///< normalized SQL (Query::ToSql)
    std::shared_ptr<const DbSnapshot> snap;  ///< pins plan validity
    PreparedQuery pq;
    uint64_t last_used = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::vector<Entry> entries;
    uint64_t tick = 0;  ///< shard-local LRU clock
  };

  struct AliasShard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::string> map;  ///< raw -> normalized
  };

  Shard& ShardFor(const std::string& key);
  AliasShard& AliasShardFor(const std::string& raw);
  /// Copies the cached plan for (snap, normalized key), or nullopt.
  std::optional<PreparedQuery> FindCached(
      const std::shared_ptr<const DbSnapshot>& snap, const std::string& key,
      bool* hit);

  size_t per_shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<AliasShard>> alias_shards_;
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_SERVE_PLAN_CACHE_H_
