// JSON endpoint routing: turns a ServingDb into an HttpServer::Handler.
//
// Endpoints (all responses application/json):
//   POST /query   {"sql": "SELECT ..."}      -> {"epoch":E,"groups":[...]}
//   POST /batch   {"sqls": ["...", ...]}     -> {"epoch":E,"results":[...]}
//   POST /append  CSV body (header row)      -> {"epoch":E,"rows":N,
//                                                "segments":S}
//   GET  /stats                              -> serving counters
//   GET  /healthz                            -> lifecycle + integrity
//                                               (200 ok / 503 otherwise)
// Errors: {"error":"...","code":"..."} with 400 (bad input), 404, 405 or
// 500 (internal). Per-statement /batch failures are inline
// {"error":...} objects; the call itself still returns 200. A read
// rejected because integrity verification quarantined a segment answers
// 503 (retryable after repair); sending X-Allow-Degraded: 1 instead
// answers from the surviving segments with "degraded":true.
//
// Overload behavior (when a ServiceGate is installed): requests beyond
// the in-flight budget are shed with 503 + Retry-After, appends first
// (reads stay useful under a write flood); a request whose deadline —
// X-Deadline-Ms header or the configured default — expired answers 408
// without executing.
#ifndef PAIRWISEHIST_SERVE_SERVICE_H_
#define PAIRWISEHIST_SERVE_SERVICE_H_

#include <atomic>
#include <cstdint>

#include "serve/http_server.h"
#include "serve/serving_db.h"

namespace pairwisehist {

struct ServiceLimits {
  /// Total concurrently executing requests. 0 = unlimited.
  uint32_t max_inflight = 0;
  /// Concurrently executing /append requests — a smaller budget than
  /// max_inflight so writes shed before reads. 0 = no separate cap.
  uint32_t max_inflight_appends = 0;
  /// Applied when a request carries no X-Deadline-Ms. 0 = no deadline.
  uint32_t default_deadline_ms = 0;
  /// Advertised in the Retry-After header of a 503 (rounded up to whole
  /// seconds, minimum 1, per the HTTP header's granularity).
  uint32_t retry_after_ms = 250;
};

/// Admission control shared by every connection thread. All methods are
/// thread-safe; Admit/Release pair per request.
class ServiceGate {
 public:
  explicit ServiceGate(ServiceLimits limits = {}) : limits_(limits) {}

  /// True = admitted (caller must Release). False = shed: the matching
  /// counter is bumped and the caller answers 503.
  bool Admit(bool is_append);
  void Release(bool is_append);

  const ServiceLimits& limits() const { return limits_; }
  void CountTimeout() {
    timeouts_.fetch_add(1, std::memory_order_relaxed);
  }

  struct Stats {
    uint32_t inflight = 0;
    uint64_t admitted = 0;
    uint64_t shed_reads = 0;
    uint64_t shed_appends = 0;
    uint64_t timeouts = 0;
  };
  Stats stats() const;

 private:
  ServiceLimits limits_;
  std::atomic<uint32_t> inflight_{0};
  std::atomic<uint32_t> inflight_appends_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> shed_reads_{0};
  std::atomic<uint64_t> shed_appends_{0};
  std::atomic<uint64_t> timeouts_{0};
};

/// Lifecycle phase surfaced by GET /healthz. The embedding binary flips
/// it around startup and drain (kOk just before HttpServer::Start, then
/// kDraining when shutdown begins); handlers only read it. All methods
/// thread-safe. With no ServiceState installed, /healthz reports ok.
class ServiceState {
 public:
  enum class Phase : uint8_t { kStarting, kOk, kDraining };
  void Set(Phase p) { phase_.store(p, std::memory_order_release); }
  Phase phase() const { return phase_.load(std::memory_order_acquire); }

 private:
  std::atomic<Phase> phase_{Phase::kStarting};
};

/// Builds the request handler. `db` (and `gate` / `state`, when given)
/// must outlive the returned handler (and any HttpServer it is installed
/// into). With a null gate there is no admission control or deadline
/// enforcement — the pre-robustness behavior.
HttpServer::Handler MakeServingHandler(ServingDb* db,
                                       ServiceGate* gate = nullptr,
                                       ServiceState* state = nullptr);

/// Builds the pipelining-aware group handler: consecutive POST /query
/// requests in a pipelined burst coalesce into one batch execution on
/// the connection's own thread when `db` has coalescing enabled (other
/// requests, and all traffic with coalescing off, fall back to the
/// single-request path with byte-identical responses). Install alongside
/// MakeServingHandler: HttpServer(MakeServingHandler(db, gate),
/// MakeServingBatchHandler(db, gate)).
HttpServer::BatchHandler MakeServingBatchHandler(ServingDb* db,
                                                 ServiceGate* gate = nullptr,
                                                 ServiceState* state = nullptr);

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_SERVE_SERVICE_H_
