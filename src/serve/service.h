// JSON endpoint routing: turns a ServingDb into an HttpServer::Handler.
//
// Endpoints (all responses application/json):
//   POST /query   {"sql": "SELECT ..."}      -> {"epoch":E,"groups":[...]}
//   POST /batch   {"sqls": ["...", ...]}     -> {"epoch":E,"results":[...]}
//   POST /append  CSV body (header row)      -> {"epoch":E,"rows":N,
//                                                "segments":S}
//   GET  /stats                              -> serving counters
// Errors: {"error":"...","code":"..."} with 400 (bad input), 404, 405 or
// 500 (internal). Per-statement /batch failures are inline
// {"error":...} objects; the call itself still returns 200.
#ifndef PAIRWISEHIST_SERVE_SERVICE_H_
#define PAIRWISEHIST_SERVE_SERVICE_H_

#include "serve/http_server.h"
#include "serve/serving_db.h"

namespace pairwisehist {

/// Builds the request handler. `db` must outlive the returned handler
/// (and any HttpServer it is installed into).
HttpServer::Handler MakeServingHandler(ServingDb* db);

/// Builds the pipelining-aware group handler: consecutive POST /query
/// requests in a pipelined burst coalesce into one batch execution on
/// the connection's own thread when `db` has coalescing enabled (other
/// requests, and all traffic with coalescing off, fall back to the
/// single-request path with byte-identical responses). Install alongside
/// MakeServingHandler: HttpServer(MakeServingHandler(db),
/// MakeServingBatchHandler(db)).
HttpServer::BatchHandler MakeServingBatchHandler(ServingDb* db);

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_SERVE_SERVICE_H_
