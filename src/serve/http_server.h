// Minimal embedded HTTP/1.1 server: blocking POSIX sockets, one thread
// per connection, keep-alive, no external dependencies. The same shape as
// the ExpressionMatrix2-style embedded servers the ROADMAP grounds on —
// enough to put a ServingDb behind curl and a closed-loop bench client,
// not a general-purpose web server.
//
// Robustness: header/body sizes are capped (413 instead of unbounded
// buffering), malformed framing is answered with a 400 and the connection
// closed instead of spinning, idle keep-alive peers are reaped, and
// Drain() stops accepting while letting in-flight requests finish.
#ifndef PAIRWISEHIST_SERVE_HTTP_SERVER_H_
#define PAIRWISEHIST_SERVE_HTTP_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"

namespace pairwisehist {

struct HttpRequest {
  std::string method;  ///< "GET", "POST", ...
  std::string path;    ///< request target without the query string
  std::string body;
  std::vector<std::pair<std::string, std::string>> headers;
  /// When the request was fully read off the socket (deadline bookkeeping).
  std::chrono::steady_clock::time_point arrival;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* FindHeader(const std::string& name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra response headers (e.g. Retry-After on a 503).
  std::vector<std::pair<std::string, std::string>> headers;
};

/// Standard reason phrase for a status code ("OK", "Bad Request", ...).
const char* HttpStatusText(int status);

struct HttpServerOptions {
  /// Reap keep-alive connections idle longer than this. 0 = never.
  uint32_t idle_timeout_ms = 30000;
  /// SO_RCVTIMEO / SO_SNDTIMEO on accepted sockets — bounds how long a
  /// single send to a stalled peer can block a connection thread. 0 = off.
  uint32_t io_timeout_ms = 10000;
  /// Max requests answered as one pipeline group (bounds per-connection
  /// buffering; longer bursts are simply answered in several groups).
  size_t max_pipeline_group = 64;
};

class HttpServer {
 public:
  /// `handler` runs on a per-connection thread; it must be safe to call
  /// concurrently (ServingDb's handler is).
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Optional pipelining-aware handler: receives every request already
  /// buffered on the connection (an HTTP/1.1 pipeline burst) as one
  /// group and returns one response per request, in order. Lets the
  /// service batch-execute a burst on the connection's own thread — no
  /// cross-thread handoff. When absent, pipelined requests are served
  /// one at a time through `handler`.
  using BatchHandler =
      std::function<std::vector<HttpResponse>(const std::vector<HttpRequest>&)>;

  explicit HttpServer(Handler handler, BatchHandler batch_handler = nullptr,
                      HttpServerOptions options = {});
  ~HttpServer();  // Stop()s if still running
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 0.0.0.0:`port` (0 = kernel-assigned; see port()) and starts
  /// accepting. Returns InvalidArgument when the port is taken.
  Status Start(uint16_t port);

  /// The bound port (valid after Start succeeds).
  uint16_t port() const { return port_; }
  bool running() const { return listen_fd_ >= 0; }

  /// Graceful shutdown: stops accepting new connections, lets every
  /// in-flight request finish and its response flush, then closes
  /// connections as they go idle. Blocks up to `grace_ms` before falling
  /// back to Stop()'s hard shutdown for stragglers. Idempotent with Stop.
  void Drain(uint32_t grace_ms = 5000);

  /// Stops accepting, unblocks every connection thread and joins them.
  /// Idempotent.
  void Stop();

  // Operational counters.
  uint64_t idle_reaped() const {
    return idle_reaped_.load(std::memory_order_relaxed);
  }
  uint64_t malformed_closed() const {
    return malformed_closed_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void ServeConn(size_t slot);

  Handler handler_;
  BatchHandler batch_handler_;
  HttpServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<bool> drain_{false};
  std::atomic<uint64_t> idle_reaped_{0};
  std::atomic<uint64_t> malformed_closed_{0};
  std::thread accept_thread_;

  /// Connection registry: fds_[i] pairs with conns_[i]; a thread clears
  /// its fd slot (under mu_) when it closes, so Stop can shut down every
  /// live socket without racing fd reuse.
  std::mutex mu_;
  std::vector<int> fds_;
  std::vector<std::thread> conns_;
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_SERVE_HTTP_SERVER_H_
