// Minimal embedded HTTP/1.1 server: blocking POSIX sockets, one thread
// per connection, keep-alive, no external dependencies. The same shape as
// the ExpressionMatrix2-style embedded servers the ROADMAP grounds on —
// enough to put a ServingDb behind curl and a closed-loop bench client,
// not a general-purpose web server.
#ifndef PAIRWISEHIST_SERVE_HTTP_SERVER_H_
#define PAIRWISEHIST_SERVE_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace pairwisehist {

struct HttpRequest {
  std::string method;  ///< "GET", "POST", ...
  std::string path;    ///< request target without the query string
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Standard reason phrase for a status code ("OK", "Bad Request", ...).
const char* HttpStatusText(int status);

class HttpServer {
 public:
  /// `handler` runs on a per-connection thread; it must be safe to call
  /// concurrently (ServingDb's handler is).
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Optional pipelining-aware handler: receives every request already
  /// buffered on the connection (an HTTP/1.1 pipeline burst) as one
  /// group and returns one response per request, in order. Lets the
  /// service batch-execute a burst on the connection's own thread — no
  /// cross-thread handoff. When absent, pipelined requests are served
  /// one at a time through `handler`.
  using BatchHandler =
      std::function<std::vector<HttpResponse>(const std::vector<HttpRequest>&)>;

  explicit HttpServer(Handler handler, BatchHandler batch_handler = nullptr);
  ~HttpServer();  // Stop()s if still running
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 0.0.0.0:`port` (0 = kernel-assigned; see port()) and starts
  /// accepting. Returns InvalidArgument when the port is taken.
  Status Start(uint16_t port);

  /// The bound port (valid after Start succeeds).
  uint16_t port() const { return port_; }
  bool running() const { return listen_fd_ >= 0; }

  /// Stops accepting, unblocks every connection thread and joins them.
  /// Idempotent.
  void Stop();

 private:
  void AcceptLoop();
  void ServeConn(size_t slot);

  Handler handler_;
  BatchHandler batch_handler_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;

  /// Connection registry: fds_[i] pairs with conns_[i]; a thread clears
  /// its fd slot (under mu_) when it closes, so Stop can shut down every
  /// live socket without racing fd reuse.
  std::mutex mu_;
  std::vector<int> fds_;
  std::vector<std::thread> conns_;
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_SERVE_HTTP_SERVER_H_
