// Minimal JSON support for the serving layer: a small parser for request
// bodies and append-style writers for responses.
//
// Deliberately tiny (no external deps, same spirit as the embedded HTTP
// server): the serving API only needs objects, arrays, strings, numbers,
// booleans and null. Numbers are written with %.17g so doubles round-trip
// bit-exactly — the serve tests compare HTTP responses for bit-equality
// with single-threaded execution, so formatting must be deterministic.
// NaN / Inf (legal AggResult values for empty selections) serialize as
// null, which JSON requires.
#ifndef PAIRWISEHIST_SERVE_JSON_H_
#define PAIRWISEHIST_SERVE_JSON_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "query/ast.h"

namespace pairwisehist {

/// A parsed JSON value (tagged union, object keys in document order).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> items;  ///< when type == kArray
  std::vector<std::pair<std::string, JsonValue>> fields;  ///< kObject

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
StatusOr<JsonValue> ParseJson(const std::string& text);

/// Appends `s` as a quoted, escaped JSON string.
void AppendJsonString(std::string* out, const std::string& s);

/// Appends a double: %.17g, or null for NaN / Inf.
void AppendJsonNumber(std::string* out, double v);

/// Appends a QueryResult as {"groups":[{"label":...,"estimate":...,
/// "lower":...,"upper":...,"empty":...}]}.
void AppendQueryResult(std::string* out, const QueryResult& result);

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_SERVE_JSON_H_
