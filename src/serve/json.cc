#include "serve/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pairwisehist {

namespace {

/// Recursive-descent parser over [p, end). Depth-capped so a hostile body
/// cannot overflow the stack.
class Parser {
 public:
  Parser(const char* p, const char* end) : p_(p), end_(end) {}

  StatusOr<JsonValue> Parse() {
    PH_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipWs();
    if (p_ != end_) return Err("trailing characters after JSON value");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Err(const std::string& msg) const {
    return Status::InvalidArgument("JSON: " + msg + " at offset " +
                                   std::to_string(off_));
  }

  void SkipWs() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                          *p_ == '\r')) {
      Advance();
    }
  }
  void Advance() {
    ++p_;
    ++off_;
  }
  bool Consume(char c) {
    if (p_ != end_ && *p_ == c) {
      Advance();
      return true;
    }
    return false;
  }
  bool ConsumeWord(const char* w) {
    const char* q = p_;
    size_t n = 0;
    while (w[n] != '\0') {
      if (q == end_ || *q != w[n]) return false;
      ++q;
      ++n;
    }
    p_ = q;
    off_ += n;
    return true;
  }

  StatusOr<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    SkipWs();
    if (p_ == end_) return Err("unexpected end of input");
    JsonValue v;
    switch (*p_) {
      case '{': {
        Advance();
        v.type = JsonValue::Type::kObject;
        SkipWs();
        if (Consume('}')) return v;
        while (true) {
          SkipWs();
          PH_ASSIGN_OR_RETURN(std::string key, ParseString());
          SkipWs();
          if (!Consume(':')) return Err("expected ':'");
          PH_ASSIGN_OR_RETURN(JsonValue member, ParseValue(depth + 1));
          v.fields.emplace_back(std::move(key), std::move(member));
          SkipWs();
          if (Consume(',')) continue;
          if (Consume('}')) return v;
          return Err("expected ',' or '}'");
        }
      }
      case '[': {
        Advance();
        v.type = JsonValue::Type::kArray;
        SkipWs();
        if (Consume(']')) return v;
        while (true) {
          PH_ASSIGN_OR_RETURN(JsonValue item, ParseValue(depth + 1));
          v.items.push_back(std::move(item));
          SkipWs();
          if (Consume(',')) continue;
          if (Consume(']')) return v;
          return Err("expected ',' or ']'");
        }
      }
      case '"': {
        v.type = JsonValue::Type::kString;
        PH_ASSIGN_OR_RETURN(v.str, ParseString());
        return v;
      }
      case 't':
        if (ConsumeWord("true")) {
          v.type = JsonValue::Type::kBool;
          v.boolean = true;
          return v;
        }
        return Err("bad literal");
      case 'f':
        if (ConsumeWord("false")) {
          v.type = JsonValue::Type::kBool;
          v.boolean = false;
          return v;
        }
        return Err("bad literal");
      case 'n':
        if (ConsumeWord("null")) return v;
        return Err("bad literal");
      default:
        return ParseNumber();
    }
  }

  StatusOr<std::string> ParseString() {
    if (!Consume('"')) return Err("expected string");
    std::string out;
    while (true) {
      if (p_ == end_) return Err("unterminated string");
      const char c = *p_;
      Advance();
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (p_ == end_) return Err("unterminated escape");
      const char e = *p_;
      Advance();
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // \uXXXX: decode the code point and emit UTF-8. Surrogate pairs
          // are accepted; lone surrogates become U+FFFD.
          PH_ASSIGN_OR_RETURN(unsigned cp, ParseHex4());
          if (cp >= 0xD800 && cp <= 0xDBFF && p_ + 1 < end_ &&
              p_[0] == '\\' && p_[1] == 'u') {
            Advance();
            Advance();
            PH_ASSIGN_OR_RETURN(unsigned lo, ParseHex4());
            if (lo >= 0xDC00 && lo <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              cp = 0xFFFD;
            }
          } else if (cp >= 0xD800 && cp <= 0xDFFF) {
            cp = 0xFFFD;
          }
          AppendUtf8(&out, cp);
          break;
        }
        default:
          return Err("bad escape");
      }
    }
  }

  StatusOr<unsigned> ParseHex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      if (p_ == end_) return Err("unterminated \\u escape");
      const char c = *p_;
      Advance();
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Err("bad hex digit");
      }
    }
    return v;
  }

  static void AppendUtf8(std::string* out, unsigned cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  StatusOr<JsonValue> ParseNumber() {
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) Advance();
    bool any = false;
    while (p_ != end_ &&
           ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' || *p_ == 'e' ||
            *p_ == 'E' || *p_ == '-' || *p_ == '+')) {
      any = true;
      Advance();
    }
    if (!any) return Err("unexpected character");
    std::string text(start, static_cast<size_t>(p_ - start));
    char* parse_end = nullptr;
    const double d = std::strtod(text.c_str(), &parse_end);
    if (parse_end != text.c_str() + text.size()) return Err("bad number");
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = d;
    return v;
  }

  const char* p_;
  const char* end_;
  size_t off_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& f : fields) {
    if (f.first == key) return &f.second;
  }
  return nullptr;
}

StatusOr<JsonValue> ParseJson(const std::string& text) {
  Parser p(text.data(), text.data() + text.size());
  return p.Parse();
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    *out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

void AppendQueryResult(std::string* out, const QueryResult& result) {
  *out += "{\"groups\":[";
  for (size_t i = 0; i < result.groups.size(); ++i) {
    if (i != 0) out->push_back(',');
    const QueryResult::Group& g = result.groups[i];
    *out += "{\"label\":";
    AppendJsonString(out, g.label);
    *out += ",\"estimate\":";
    AppendJsonNumber(out, g.agg.estimate);
    *out += ",\"lower\":";
    AppendJsonNumber(out, g.agg.lower);
    *out += ",\"upper\":";
    AppendJsonNumber(out, g.agg.upper);
    *out += ",\"empty\":";
    *out += g.agg.empty_selection ? "true" : "false";
    *out += "}";
  }
  *out += "]}";
}

}  // namespace pairwisehist
