#include "serve/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/rng.h"

namespace pairwisehist {

namespace {

std::string BuildWire(
    const std::string& host, const std::string& method,
    const std::string& path, const std::string& body,
    const std::string& content_type,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  std::string wire;
  wire.reserve(body.size() + 160);
  wire += method;
  wire += ' ';
  wire += path;
  wire += " HTTP/1.1\r\nHost: ";
  wire += host;
  wire += "\r\nContent-Type: ";
  wire += content_type;
  wire += "\r\nContent-Length: ";
  wire += std::to_string(body.size());
  for (const auto& h : headers) {
    wire += "\r\n";
    wire += h.first;
    wire += ": ";
    wire += h.second;
  }
  wire += "\r\n\r\n";
  wire += body;
  return wire;
}

void ApplyIoTimeout(int fd, uint32_t io_timeout_ms) {
  if (io_timeout_ms == 0) return;
  struct timeval tv;
  tv.tv_sec = io_timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(io_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

Status HttpClient::Connect(const std::string& host, uint16_t port) {
  Close();
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("HttpClient: bad IPv4 address '" + host +
                                   "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    return Status::Internal("connect to " + host + ":" +
                            std::to_string(port) + " failed");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  ApplyIoTimeout(fd, io_timeout_ms_);
  host_ = host;
  port_ = port;
  conn_ = std::make_unique<HttpConn>(fd);
  return Status::OK();
}

void HttpClient::SetIoTimeout(uint32_t io_timeout_ms) {
  io_timeout_ms_ = io_timeout_ms;
  if (conn_ != nullptr) ApplyIoTimeout(conn_->fd(), io_timeout_ms_);
}

void HttpClient::Close() {
  if (conn_ != nullptr) {
    ::close(conn_->fd());
    conn_.reset();
  }
}

StatusOr<HttpResponse> HttpClient::ReadResponse() {
  HttpMessage msg;
  bool closed = false;
  PH_RETURN_IF_ERROR(conn_->Read(&msg, &closed));
  if (closed) {
    return Status::DataLoss("HttpClient: connection closed by server");
  }
  // "HTTP/1.1 200 OK"
  const size_t sp1 = msg.start_line.find(' ');
  if (sp1 == std::string::npos) {
    return Status::DataLoss("HttpClient: malformed status line");
  }
  HttpResponse resp;
  resp.status = std::atoi(msg.start_line.c_str() + sp1 + 1);
  if (const std::string* ct = msg.FindHeader("Content-Type")) {
    resp.content_type = *ct;
  }
  resp.headers = std::move(msg.headers);
  resp.body = std::move(msg.body);
  return resp;
}

StatusOr<HttpResponse> HttpClient::RequestOnce(const std::string& wire) {
  if (conn_ == nullptr) return Status::Internal("HttpClient: not connected");
  PH_RETURN_IF_ERROR(conn_->Write(wire));
  return ReadResponse();
}

StatusOr<HttpResponse> HttpClient::Request(
    const std::string& method, const std::string& path,
    const std::string& body, const std::string& content_type,
    const std::vector<std::pair<std::string, std::string>>& headers) {
  const std::string wire =
      BuildWire(host_, method, path, body, content_type, headers);
  StatusOr<HttpResponse> resp = RequestOnce(wire);
  if (resp.ok()) return resp;
  // One reconnect: the server may have dropped an idle keep-alive socket.
  PH_RETURN_IF_ERROR(Connect(host_, port_));
  return RequestOnce(wire);
}

StatusOr<HttpResponse> HttpClient::RequestWithRetry(
    const std::string& method, const std::string& path,
    const std::string& body, const std::string& content_type,
    const std::vector<std::pair<std::string, std::string>>& headers,
    const HttpRetryPolicy& policy) {
  Rng rng(policy.seed);
  uint32_t backoff_ms = policy.initial_backoff_ms;
  StatusOr<HttpResponse> last = Status::Internal("HttpClient: no attempts");
  const uint32_t attempts = std::max<uint32_t>(1, policy.max_attempts);
  for (uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      // Full jitter: sleep a uniform fraction of the current backoff. A
      // shorter server-provided Retry-After overrides the cap downward.
      uint64_t sleep_ms = 1 + rng.Next() % std::max<uint32_t>(1, backoff_ms);
      if (last.ok()) {
        if (const std::string* ra = [&]() -> const std::string* {
              for (const auto& h : last.value().headers) {
                if (h.first == "Retry-After") return &h.second;
              }
              return nullptr;
            }()) {
          const unsigned long ra_ms = std::strtoul(ra->c_str(), nullptr, 10) *
                                      1000ul;
          if (ra_ms > 0 && ra_ms < sleep_ms) sleep_ms = ra_ms;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      backoff_ms = std::min(policy.max_backoff_ms, backoff_ms * 2);
      ++retries_;
    }
    if (conn_ == nullptr) {
      Status st = Connect(host_, port_);
      if (!st.ok()) {
        last = st;
        continue;
      }
    }
    last = Request(method, path, body, content_type, headers);
    if (!last.ok()) {
      Close();  // transport failure: force a fresh connection next attempt
      continue;
    }
    if (last.value().status != 503) return last;
  }
  return last;
}

StatusOr<std::vector<HttpResponse>> HttpClient::RequestPipelined(
    const std::string& method, const std::string& path,
    const std::vector<std::string>& bodies,
    const std::string& content_type) {
  if (conn_ == nullptr) return Status::Internal("HttpClient: not connected");
  std::string wire;
  for (const std::string& body : bodies) {
    wire += BuildWire(host_, method, path, body, content_type, {});
  }
  PH_RETURN_IF_ERROR(conn_->Write(wire));
  std::vector<HttpResponse> responses;
  responses.reserve(bodies.size());
  for (size_t i = 0; i < bodies.size(); ++i) {
    PH_ASSIGN_OR_RETURN(HttpResponse resp, ReadResponse());
    responses.push_back(std::move(resp));
  }
  return responses;
}

}  // namespace pairwisehist
