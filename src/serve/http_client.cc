#include "serve/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>

namespace pairwisehist {

Status HttpClient::Connect(const std::string& host, uint16_t port) {
  Close();
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("HttpClient: bad IPv4 address '" + host +
                                   "'");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    return Status::Internal("connect to " + host + ":" +
                            std::to_string(port) + " failed");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  host_ = host;
  port_ = port;
  conn_ = std::make_unique<HttpConn>(fd);
  return Status::OK();
}

void HttpClient::Close() {
  if (conn_ != nullptr) {
    ::close(conn_->fd());
    conn_.reset();
  }
}

StatusOr<HttpResponse> HttpClient::ReadResponse() {
  HttpMessage msg;
  bool closed = false;
  PH_RETURN_IF_ERROR(conn_->Read(&msg, &closed, nullptr));
  if (closed) {
    return Status::DataLoss("HttpClient: connection closed by server");
  }
  // "HTTP/1.1 200 OK"
  const size_t sp1 = msg.start_line.find(' ');
  if (sp1 == std::string::npos) {
    return Status::DataLoss("HttpClient: malformed status line");
  }
  HttpResponse resp;
  resp.status = std::atoi(msg.start_line.c_str() + sp1 + 1);
  if (const std::string* ct = msg.FindHeader("Content-Type")) {
    resp.content_type = *ct;
  }
  resp.body = std::move(msg.body);
  return resp;
}

StatusOr<HttpResponse> HttpClient::RequestOnce(const std::string& wire) {
  if (conn_ == nullptr) return Status::Internal("HttpClient: not connected");
  PH_RETURN_IF_ERROR(conn_->Write(wire));
  return ReadResponse();
}

StatusOr<HttpResponse> HttpClient::Request(const std::string& method,
                                           const std::string& path,
                                           const std::string& body,
                                           const std::string& content_type) {
  std::string wire;
  wire.reserve(body.size() + 128);
  wire += method;
  wire += ' ';
  wire += path;
  wire += " HTTP/1.1\r\nHost: ";
  wire += host_;
  wire += "\r\nContent-Type: ";
  wire += content_type;
  wire += "\r\nContent-Length: ";
  wire += std::to_string(body.size());
  wire += "\r\n\r\n";
  wire += body;

  StatusOr<HttpResponse> resp = RequestOnce(wire);
  if (resp.ok()) return resp;
  // One reconnect: the server may have dropped an idle keep-alive socket.
  PH_RETURN_IF_ERROR(Connect(host_, port_));
  return RequestOnce(wire);
}

StatusOr<std::vector<HttpResponse>> HttpClient::RequestPipelined(
    const std::string& method, const std::string& path,
    const std::vector<std::string>& bodies,
    const std::string& content_type) {
  if (conn_ == nullptr) return Status::Internal("HttpClient: not connected");
  std::string wire;
  for (const std::string& body : bodies) {
    wire += method;
    wire += ' ';
    wire += path;
    wire += " HTTP/1.1\r\nHost: ";
    wire += host_;
    wire += "\r\nContent-Type: ";
    wire += content_type;
    wire += "\r\nContent-Length: ";
    wire += std::to_string(body.size());
    wire += "\r\n\r\n";
    wire += body;
  }
  PH_RETURN_IF_ERROR(conn_->Write(wire));
  std::vector<HttpResponse> responses;
  responses.reserve(bodies.size());
  for (size_t i = 0; i < bodies.size(); ++i) {
    PH_ASSIGN_OR_RETURN(HttpResponse resp, ReadResponse());
    responses.push_back(std::move(resp));
  }
  return responses;
}

}  // namespace pairwisehist
