#include "serve/http_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cstring>
#include <utility>

#include "serve/http_io.h"

namespace pairwisehist {

const char* HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

namespace {

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// Splits "METHOD SP target SP version"; false when malformed.
bool ParseRequestLine(const HttpMessage& msg, HttpRequest* req) {
  const size_t sp1 = msg.start_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? sp1 : msg.start_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return false;
  req->method = msg.start_line.substr(0, sp1);
  std::string target = msg.start_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t qmark = target.find('?');
  if (qmark != std::string::npos) target.resize(qmark);
  req->path = std::move(target);
  return true;
}

bool WantsClose(const HttpMessage& msg) {
  const std::string* h = msg.FindHeader("Connection");
  return h != nullptr && *h == "close";
}

void SetIoTimeout(int fd, uint32_t io_timeout_ms) {
  if (io_timeout_ms == 0) return;
  struct timeval tv;
  tv.tv_sec = io_timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(io_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  // Reads use poll() with their own idle budget, but a receive timeout
  // still bounds the blocking recv after poll reports readiness.
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

}  // namespace

const std::string* HttpRequest::FindHeader(const std::string& name) const {
  for (const auto& h : headers) {
    if (EqualsIgnoreCase(h.first, name)) return &h.second;
  }
  return nullptr;
}

HttpServer::HttpServer(Handler handler, BatchHandler batch_handler,
                       HttpServerOptions options)
    : handler_(std::move(handler)),
      batch_handler_(std::move(batch_handler)),
      options_(options) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start(uint16_t port) {
  if (listen_fd_ >= 0) return Status::Internal("HttpServer already started");
  stop_.store(false, std::memory_order_relaxed);
  drain_.store(false, std::memory_order_relaxed);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return Status::InvalidArgument("bind failed on port " +
                                   std::to_string(port));
  }
  if (::listen(fd, 128) < 0) {
    ::close(fd);
    return Status::Internal("listen() failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) <
      0) {
    ::close(fd);
    return Status::Internal("getsockname() failed");
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (Stop/Drain) or fatal error
    }
    if (drain_.load(std::memory_order_relaxed)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    SetIoTimeout(fd, options_.io_timeout_ms);
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    const size_t slot = fds_.size();
    fds_.push_back(fd);
    conns_.emplace_back([this, slot] { ServeConn(slot); });
  }
}

void HttpServer::ServeConn(size_t slot) {
  int fd;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fd = fds_[slot];
  }
  HttpConn conn(fd);
  // Responses are corked: appended to `pending` and flushed only when the
  // next Read would actually wait on the socket (see HttpConn::Read's
  // on_block). Pipelined requests are thus answered with one send for the
  // whole burst instead of one per response.
  std::string pending;
  const std::function<Status()> flush = [&conn, &pending]() -> Status {
    if (pending.empty()) return Status::OK();
    Status st = conn.Write(pending);
    pending.clear();
    return st;
  };
  ReadDeadlines deadlines;
  deadlines.stop = &stop_;
  deadlines.drain = &drain_;
  deadlines.idle_timeout_ms = options_.idle_timeout_ms;
  deadlines.on_block = &flush;

  auto append_response = [&](const HttpResponse& resp, bool close_conn) {
    pending.reserve(pending.size() + resp.body.size() + 160);
    pending += "HTTP/1.1 ";
    pending += std::to_string(resp.status);
    pending += ' ';
    pending += HttpStatusText(resp.status);
    pending += "\r\nContent-Type: ";
    pending += resp.content_type;
    pending += "\r\nContent-Length: ";
    pending += std::to_string(resp.body.size());
    for (const auto& h : resp.headers) {
      pending += "\r\n";
      pending += h.first;
      pending += ": ";
      pending += h.second;
    }
    pending += close_conn ? "\r\nConnection: close\r\n\r\n"
                          : "\r\nConnection: keep-alive\r\n\r\n";
    pending += resp.body;
  };

  while (!stop_.load(std::memory_order_relaxed)) {
    HttpMessage msg;
    bool closed = false;
    Status st = conn.Read(&msg, &closed, deadlines);
    if (!st.ok()) {
      // Malformed (400) or oversized (413) framing: answer, then close —
      // never spin on a garbage connection. Anything else (socket error,
      // peer dropped mid-message, server stopping) just closes.
      if (st.code() == StatusCode::kInvalidArgument ||
          st.code() == StatusCode::kOutOfRange) {
        HttpResponse err;
        err.status = st.code() == StatusCode::kOutOfRange ? 413 : 400;
        err.body = "{\"error\":\"" + st.message() + "\"}";
        append_response(err, /*close_conn=*/true);
        (void)flush();
        malformed_closed_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    if (closed) {
      // Orderly close, drain, or idle reap. Count reaps distinctly: the
      // idle path fires only when idle_timeout_ms elapsed, which Read
      // reports identically to a peer close — attribute it to a reap when
      // the server is still live (not stopping/draining).
      if (!drain_.load(std::memory_order_relaxed) &&
          options_.idle_timeout_ms > 0) {
        idle_reaped_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    const auto arrival = std::chrono::steady_clock::now();

    // Collect this request plus (with a batch handler installed) every
    // pipelined follower already buffered on the connection. The group
    // stops at a Connection: close request or a malformed one; requests
    // before the malformed one are still answered, then the connection
    // closes after a 400.
    std::vector<HttpRequest> reqs;
    Status bad = Status::OK();
    bool close_after = false;
    auto take = [&](HttpMessage* m) {
      HttpRequest req;
      if (!ParseRequestLine(*m, &req)) {
        bad = Status::InvalidArgument("malformed request line");
        return false;
      }
      if (WantsClose(*m)) close_after = true;
      req.headers = std::move(m->headers);
      req.body = std::move(m->body);
      req.arrival = arrival;
      reqs.push_back(std::move(req));
      return !close_after;
    };
    if (take(&msg) && batch_handler_ != nullptr) {
      HttpMessage more;
      Status parse_st;
      while (reqs.size() < options_.max_pipeline_group &&
             conn.TryReadBuffered(&more, &parse_st)) {
        if (!take(&more)) break;
      }
      if (!parse_st.ok()) bad = parse_st;  // malformed buffered bytes
    }

    std::vector<HttpResponse> resps;
    if (batch_handler_ != nullptr && reqs.size() > 1) {
      resps = batch_handler_(reqs);
      while (resps.size() < reqs.size()) {  // defensive: contract breach
        HttpResponse err;
        err.status = 500;
        err.body = "{\"error\":\"batch handler dropped a response\"}";
        resps.push_back(std::move(err));
      }
    } else {
      resps.reserve(reqs.size());
      for (const HttpRequest& r : reqs) resps.push_back(handler_(r));
    }
    if (!bad.ok()) {
      HttpResponse err;
      err.status = bad.code() == StatusCode::kOutOfRange ? 413 : 400;
      err.body = "{\"error\":\"" + bad.message() + "\"}";
      resps.push_back(std::move(err));
      close_after = true;
      malformed_closed_.fetch_add(1, std::memory_order_relaxed);
    }
    if (drain_.load(std::memory_order_relaxed)) close_after = true;

    bool write_failed = false;
    for (size_t i = 0; i < resps.size(); ++i) {
      append_response(resps[i], close_after && i + 1 == resps.size());
      // Bound the cork: a burst of large responses flushes eagerly.
      if (pending.size() > (1u << 20) && !flush().ok()) {
        write_failed = true;
        break;
      }
    }
    if (write_failed) break;
    if (close_after) {
      (void)flush();
      break;
    }
  }
  (void)flush();
  std::lock_guard<std::mutex> lock(mu_);
  ::close(fd);
  fds_[slot] = -1;  // tell Stop() this fd is gone (avoid fd-reuse races)
}

void HttpServer::Drain(uint32_t grace_ms) {
  if (listen_fd_ < 0) return;
  drain_.store(true, std::memory_order_relaxed);
  // Wake the acceptor; new connections are refused from here on.
  ::shutdown(listen_fd_, SHUT_RDWR);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(grace_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    bool live = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (int fd : fds_) {
        if (fd >= 0) {
          live = true;
          break;
        }
      }
    }
    if (!live) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  Stop();  // joins threads; stragglers past the grace get a hard shutdown
}

void HttpServer::Stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_relaxed);
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : fds_) {
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
  for (std::thread& t : conns_) {
    if (t.joinable()) t.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  conns_.clear();
  fds_.clear();
}

}  // namespace pairwisehist
