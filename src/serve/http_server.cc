#include "serve/http_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "serve/http_io.h"

namespace pairwisehist {

const char* HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    default: return "Status";
  }
}

namespace {

/// Max requests answered as one pipeline group (bounds per-connection
/// buffering; longer bursts are simply answered in several groups).
constexpr size_t kMaxPipelineGroup = 64;

/// Splits "METHOD SP target SP version"; false when malformed.
bool ParseRequestLine(const HttpMessage& msg, HttpRequest* req) {
  const size_t sp1 = msg.start_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? sp1 : msg.start_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return false;
  req->method = msg.start_line.substr(0, sp1);
  std::string target = msg.start_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t qmark = target.find('?');
  if (qmark != std::string::npos) target.resize(qmark);
  req->path = std::move(target);
  return true;
}

bool WantsClose(const HttpMessage& msg) {
  const std::string* h = msg.FindHeader("Connection");
  return h != nullptr && *h == "close";
}

}  // namespace

HttpServer::HttpServer(Handler handler, BatchHandler batch_handler)
    : handler_(std::move(handler)),
      batch_handler_(std::move(batch_handler)) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start(uint16_t port) {
  if (listen_fd_ >= 0) return Status::Internal("HttpServer already started");
  stop_.store(false, std::memory_order_relaxed);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return Status::InvalidArgument("bind failed on port " +
                                   std::to_string(port));
  }
  if (::listen(fd, 128) < 0) {
    ::close(fd);
    return Status::Internal("listen() failed");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) <
      0) {
    ::close(fd);
    return Status::Internal("getsockname() failed");
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_ = fd;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (Stop) or fatal error
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    const size_t slot = fds_.size();
    fds_.push_back(fd);
    conns_.emplace_back([this, slot] { ServeConn(slot); });
  }
}

void HttpServer::ServeConn(size_t slot) {
  int fd;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fd = fds_[slot];
  }
  HttpConn conn(fd);
  // Responses are corked: appended to `pending` and flushed only when the
  // next Read would actually wait on the socket (see HttpConn::Read's
  // on_block). Pipelined requests are thus answered with one send for the
  // whole burst instead of one per response.
  std::string pending;
  const std::function<Status()> flush = [&conn, &pending]() -> Status {
    if (pending.empty()) return Status::OK();
    Status st = conn.Write(pending);
    pending.clear();
    return st;
  };
  while (!stop_.load(std::memory_order_relaxed)) {
    HttpMessage msg;
    bool closed = false;
    Status st = conn.Read(&msg, &closed, &stop_, &flush);
    if (!st.ok() || closed) break;

    // Collect this request plus (with a batch handler installed) every
    // pipelined follower already buffered on the connection. The group
    // stops at a Connection: close request or a malformed one; requests
    // before the malformed one are still answered, then the connection
    // closes after a 400.
    std::vector<HttpRequest> reqs;
    bool bad = false;
    bool close_after = false;
    auto take = [&](HttpMessage* m) {
      HttpRequest req;
      if (!ParseRequestLine(*m, &req)) {
        bad = true;
        return false;
      }
      if (WantsClose(*m)) close_after = true;
      req.body = std::move(m->body);
      reqs.push_back(std::move(req));
      return !close_after;
    };
    if (take(&msg) && batch_handler_ != nullptr) {
      HttpMessage more;
      Status parse_st;
      while (reqs.size() < kMaxPipelineGroup &&
             conn.TryReadBuffered(&more, &parse_st)) {
        if (!take(&more)) break;
      }
      if (!parse_st.ok()) bad = true;  // malformed buffered bytes
    }

    std::vector<HttpResponse> resps;
    if (batch_handler_ != nullptr && reqs.size() > 1) {
      resps = batch_handler_(reqs);
      while (resps.size() < reqs.size()) {  // defensive: contract breach
        HttpResponse err;
        err.status = 500;
        err.body = "{\"error\":\"batch handler dropped a response\"}";
        resps.push_back(std::move(err));
      }
    } else {
      resps.reserve(reqs.size());
      for (const HttpRequest& r : reqs) resps.push_back(handler_(r));
    }
    if (bad) {
      HttpResponse err;
      err.status = 400;
      err.body = "{\"error\":\"malformed request line\"}";
      resps.push_back(std::move(err));
      close_after = true;
    }

    bool write_failed = false;
    for (size_t i = 0; i < resps.size(); ++i) {
      const HttpResponse& resp = resps[i];
      const bool last = i + 1 == resps.size();
      pending.reserve(pending.size() + resp.body.size() + 128);
      pending += "HTTP/1.1 ";
      pending += std::to_string(resp.status);
      pending += ' ';
      pending += HttpStatusText(resp.status);
      pending += "\r\nContent-Type: ";
      pending += resp.content_type;
      pending += "\r\nContent-Length: ";
      pending += std::to_string(resp.body.size());
      pending += close_after && last ? "\r\nConnection: close\r\n\r\n"
                                     : "\r\nConnection: keep-alive\r\n\r\n";
      pending += resp.body;
      // Bound the cork: a burst of large responses flushes eagerly.
      if (pending.size() > (1u << 20) && !flush().ok()) {
        write_failed = true;
        break;
      }
    }
    if (write_failed) break;
    if (close_after) {
      (void)flush();
      break;
    }
  }
  (void)flush();
  std::lock_guard<std::mutex> lock(mu_);
  ::close(fd);
  fds_[slot] = -1;  // tell Stop() this fd is gone (avoid fd-reuse races)
}

void HttpServer::Stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_relaxed);
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : fds_) {
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
  for (std::thread& t : conns_) {
    if (t.joinable()) t.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  conns_.clear();
  fds_.clear();
}

}  // namespace pairwisehist
