// ServingDb: a thread-safe, multi-reader serving wrapper around Db.
//
// The concurrency model is RCU-style snapshot swapping:
//  * Readers (`Query`, `QueryBatch`) atomically load the current
//    shared_ptr<DbSnapshot> — wait-free, no reader ever blocks on a
//    writer — and execute entirely against that pinned snapshot, so every
//    response reflects exactly one consistent epoch even while appends
//    land concurrently.
//  * `Append` (serialized by a writer mutex) builds the successor
//    snapshot off the serving threads with Db::WithAppended — sealed
//    segments are immutable and shared, only the new batch's segments are
//    built — then publishes it with one atomic store. Old snapshots are
//    refcounted away when the last in-flight reader and cached plan drop
//    them.
//
// Durability (opt-in via ServingOptions::durability.dir): every append is
// framed into a write-ahead log and fsynced per policy BEFORE the new
// snapshot is published, so an acknowledged append survives a crash. A
// background checkpointer periodically persists the full synopsis as
// checkpoint-<epoch>.pws2 (tmp + fsync + rename) and truncates the WAL;
// Recover() reopens the newest checkpoint and replays the WAL tail.
//
// Repeated statements hit a sharded LRU plan cache (serve/plan_cache.h);
// concurrent point reads are group-committed into Db batch execution by a
// read coalescer (serve/coalescer.h), which turns grid-sharing dashboard
// fan-in into the measured batch-execution win. Both are transparent:
// responses are bit-identical to uncached, uncoalesced execution.
#ifndef PAIRWISEHIST_SERVE_SERVING_DB_H_
#define PAIRWISEHIST_SERVE_SERVING_DB_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/coalescer.h"
#include "serve/plan_cache.h"
#include "serve/snapshot.h"
#include "storage/wal.h"

namespace pairwisehist {

/// Crash-safety knobs. An empty `dir` means in-memory serving (the
/// pre-durability behavior, and still the default).
struct DurabilityOptions {
  /// Directory holding wal.log + checkpoint-<epoch>.pws2 files.
  std::string dir;
  /// WAL fsync policy: when an append is acknowledged relative to the
  /// bytes being on stable storage (see WalOptions::Fsync).
  WalOptions::Fsync fsync = WalOptions::Fsync::kAlways;
  uint32_t fsync_interval_ms = 20;
  /// Background checkpoint cadence. 0 = only explicit Checkpoint() calls
  /// (and the one a graceful shutdown takes).
  uint32_t checkpoint_interval_ms = 0;
  /// Skip a periodic checkpoint when fewer than this many appends landed
  /// since the last one (avoids rewriting an unchanged synopsis).
  uint64_t checkpoint_min_appends = 1;
};

struct ServingOptions {
  /// Group concurrent point queries into batch execution. Off = every
  /// request executes alone (still snapshot-isolated and cached).
  bool coalesce = true;
  /// Extra microseconds the coalescing leader waits for stragglers before
  /// each drain. 0 = coalesce only requests overlapping an in-flight
  /// batch (no added latency).
  uint32_t coalesce_window_us = 0;
  /// Prepared-plan cache size (entries) and shard count.
  size_t plan_cache_capacity = 1024;
  size_t plan_cache_shards = 8;
  DurabilityOptions durability;
  /// Segment lifecycle (storage/compactor.h): with `compaction.enabled`
  /// and interval_ms > 0 a background thread merges eligible segment runs
  /// and publishes the result through the snapshot swap; CompactNow()
  /// runs one step explicitly either way.
  CompactionOptions compaction;
};

/// What Recover() found on disk.
struct RecoveryInfo {
  uint64_t checkpoint_epoch = 0;   ///< epoch of the checkpoint opened
  uint64_t wal_records = 0;        ///< valid WAL records read
  uint64_t wal_records_applied = 0;///< records with epoch > checkpoint
  uint64_t rows_recovered = 0;     ///< rows re-appended from the WAL
  bool tail_truncated = false;     ///< a torn final record was dropped
  /// Checkpoint files skipped as corrupt before one opened and verified.
  uint32_t checkpoints_skipped = 0;
  /// Path of the newest corrupt checkpoint (empty when none was skipped).
  std::string corrupt_checkpoint;
};

/// Per-read options (the HTTP layer maps X-Allow-Degraded onto these).
struct ReadOptions {
  /// Answer from the surviving segments when some are quarantined,
  /// instead of failing closed. OR-ed with the Db's own allow_degraded.
  bool allow_degraded = false;
};

/// How degraded a degraded answer is (all zero for a full answer).
struct DegradedInfo {
  bool degraded = false;
  uint64_t rows_skipped = 0;     ///< rows in the skipped segments
  uint32_t segments_skipped = 0;
};

/// A point-in-time counter dump (see ServingDb::Stats).
struct ServingStats {
  uint64_t epoch = 0;
  uint64_t segments = 0;
  uint64_t rows = 0;
  uint64_t queries = 0;           ///< /query statements served
  uint64_t batches = 0;           ///< /batch calls served
  uint64_t batch_statements = 0;  ///< statements across /batch calls
  uint64_t coalesced_groups = 0;
  uint64_t coalesced_statements = 0;
  uint64_t max_group = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_entries = 0;
  uint64_t appends = 0;
  uint64_t errors = 0;
  /// Bytes of the current snapshot's synopsis borrowed zero-copy from a
  /// memory-mapped PWS3 checkpoint (0 when heap-backed, e.g. built
  /// fresh). Appended snapshots keep sharing the recovered segments, so
  /// the mapping persists across appends until the segments are dropped.
  uint64_t mapped_bytes = 0;
  // Durability (all zero when serving in-memory).
  bool durable = false;
  uint64_t wal_records = 0;
  uint64_t wal_bytes = 0;
  uint64_t wal_fsyncs = 0;
  uint64_t last_checkpoint_epoch = 0;
  uint64_t checkpoints = 0;
  uint64_t recovered_records = 0;
  uint64_t recovered_rows = 0;
  bool recovery_tail_truncated = false;
  // Integrity (see core/integrity.h).
  uint64_t quarantined_segments = 0;
  uint64_t quarantined_rows = 0;
  uint64_t scrub_errors = 0;
  uint64_t degraded_reads = 0;
  uint32_t checkpoints_skipped = 0;
  std::string corrupt_checkpoint;
  // Segment lifecycle (compaction).
  bool compaction_enabled = false;
  uint64_t compaction_seq = 0;        ///< current snapshot's generation
  uint64_t compaction_runs = 0;       ///< swaps published
  uint64_t compaction_segments_merged = 0;
  uint64_t compaction_rows_rewritten = 0;
  uint64_t compaction_bytes_rewritten = 0;  ///< serialized merged synopses
  uint64_t compaction_backlog = 0;    ///< segments in eligible merge runs
  uint64_t compaction_errors = 0;
  uint64_t quarantine_drained = 0;    ///< quarantined segments rebuilt
  uint64_t retained_bytes = 0;        ///< rebuild-row retention buffer
};

class ServingDb {
 public:
  /// Takes ownership of `db` as epoch `start_epoch` (in-memory serving;
  /// durability options in `options` are ignored — use CreateDurable).
  /// The Db should use the built-in engine (backends execute uncoalesced)
  /// and AppendMode::kSealSegment (Append returns Unsupported otherwise,
  /// see Db::WithAppended).
  explicit ServingDb(Db db, ServingOptions options = {},
                     uint64_t start_epoch = 0);
  ~ServingDb();

  ServingDb(const ServingDb&) = delete;
  ServingDb& operator=(const ServingDb&) = delete;

  /// Durable serving over a FRESH database: writes the epoch-0 checkpoint
  /// and an empty WAL into durability.dir (which must not already hold
  /// serving state — use Recover for that), then serves. Every subsequent
  /// Append is WAL-logged before it is acknowledged.
  static StatusOr<std::unique_ptr<ServingDb>> CreateDurable(
      Db db, ServingOptions options);

  /// Durable serving resumed from durability.dir: opens the newest
  /// USABLE checkpoint — candidates are tried newest-first, and one that
  /// fails to open or fails its integrity sweep is skipped whenever an
  /// older checkpoint plus the WAL still covers every acknowledged epoch
  /// (a crash between checkpoint-rename and WAL-truncate leaves exactly
  /// that fallback window) — then replays the WAL tail and serves. A torn
  /// final WAL record is truncated and reported in recovery_info(); any
  /// recovery that would silently lose an acknowledged epoch fails with
  /// DataLoss naming the corrupt checkpoint file.
  static StatusOr<std::unique_ptr<ServingDb>> Recover(
      ServingOptions options, AqpEngineOptions engine = {});
  /// Same with full open options (scrub knobs, allow_degraded, kernels…).
  /// Candidates are verified synchronously during recovery regardless of
  /// db_options.scrub; with scrub_repeat_ms > 0 continuous scrubbing
  /// starts on the recovered state.
  static StatusOr<std::unique_ptr<ServingDb>> Recover(
      ServingOptions options, const DbOptions& db_options);

  /// The current snapshot (wait-free atomic load). Holding the returned
  /// pointer pins that epoch — including across subsequent appends.
  std::shared_ptr<const DbSnapshot> snapshot() const;

  /// Executes one statement against the current snapshot, through the
  /// plan cache and (when enabled) the read coalescer. `*epoch` (optional)
  /// reports the snapshot epoch that answered. Fails closed with DataLoss
  /// when integrity verification has quarantined any segment, unless the
  /// snapshot's Db was opened with allow_degraded.
  Status Query(const std::string& sql, QueryResult* result,
               uint64_t* epoch = nullptr);

  /// Same with per-read options: with ropts.allow_degraded (or the Db's
  /// own allow_degraded) a quarantine degrades the answer — the surviving
  /// segments answer, bypassing the plan cache and the coalescer, and
  /// `*degraded` (optional) reports what was skipped — instead of failing
  /// closed.
  Status Query(const std::string& sql, const ReadOptions& ropts,
               QueryResult* result, DegradedInfo* degraded,
               uint64_t* epoch = nullptr);

  /// Executes `sqls` as one explicit batch against one snapshot.
  /// `results` and `statement_status` are resized to sqls.size();
  /// statements that fail to parse/prepare get their error status while
  /// the rest still execute. Returns non-OK only for whole-batch failures.
  Status QueryBatch(const std::vector<std::string>& sqls,
                    std::vector<QueryResult>* results,
                    std::vector<Status>* statement_status,
                    uint64_t* epoch = nullptr);

  /// Batch with per-read options; quarantine handling as in the Query
  /// overload (a degraded batch executes statement-by-statement against
  /// the surviving segments).
  Status QueryBatch(const std::vector<std::string>& sqls,
                    const ReadOptions& ropts,
                    std::vector<QueryResult>* results,
                    std::vector<Status>* statement_status,
                    DegradedInfo* degraded, uint64_t* epoch = nullptr);

  /// Builds and publishes the successor snapshot containing `batch`.
  /// Serialized with other appends; never blocks readers. Under
  /// durability the order is: build successor → WAL append + fsync →
  /// publish → return OK; a crash anywhere before the WAL write leaves no
  /// trace, after it the batch is recovered (acknowledged ⊆ recovered).
  Status Append(const Table& batch);

  /// Persists the current snapshot as checkpoint-<epoch>.pws2 and
  /// truncates the WAL (durable mode only; Unsupported otherwise). Blocks
  /// concurrent appends for the duration; readers are unaffected.
  Status Checkpoint();

  /// Runs one compaction step: picks the highest-priority eligible run
  /// under options().compaction, builds the merged segment OFF the append
  /// lock (readers keep serving), then publishes a same-epoch snapshot
  /// with compaction_seq + 1 under the append lock. `*did` (optional)
  /// reports whether a compaction was applied. Durable mode with
  /// compaction.checkpoint_after also checkpoints the compacted state; a
  /// crash before that checkpoint recovers the PRE-compaction segment set
  /// (the WAL is untouched — both states are consistent, never a mix).
  Status CompactNow(bool* did = nullptr);

  /// One published compaction, in apply order (the per-epoch replay log:
  /// re-applying each event's spec right after its epoch's append
  /// reproduces the exact segment structure).
  struct CompactionEvent {
    uint64_t seq = 0;    ///< compaction_seq of the published snapshot
    uint64_t epoch = 0;  ///< epoch it was applied at
    CompactionSpec spec;
    uint32_t segments_merged = 0;
    uint64_t rows = 0;
    uint64_t bytes_rewritten = 0;
  };
  std::vector<CompactionEvent> CompactionLog() const;

  ServingStats Stats() const;
  const ServingOptions& options() const { return options_; }
  const RecoveryInfo& recovery_info() const { return recovery_; }
  bool durable() const { return wal_ != nullptr; }

  /// Moves the Db back out (for aqp_shell's `.serve` round-trip). Fails
  /// unless all traffic has stopped: the plan cache is cleared, and no
  /// outstanding snapshot() reference may remain. Unsupported in durable
  /// mode (the on-disk state, not the in-memory Db, is the artifact).
  StatusOr<Db> TakeDb();

 private:
  /// Leader-side execution of one coalesced group against one snapshot.
  void ExecuteGroup(const std::vector<ReadCoalescer::Request*>& group);
  Status QueryUncoalesced(const std::string& sql, QueryResult* result,
                          uint64_t* epoch);
  /// The degraded view of `snap` (surviving segments only), cached per
  /// (snapshot, quarantine version) so repeated degraded reads do not
  /// rebuild the executor.
  StatusOr<std::shared_ptr<const Db>> DegradedDb(
      const std::shared_ptr<const DbSnapshot>& snap);
  Status QueryDegraded(const std::shared_ptr<const DbSnapshot>& snap,
                       const std::string& sql, QueryResult* result,
                       DegradedInfo* degraded, uint64_t* epoch);
  std::shared_ptr<DbSnapshot> Load() const;
  /// Opens the WAL + starts the checkpointer. `recovered` seeds recovery_.
  Status InitDurable(const RecoveryInfo& recovered);
  /// Checkpoint body; append_mu_ must be held.
  Status CheckpointLocked();
  void CheckpointerLoop();
  void CompactorLoop();
  /// Keeps `rows` (spanning [row_begin, row_begin + rows.NumRows())) in
  /// the bounded retention buffer so checkpoint-recovered serving (no kept
  /// raw table) can still rebuild segments. Oldest batches evict first.
  void RetainRows(uint64_t row_begin, Table rows);
  /// Whether the retention buffer contiguously covers [begin, end).
  bool CanStitchRetained(uint64_t begin, uint64_t end) const;
  /// Materializes rows [begin, end) from the retention buffer.
  StatusOr<Table> StitchRetained(uint64_t begin, uint64_t end) const;

  ServingOptions options_;
  /// Accessed only via std::atomic_load / std::atomic_store.
  std::shared_ptr<DbSnapshot> snapshot_;
  std::mutex append_mu_;  ///< serializes Append / Checkpoint / TakeDb
  PlanCache cache_;
  std::unique_ptr<ReadCoalescer> coalescer_;

  // Durability state (null/empty when serving in-memory).
  std::unique_ptr<Wal> wal_;
  RecoveryInfo recovery_;
  uint64_t appends_since_checkpoint_ = 0;  ///< guarded by append_mu_
  /// A compaction swap was published but not yet checkpointed (guarded by
  /// append_mu_); nudges the periodic checkpointer even with no appends.
  bool compaction_since_checkpoint_ = false;
  std::atomic<uint64_t> last_checkpoint_epoch_{0};
  std::atomic<uint64_t> checkpoints_{0};
  std::thread checkpointer_;
  std::mutex cp_mu_;
  std::condition_variable cp_cv_;
  bool cp_stop_ = false;

  // Segment lifecycle (compaction) state.
  std::thread compactor_;
  std::mutex co_mu_;
  std::condition_variable co_cv_;
  bool co_stop_ = false;
  mutable std::mutex events_mu_;
  std::vector<CompactionEvent> events_;  ///< guarded by events_mu_
  std::atomic<uint64_t> compaction_runs_{0};
  std::atomic<uint64_t> compaction_segments_merged_{0};
  std::atomic<uint64_t> compaction_rows_rewritten_{0};
  std::atomic<uint64_t> compaction_bytes_rewritten_{0};
  std::atomic<uint64_t> compaction_errors_{0};
  std::atomic<uint64_t> quarantine_drained_{0};
  /// Bounded retention of recent append rows (recovered serving has no
  /// kept raw table; these are the rebuild source). Guarded by
  /// retained_mu_.
  struct RetainedBatch {
    uint64_t row_begin = 0;
    uint64_t row_end = 0;
    Table rows;
  };
  mutable std::mutex retained_mu_;
  std::deque<RetainedBatch> retained_;
  size_t retained_bytes_ = 0;

  // Degraded-read cache: the WithoutQuarantined view of one snapshot,
  // keyed on the snapshot identity and its quarantine version (a newly
  // quarantined segment invalidates it).
  std::mutex degraded_mu_;
  std::shared_ptr<const DbSnapshot> degraded_src_;
  std::shared_ptr<const Db> degraded_db_;
  uint64_t degraded_qversion_ = 0;
  std::atomic<uint64_t> degraded_reads_{0};

  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batch_statements_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> appends_{0};
  std::atomic<uint64_t> errors_{0};
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_SERVE_SERVING_DB_H_
