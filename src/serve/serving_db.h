// ServingDb: a thread-safe, multi-reader serving wrapper around Db.
//
// The concurrency model is RCU-style snapshot swapping:
//  * Readers (`Query`, `QueryBatch`) atomically load the current
//    shared_ptr<DbSnapshot> — wait-free, no reader ever blocks on a
//    writer — and execute entirely against that pinned snapshot, so every
//    response reflects exactly one consistent epoch even while appends
//    land concurrently.
//  * `Append` (serialized by a writer mutex) builds the successor
//    snapshot off the serving threads with Db::WithAppended — sealed
//    segments are immutable and shared, only the new batch's segments are
//    built — then publishes it with one atomic store. Old snapshots are
//    refcounted away when the last in-flight reader and cached plan drop
//    them.
//
// Repeated statements hit a sharded LRU plan cache (serve/plan_cache.h);
// concurrent point reads are group-committed into Db batch execution by a
// read coalescer (serve/coalescer.h), which turns grid-sharing dashboard
// fan-in into the measured batch-execution win. Both are transparent:
// responses are bit-identical to uncached, uncoalesced execution.
#ifndef PAIRWISEHIST_SERVE_SERVING_DB_H_
#define PAIRWISEHIST_SERVE_SERVING_DB_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/coalescer.h"
#include "serve/plan_cache.h"
#include "serve/snapshot.h"

namespace pairwisehist {

struct ServingOptions {
  /// Group concurrent point queries into batch execution. Off = every
  /// request executes alone (still snapshot-isolated and cached).
  bool coalesce = true;
  /// Extra microseconds the coalescing leader waits for stragglers before
  /// each drain. 0 = coalesce only requests overlapping an in-flight
  /// batch (no added latency).
  uint32_t coalesce_window_us = 0;
  /// Prepared-plan cache size (entries) and shard count.
  size_t plan_cache_capacity = 1024;
  size_t plan_cache_shards = 8;
};

/// A point-in-time counter dump (see ServingDb::Stats).
struct ServingStats {
  uint64_t epoch = 0;
  uint64_t segments = 0;
  uint64_t rows = 0;
  uint64_t queries = 0;           ///< /query statements served
  uint64_t batches = 0;           ///< /batch calls served
  uint64_t batch_statements = 0;  ///< statements across /batch calls
  uint64_t coalesced_groups = 0;
  uint64_t coalesced_statements = 0;
  uint64_t max_group = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_entries = 0;
  uint64_t appends = 0;
  uint64_t errors = 0;
};

class ServingDb {
 public:
  /// Takes ownership of `db` as epoch 0. The Db should use the built-in
  /// engine (backends execute uncoalesced) and AppendMode::kSealSegment
  /// (Append returns Unsupported otherwise, see Db::WithAppended).
  explicit ServingDb(Db db, ServingOptions options = {});

  ServingDb(const ServingDb&) = delete;
  ServingDb& operator=(const ServingDb&) = delete;

  /// The current snapshot (wait-free atomic load). Holding the returned
  /// pointer pins that epoch — including across subsequent appends.
  std::shared_ptr<const DbSnapshot> snapshot() const;

  /// Executes one statement against the current snapshot, through the
  /// plan cache and (when enabled) the read coalescer. `*epoch` (optional)
  /// reports the snapshot epoch that answered.
  Status Query(const std::string& sql, QueryResult* result,
               uint64_t* epoch = nullptr);

  /// Executes `sqls` as one explicit batch against one snapshot.
  /// `results` and `statement_status` are resized to sqls.size();
  /// statements that fail to parse/prepare get their error status while
  /// the rest still execute. Returns non-OK only for whole-batch failures.
  Status QueryBatch(const std::vector<std::string>& sqls,
                    std::vector<QueryResult>* results,
                    std::vector<Status>* statement_status,
                    uint64_t* epoch = nullptr);

  /// Builds and publishes the successor snapshot containing `batch`.
  /// Serialized with other appends; never blocks readers.
  Status Append(const Table& batch);

  ServingStats Stats() const;
  const ServingOptions& options() const { return options_; }

  /// Moves the Db back out (for aqp_shell's `.serve` round-trip). Fails
  /// unless all traffic has stopped: the plan cache is cleared, and no
  /// outstanding snapshot() reference may remain.
  StatusOr<Db> TakeDb();

 private:
  /// Leader-side execution of one coalesced group against one snapshot.
  void ExecuteGroup(const std::vector<ReadCoalescer::Request*>& group);
  Status QueryUncoalesced(const std::string& sql, QueryResult* result,
                          uint64_t* epoch);
  std::shared_ptr<DbSnapshot> Load() const;

  ServingOptions options_;
  /// Accessed only via std::atomic_load / std::atomic_store.
  std::shared_ptr<DbSnapshot> snapshot_;
  std::mutex append_mu_;  ///< serializes Append / TakeDb
  PlanCache cache_;
  std::unique_ptr<ReadCoalescer> coalescer_;

  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batch_statements_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> appends_{0};
  std::atomic<uint64_t> errors_{0};
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_SERVE_SERVING_DB_H_
