// Blocking-socket HTTP/1.1 message I/O shared by the embedded server and
// the test/bench client. POSIX sockets only, no external dependencies —
// the serving layer targets the same minimal-footprint shape as the rest
// of the library.
#ifndef PAIRWISEHIST_SERVE_HTTP_IO_H_
#define PAIRWISEHIST_SERVE_HTTP_IO_H_

#include <atomic>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace pairwisehist {

/// One parsed HTTP message (request or response).
struct HttpMessage {
  std::string start_line;  ///< "POST /query HTTP/1.1" or "HTTP/1.1 200 OK"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* FindHeader(const std::string& name) const;
};

/// A connected socket with read buffering (keep-alive pipelining safe:
/// bytes past one message stay buffered for the next Read).
class HttpConn {
 public:
  explicit HttpConn(int fd) : fd_(fd) {}

  /// Reads one full message (headers + Content-Length body). On orderly
  /// peer close before any bytes of a new message, sets *closed and
  /// returns OK with an empty message. `stop` (optional) aborts the read
  /// when it becomes true (polled every ~100 ms). `on_block` (optional)
  /// runs once, just before the first wait on the socket — i.e. only when
  /// the buffered bytes don't already hold a complete message. A server
  /// corking its responses flushes there: pipelined requests are answered
  /// from/into userspace buffers, and the flush syscall happens exactly
  /// when the connection would go idle. A non-OK result aborts the read.
  Status Read(HttpMessage* msg, bool* closed,
              const std::atomic<bool>* stop = nullptr,
              const std::function<Status()>* on_block = nullptr);

  /// Pipelining drain: parses the next message if one is already
  /// buffered (topping the buffer up with a single non-blocking recv),
  /// never waiting on the socket. Returns true when *msg was filled.
  /// False with non-OK *st means the buffered bytes are malformed;
  /// false with OK *st just means no complete message is available yet
  /// (partial bytes stay buffered for the next Read).
  bool TryReadBuffered(HttpMessage* msg, Status* st);

  /// Writes the whole buffer (retrying short writes).
  Status Write(const std::string& data);

  int fd() const { return fd_; }

 private:
  /// Parses one complete message out of buf_ (consuming it). Returns
  /// 1 = parsed, 0 = need more bytes, -1 = malformed (*st set).
  int ParseBuffered(HttpMessage* msg, Status* st);

  int fd_;
  std::string buf_;
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_SERVE_HTTP_IO_H_
