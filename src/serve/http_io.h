// Blocking-socket HTTP/1.1 message I/O shared by the embedded server and
// the test/bench client. POSIX sockets only, no external dependencies —
// the serving layer targets the same minimal-footprint shape as the rest
// of the library.
//
// Robustness contract: malformed framing surfaces as InvalidArgument (the
// server answers 400 and closes), oversized headers/bodies as OutOfRange
// (413) before any unbounded buffering, idle peers are reaped after
// ReadDeadlines::idle_timeout_ms, and every read/write path handles EINTR
// and short transfers.
#ifndef PAIRWISEHIST_SERVE_HTTP_IO_H_
#define PAIRWISEHIST_SERVE_HTTP_IO_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace pairwisehist {

/// Hard caps on buffered message size (enforced before buffering).
constexpr size_t kMaxHttpHeaderBytes = 64 * 1024;
constexpr size_t kMaxHttpBodyBytes = 64u * 1024 * 1024;

/// One parsed HTTP message (request or response).
struct HttpMessage {
  std::string start_line;  ///< "POST /query HTTP/1.1" or "HTTP/1.1 200 OK"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* FindHeader(const std::string& name) const;
};

/// Knobs for HttpConn::Read. All optional; zero/null = wait forever.
struct ReadDeadlines {
  /// Hard abort: a pending read returns Internal when this becomes true
  /// (polled every ~100 ms).
  const std::atomic<bool>* stop = nullptr;
  /// Graceful drain: when this becomes true and the connection sits
  /// *between* messages (no buffered partial bytes), Read reports an
  /// orderly close so the connection can finish in-flight work and exit.
  const std::atomic<bool>* drain = nullptr;
  /// Reap idle peers: with no complete message after this many ms, Read
  /// reports an orderly close (nothing buffered) or DataLoss (peer stalled
  /// mid-message). 0 = never.
  uint32_t idle_timeout_ms = 0;
  /// Runs once, just before the first wait on the socket — i.e. only when
  /// the buffered bytes don't already hold a complete message. A server
  /// corking its responses flushes there. A non-OK result aborts the read.
  const std::function<Status()>* on_block = nullptr;
};

/// A connected socket with read buffering (keep-alive pipelining safe:
/// bytes past one message stay buffered for the next Read).
class HttpConn {
 public:
  explicit HttpConn(int fd) : fd_(fd) {}

  /// Reads one full message (headers + Content-Length body). On orderly
  /// peer close before any bytes of a new message — or drain/idle-reap per
  /// `deadlines` — sets *closed and returns OK with an empty message.
  /// Malformed framing returns InvalidArgument; oversized headers or
  /// Content-Length beyond the caps returns OutOfRange without buffering
  /// the excess.
  Status Read(HttpMessage* msg, bool* closed,
              const ReadDeadlines& deadlines = {});

  /// Pipelining drain: parses the next message if one is already
  /// buffered (topping the buffer up with a single non-blocking recv),
  /// never waiting on the socket. Returns true when *msg was filled.
  /// False with non-OK *st means the buffered bytes are malformed;
  /// false with OK *st just means no complete message is available yet
  /// (partial bytes stay buffered for the next Read).
  bool TryReadBuffered(HttpMessage* msg, Status* st);

  /// Writes the whole buffer: retries EINTR and short writes; a send
  /// timeout (SO_SNDTIMEO on the fd) or injected "http.send" fault
  /// surfaces as Internal. Never raises SIGPIPE.
  Status Write(const std::string& data);

  int fd() const { return fd_; }

 private:
  /// Parses one complete message out of buf_ (consuming it). Returns
  /// 1 = parsed, 0 = need more bytes, -1 = malformed/oversized (*st set).
  int ParseBuffered(HttpMessage* msg, Status* st);

  int fd_;
  std::string buf_;
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_SERVE_HTTP_IO_H_
