#include "serve/service.h"

#include <chrono>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "core/integrity.h"
#include "serve/json.h"
#include "storage/csv.h"

namespace pairwisehist {

bool ServiceGate::Admit(bool is_append) {
  if (is_append && limits_.max_inflight_appends > 0) {
    uint32_t cur = inflight_appends_.load(std::memory_order_relaxed);
    while (true) {
      if (cur >= limits_.max_inflight_appends) {
        shed_appends_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      if (inflight_appends_.compare_exchange_weak(
              cur, cur + 1, std::memory_order_acq_rel)) {
        break;
      }
    }
  }
  if (limits_.max_inflight > 0) {
    uint32_t cur = inflight_.load(std::memory_order_relaxed);
    while (true) {
      if (cur >= limits_.max_inflight) {
        if (is_append && limits_.max_inflight_appends > 0) {
          inflight_appends_.fetch_sub(1, std::memory_order_acq_rel);
        }
        (is_append ? shed_appends_ : shed_reads_)
            .fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      if (inflight_.compare_exchange_weak(cur, cur + 1,
                                          std::memory_order_acq_rel)) {
        break;
      }
    }
  } else {
    inflight_.fetch_add(1, std::memory_order_acq_rel);
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ServiceGate::Release(bool is_append) {
  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  if (is_append && limits_.max_inflight_appends > 0) {
    inflight_appends_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

ServiceGate::Stats ServiceGate::stats() const {
  Stats s;
  s.inflight = inflight_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.shed_reads = shed_reads_.load(std::memory_order_relaxed);
  s.shed_appends = shed_appends_.load(std::memory_order_relaxed);
  s.timeouts = timeouts_.load(std::memory_order_relaxed);
  return s;
}

namespace {

int HttpCodeFor(const Status& st) {
  switch (st.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kUnsupported:
    case StatusCode::kUnimplemented:
      return 400;
    case StatusCode::kOutOfRange:
      return 413;
    case StatusCode::kDataLoss:
      // A read refused because integrity verification quarantined a
      // segment is a server-side condition that clears when the operator
      // restores the file (or the next checkpoint replaces it): 503, so
      // clients retry. Every other DataLoss on the service surface means
      // the client's bytes were truncated/corrupt (e.g. a torn CSV or
      // WAL codec reject) — client input, not a server fault.
      return st.message().find("quarantined") != std::string::npos ? 503
                                                                   : 400;
    default:
      return 500;
  }
}

HttpResponse ErrorResponse(const Status& st) {
  HttpResponse resp;
  resp.status = HttpCodeFor(st);
  resp.body = "{\"error\":";
  AppendJsonString(&resp.body, st.message());
  resp.body += ",\"code\":";
  AppendJsonString(&resp.body, StatusCodeName(st.code()));
  resp.body += "}";
  return resp;
}

HttpResponse SimpleError(int status, const std::string& msg) {
  HttpResponse resp;
  resp.status = status;
  resp.body = "{\"error\":";
  AppendJsonString(&resp.body, msg);
  resp.body += "}";
  return resp;
}

HttpResponse ShedResponse(const ServiceGate* gate) {
  HttpResponse resp = SimpleError(503, "over capacity, retry later");
  const uint32_t ms = gate->limits().retry_after_ms;
  const uint32_t secs = ms == 0 ? 1 : (ms + 999) / 1000;
  resp.headers.emplace_back("Retry-After", std::to_string(secs));
  return resp;
}

/// Per-request deadline bookkeeping: header > configured default > none.
struct Deadline {
  bool active = false;
  std::chrono::steady_clock::time_point at;

  static Deadline For(const HttpRequest& req, const ServiceGate* gate) {
    Deadline d;
    uint32_t ms = gate != nullptr ? gate->limits().default_deadline_ms : 0;
    if (const std::string* h = req.FindHeader("X-Deadline-Ms")) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(h->c_str(), &end, 10);
      if (end != h->c_str() && *end == '\0') ms = static_cast<uint32_t>(v);
    }
    if (ms == 0) return d;
    // Direct handler invocations (tests, shell) carry no arrival stamp;
    // the deadline then starts now rather than at the clock's epoch.
    const auto base =
        req.arrival == std::chrono::steady_clock::time_point{}
            ? std::chrono::steady_clock::now()
            : req.arrival;
    d.active = true;
    d.at = base + std::chrono::milliseconds(ms);
    return d;
  }

  bool Expired() const {
    return active && std::chrono::steady_clock::now() >= at;
  }
};

HttpResponse DeadlineResponse(ServiceGate* gate) {
  if (gate != nullptr) gate->CountTimeout();
  return SimpleError(408, "deadline expired before execution");
}

/// True when the client opted into degraded reads (X-Allow-Degraded: 1
/// or true). Quarantined segments are then skipped instead of failing
/// the read closed with 503.
bool AllowsDegraded(const HttpRequest& req) {
  const std::string* h = req.FindHeader("X-Allow-Degraded");
  return h != nullptr && (*h == "1" || *h == "true");
}

void AppendDegradedFields(std::string* b, const DegradedInfo& degraded) {
  if (!degraded.degraded) return;
  *b += ",\"degraded\":true,\"rows_skipped\":";
  *b += std::to_string(degraded.rows_skipped);
  *b += ",\"segments_skipped\":";
  *b += std::to_string(degraded.segments_skipped);
}

HttpResponse HandleQuery(ServingDb* db, const HttpRequest& req) {
  StatusOr<JsonValue> doc = ParseJson(req.body);
  if (!doc.ok()) return ErrorResponse(doc.status());
  const JsonValue* sql = doc.value().Find("sql");
  if (sql == nullptr || sql->type != JsonValue::Type::kString) {
    return SimpleError(400, "body must be {\"sql\": \"...\"}");
  }
  ReadOptions ropts;
  ropts.allow_degraded = AllowsDegraded(req);
  QueryResult result;
  DegradedInfo degraded;
  uint64_t epoch = 0;
  Status st = db->Query(sql->str, ropts, &result, &degraded, &epoch);
  if (!st.ok()) return ErrorResponse(st);
  HttpResponse resp;
  resp.body += "{\"epoch\":";
  resp.body += std::to_string(epoch);
  AppendDegradedFields(&resp.body, degraded);
  resp.body += ",\"result\":";
  AppendQueryResult(&resp.body, result);
  resp.body += "}";
  return resp;
}

HttpResponse HandleBatch(ServingDb* db, const HttpRequest& req) {
  StatusOr<JsonValue> doc = ParseJson(req.body);
  if (!doc.ok()) return ErrorResponse(doc.status());
  const JsonValue* arr = doc.value().Find("sqls");
  if (arr == nullptr || arr->type != JsonValue::Type::kArray) {
    return SimpleError(400, "body must be {\"sqls\": [\"...\", ...]}");
  }
  std::vector<std::string> sqls;
  sqls.reserve(arr->items.size());
  for (const JsonValue& item : arr->items) {
    if (item.type != JsonValue::Type::kString) {
      return SimpleError(400, "every element of \"sqls\" must be a string");
    }
    sqls.push_back(item.str);
  }
  ReadOptions ropts;
  ropts.allow_degraded = AllowsDegraded(req);
  std::vector<QueryResult> results;
  std::vector<Status> statement_status;
  DegradedInfo degraded;
  uint64_t epoch = 0;
  Status st = db->QueryBatch(sqls, ropts, &results, &statement_status,
                             &degraded, &epoch);
  if (!st.ok()) return ErrorResponse(st);
  HttpResponse resp;
  resp.body += "{\"epoch\":";
  resp.body += std::to_string(epoch);
  AppendDegradedFields(&resp.body, degraded);
  resp.body += ",\"results\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    if (i != 0) resp.body.push_back(',');
    if (statement_status[i].ok()) {
      AppendQueryResult(&resp.body, results[i]);
    } else {
      resp.body += "{\"error\":";
      AppendJsonString(&resp.body, statement_status[i].message());
      resp.body += ",\"code\":";
      AppendJsonString(&resp.body,
                       StatusCodeName(statement_status[i].code()));
      resp.body += "}";
    }
  }
  resp.body += "]}";
  return resp;
}

/// CSV carries no type annotations, so ParseCsv can only infer int64 /
/// float64 / categorical. Re-type columns to what the serving schema
/// expects wherever that is lossless — numeric <-> numeric/timestamp
/// (timestamps round-trip as epoch integers), and all-null columns to
/// anything — so a ToCsvString round-trip appends cleanly. Genuine
/// mismatches are left alone for Db's schema validation to report.
Table CoerceToSchema(
    Table batch, const std::vector<std::pair<std::string, DataType>>& schema) {
  if (batch.NumColumns() != schema.size()) return batch;
  auto is_numeric = [](DataType t) {
    return t == DataType::kFloat64 || t == DataType::kInt64 ||
           t == DataType::kTimestamp;
  };
  Table out(batch.name());
  for (size_t c = 0; c < schema.size(); ++c) {
    Column& col = batch.column(c);
    const DataType want = schema[c].second;
    bool coercible = col.name() == schema[c].first && col.type() != want &&
                     is_numeric(want) &&
                     (is_numeric(col.type()) || col.non_null_count() == 0);
    if (!coercible) {
      out.AddColumn(std::move(col));
      continue;
    }
    Column typed(col.name(), want,
                 want == DataType::kFloat64 ? col.decimals() : 0);
    typed.Reserve(col.size());
    for (size_t r = 0; r < col.size(); ++r) {
      if (col.IsNull(r)) {
        typed.AppendNull();
      } else {
        typed.Append(col.Value(r));
      }
    }
    out.AddColumn(std::move(typed));
  }
  return out;
}

HttpResponse HandleAppend(ServingDb* db, const HttpRequest& req,
                          ServiceGate* gate, const Deadline& deadline) {
  StatusOr<Table> parsed = ParseCsv(req.body, "append");
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  const Table batch = CoerceToSchema(std::move(parsed).value(),
                                     db->snapshot()->db.AppendSchema());
  // Parsing a large CSV can consume the whole budget; don't start the
  // expensive (and durable) build for a client that already gave up.
  if (deadline.Expired()) return DeadlineResponse(gate);
  Status st = db->Append(batch);
  if (!st.ok()) return ErrorResponse(st);
  ServingStats stats = db->Stats();
  HttpResponse resp;
  resp.body += "{\"epoch\":";
  resp.body += std::to_string(stats.epoch);
  resp.body += ",\"rows\":";
  resp.body += std::to_string(stats.rows);
  resp.body += ",\"segments\":";
  resp.body += std::to_string(stats.segments);
  resp.body += "}";
  return resp;
}

HttpResponse HandleStats(ServingDb* db, ServiceGate* gate) {
  const ServingStats s = db->Stats();
  HttpResponse resp;
  std::string& b = resp.body;
  b += "{\"epoch\":" + std::to_string(s.epoch);
  b += ",\"segments\":" + std::to_string(s.segments);
  b += ",\"rows\":" + std::to_string(s.rows);
  b += ",\"queries\":" + std::to_string(s.queries);
  b += ",\"batches\":" + std::to_string(s.batches);
  b += ",\"batch_statements\":" + std::to_string(s.batch_statements);
  b += ",\"coalesced_groups\":" + std::to_string(s.coalesced_groups);
  b += ",\"coalesced_statements\":" + std::to_string(s.coalesced_statements);
  b += ",\"max_group\":" + std::to_string(s.max_group);
  b += ",\"cache_hits\":" + std::to_string(s.cache_hits);
  b += ",\"cache_misses\":" + std::to_string(s.cache_misses);
  b += ",\"cache_entries\":" + std::to_string(s.cache_entries);
  b += ",\"appends\":" + std::to_string(s.appends);
  b += ",\"errors\":" + std::to_string(s.errors);
  b += ",\"mapped_bytes\":" + std::to_string(s.mapped_bytes);
  b += ",\"quarantined_segments\":" + std::to_string(s.quarantined_segments);
  b += ",\"quarantined_rows\":" + std::to_string(s.quarantined_rows);
  b += ",\"scrub_errors\":" + std::to_string(s.scrub_errors);
  b += ",\"degraded_reads\":" + std::to_string(s.degraded_reads);
  b += ",\"compaction_enabled\":";
  b += s.compaction_enabled ? "true" : "false";
  b += ",\"compaction_seq\":" + std::to_string(s.compaction_seq);
  b += ",\"compaction_runs\":" + std::to_string(s.compaction_runs);
  b += ",\"compaction_segments_merged\":" +
       std::to_string(s.compaction_segments_merged);
  b += ",\"compaction_rows_rewritten\":" +
       std::to_string(s.compaction_rows_rewritten);
  b += ",\"compaction_bytes_rewritten\":" +
       std::to_string(s.compaction_bytes_rewritten);
  b += ",\"compaction_backlog\":" + std::to_string(s.compaction_backlog);
  b += ",\"compaction_errors\":" + std::to_string(s.compaction_errors);
  b += ",\"quarantine_drained\":" + std::to_string(s.quarantine_drained);
  b += ",\"retained_bytes\":" + std::to_string(s.retained_bytes);
  b += ",\"durable\":";
  b += s.durable ? "true" : "false";
  if (s.durable) {
    b += ",\"wal_records\":" + std::to_string(s.wal_records);
    b += ",\"wal_bytes\":" + std::to_string(s.wal_bytes);
    b += ",\"wal_fsyncs\":" + std::to_string(s.wal_fsyncs);
    b += ",\"last_checkpoint_epoch\":" +
         std::to_string(s.last_checkpoint_epoch);
    b += ",\"checkpoints\":" + std::to_string(s.checkpoints);
    b += ",\"recovered_records\":" + std::to_string(s.recovered_records);
    b += ",\"recovered_rows\":" + std::to_string(s.recovered_rows);
    b += ",\"recovery_tail_truncated\":";
    b += s.recovery_tail_truncated ? "true" : "false";
    b += ",\"checkpoints_skipped\":" + std::to_string(s.checkpoints_skipped);
    if (!s.corrupt_checkpoint.empty()) {
      b += ",\"corrupt_checkpoint\":";
      AppendJsonString(&b, s.corrupt_checkpoint);
    }
  }
  if (gate != nullptr) {
    const ServiceGate::Stats g = gate->stats();
    b += ",\"inflight\":" + std::to_string(g.inflight);
    b += ",\"admitted\":" + std::to_string(g.admitted);
    b += ",\"shed_reads\":" + std::to_string(g.shed_reads);
    b += ",\"shed_appends\":" + std::to_string(g.shed_appends);
    b += ",\"timeouts\":" + std::to_string(g.timeouts);
  }
  b += "}";
  return resp;
}

/// Liveness/readiness for load balancers and orchestration probes: 200
/// only while serving (ok), 503 while starting or draining so traffic
/// routes away before the listener actually stops. The body carries the
/// integrity counters an operator checks first when probes flap.
HttpResponse HandleHealthz(ServingDb* db, ServiceState* state) {
  const ServiceState::Phase phase =
      state != nullptr ? state->phase() : ServiceState::Phase::kOk;
  const ServingStats s = db->Stats();
  HttpResponse resp;
  resp.status = phase == ServiceState::Phase::kOk ? 200 : 503;
  std::string& b = resp.body;
  b += "{\"status\":\"";
  b += phase == ServiceState::Phase::kStarting   ? "starting"
       : phase == ServiceState::Phase::kDraining ? "draining"
                                                 : "ok";
  b += "\",\"quarantined_segments\":" + std::to_string(s.quarantined_segments);
  b += ",\"quarantined_rows\":" + std::to_string(s.quarantined_rows);
  b += ",\"scrub_errors\":" + std::to_string(s.scrub_errors);
  b += ",\"legacy_pws3v1_opens\":" + std::to_string(Pws3LegacyOpenCount());
  b += ",\"compaction_runs\":" + std::to_string(s.compaction_runs);
  b += ",\"compaction_backlog\":" + std::to_string(s.compaction_backlog);
  b += ",\"compaction_errors\":" + std::to_string(s.compaction_errors);
  b += "}";
  return resp;
}

HttpResponse Dispatch(ServingDb* db, const HttpRequest& req,
                      ServiceGate* gate, ServiceState* state,
                      const Deadline& deadline) {
  if (req.path == "/query") {
    if (req.method != "POST") return SimpleError(405, "use POST /query");
    return HandleQuery(db, req);
  }
  if (req.path == "/batch") {
    if (req.method != "POST") return SimpleError(405, "use POST /batch");
    return HandleBatch(db, req);
  }
  if (req.path == "/append") {
    if (req.method != "POST") return SimpleError(405, "use POST /append");
    return HandleAppend(db, req, gate, deadline);
  }
  if (req.path == "/stats") {
    if (req.method != "GET") return SimpleError(405, "use GET /stats");
    return HandleStats(db, gate);
  }
  if (req.path == "/healthz") {
    if (req.method != "GET") return SimpleError(405, "use GET /healthz");
    return HandleHealthz(db, state);
  }
  return SimpleError(404, "unknown endpoint '" + req.path +
                              "' (try /query /batch /append /stats /healthz)");
}

/// Admission + deadline wrapper around Dispatch. /stats and /healthz are
/// never gated: the operator's view (and the probe that decides whether
/// to route traffic here at all) must stay reachable during the overload
/// they exist to diagnose.
HttpResponse HandleRequest(ServingDb* db, const HttpRequest& req,
                           ServiceGate* gate, ServiceState* state) {
  if (gate == nullptr || req.path == "/stats" || req.path == "/healthz") {
    return Dispatch(db, req, gate, state, Deadline{});
  }
  const Deadline deadline = Deadline::For(req, gate);
  if (deadline.Expired()) return DeadlineResponse(gate);
  const bool is_append = req.path == "/append";
  if (!gate->Admit(is_append)) return ShedResponse(gate);
  Status injected = failpoint::Fire("service.handle").status;
  HttpResponse resp = injected.ok()
                          ? Dispatch(db, req, gate, state, deadline)
                          : ErrorResponse(injected);
  gate->Release(is_append);
  return resp;
}

}  // namespace

HttpServer::Handler MakeServingHandler(ServingDb* db, ServiceGate* gate,
                                       ServiceState* state) {
  return [db, gate, state](const HttpRequest& req) -> HttpResponse {
    return HandleRequest(db, req, gate, state);
  };
}

HttpServer::BatchHandler MakeServingBatchHandler(ServingDb* db,
                                                 ServiceGate* gate,
                                                 ServiceState* state) {
  return [db, gate, state](const std::vector<HttpRequest>& reqs)
             -> std::vector<HttpResponse> {
    std::vector<HttpResponse> out(reqs.size());
    // Well-formed /query statements in the group coalesce into one
    // QueryBatch on this thread (the pipelined-burst analogue of the
    // cross-connection ReadCoalescer); everything else — other
    // endpoints, bad bodies — takes the single-request path, producing
    // byte-identical responses to unpipelined traffic. Admission is
    // per-request: shed requests answer 503 while their well-behaved
    // pipeline neighbors still execute.
    std::vector<size_t> qidx;
    std::vector<std::string> sqls;
    const bool coalesce = db->options().coalesce;
    for (size_t i = 0; i < reqs.size(); ++i) {
      const HttpRequest& req = reqs[i];
      // A request that opts into degraded reads carries per-request read
      // options the coalesced path cannot represent — route it through
      // the single-request path so the header is honored.
      if (coalesce && req.method == "POST" && req.path == "/query" &&
          req.FindHeader("X-Allow-Degraded") == nullptr) {
        StatusOr<JsonValue> doc = ParseJson(req.body);
        const JsonValue* sql =
            doc.ok() ? doc.value().Find("sql") : nullptr;
        if (sql != nullptr && sql->type == JsonValue::Type::kString) {
          if (gate != nullptr) {
            const Deadline deadline = Deadline::For(req, gate);
            if (deadline.Expired()) {
              out[i] = DeadlineResponse(gate);
              continue;
            }
            if (!gate->Admit(/*is_append=*/false)) {
              out[i] = ShedResponse(gate);
              continue;
            }
          }
          qidx.push_back(i);
          sqls.push_back(sql->str);
          continue;
        }
      }
      out[i] = HandleRequest(db, req, gate, state);
    }
    if (sqls.size() == 1) {
      out[qidx[0]] = Dispatch(db, reqs[qidx[0]], gate, state, Deadline{});
    } else if (!sqls.empty()) {
      std::vector<QueryResult> results;
      std::vector<Status> statement_status;
      uint64_t epoch = 0;
      Status st = db->QueryBatch(sqls, &results, &statement_status, &epoch);
      for (size_t j = 0; j < sqls.size(); ++j) {
        const Status& ss = st.ok() ? statement_status[j] : st;
        if (!ss.ok()) {
          out[qidx[j]] = ErrorResponse(ss);
          continue;
        }
        HttpResponse resp;
        resp.body += "{\"epoch\":";
        resp.body += std::to_string(epoch);
        resp.body += ",\"result\":";
        AppendQueryResult(&resp.body, results[j]);
        resp.body += "}";
        out[qidx[j]] = std::move(resp);
      }
    }
    if (gate != nullptr) {
      for (size_t j = 0; j < qidx.size(); ++j) {
        gate->Release(/*is_append=*/false);
      }
    }
    return out;
  };
}

}  // namespace pairwisehist
