#include "serve/service.h"

#include <string>
#include <vector>

#include "serve/json.h"
#include "storage/csv.h"

namespace pairwisehist {

namespace {

int HttpCodeFor(const Status& st) {
  switch (st.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kOutOfRange:
    case StatusCode::kUnsupported:
    case StatusCode::kUnimplemented:
      return 400;
    default:
      return 500;
  }
}

HttpResponse ErrorResponse(const Status& st) {
  HttpResponse resp;
  resp.status = HttpCodeFor(st);
  resp.body = "{\"error\":";
  AppendJsonString(&resp.body, st.message());
  resp.body += ",\"code\":";
  AppendJsonString(&resp.body, StatusCodeName(st.code()));
  resp.body += "}";
  return resp;
}

HttpResponse SimpleError(int status, const std::string& msg) {
  HttpResponse resp;
  resp.status = status;
  resp.body = "{\"error\":";
  AppendJsonString(&resp.body, msg);
  resp.body += "}";
  return resp;
}

HttpResponse HandleQuery(ServingDb* db, const HttpRequest& req) {
  StatusOr<JsonValue> doc = ParseJson(req.body);
  if (!doc.ok()) return ErrorResponse(doc.status());
  const JsonValue* sql = doc.value().Find("sql");
  if (sql == nullptr || sql->type != JsonValue::Type::kString) {
    return SimpleError(400, "body must be {\"sql\": \"...\"}");
  }
  QueryResult result;
  uint64_t epoch = 0;
  Status st = db->Query(sql->str, &result, &epoch);
  if (!st.ok()) return ErrorResponse(st);
  HttpResponse resp;
  resp.body += "{\"epoch\":";
  resp.body += std::to_string(epoch);
  resp.body += ",\"result\":";
  AppendQueryResult(&resp.body, result);
  resp.body += "}";
  return resp;
}

HttpResponse HandleBatch(ServingDb* db, const HttpRequest& req) {
  StatusOr<JsonValue> doc = ParseJson(req.body);
  if (!doc.ok()) return ErrorResponse(doc.status());
  const JsonValue* arr = doc.value().Find("sqls");
  if (arr == nullptr || arr->type != JsonValue::Type::kArray) {
    return SimpleError(400, "body must be {\"sqls\": [\"...\", ...]}");
  }
  std::vector<std::string> sqls;
  sqls.reserve(arr->items.size());
  for (const JsonValue& item : arr->items) {
    if (item.type != JsonValue::Type::kString) {
      return SimpleError(400, "every element of \"sqls\" must be a string");
    }
    sqls.push_back(item.str);
  }
  std::vector<QueryResult> results;
  std::vector<Status> statement_status;
  uint64_t epoch = 0;
  Status st = db->QueryBatch(sqls, &results, &statement_status, &epoch);
  if (!st.ok()) return ErrorResponse(st);
  HttpResponse resp;
  resp.body += "{\"epoch\":";
  resp.body += std::to_string(epoch);
  resp.body += ",\"results\":[";
  for (size_t i = 0; i < results.size(); ++i) {
    if (i != 0) resp.body.push_back(',');
    if (statement_status[i].ok()) {
      AppendQueryResult(&resp.body, results[i]);
    } else {
      resp.body += "{\"error\":";
      AppendJsonString(&resp.body, statement_status[i].message());
      resp.body += ",\"code\":";
      AppendJsonString(&resp.body,
                       StatusCodeName(statement_status[i].code()));
      resp.body += "}";
    }
  }
  resp.body += "]}";
  return resp;
}

/// CSV carries no type annotations, so ParseCsv can only infer int64 /
/// float64 / categorical. Re-type columns to what the serving schema
/// expects wherever that is lossless — numeric <-> numeric/timestamp
/// (timestamps round-trip as epoch integers), and all-null columns to
/// anything — so a ToCsvString round-trip appends cleanly. Genuine
/// mismatches are left alone for Db's schema validation to report.
Table CoerceToSchema(
    Table batch, const std::vector<std::pair<std::string, DataType>>& schema) {
  if (batch.NumColumns() != schema.size()) return batch;
  auto is_numeric = [](DataType t) {
    return t == DataType::kFloat64 || t == DataType::kInt64 ||
           t == DataType::kTimestamp;
  };
  Table out(batch.name());
  for (size_t c = 0; c < schema.size(); ++c) {
    Column& col = batch.column(c);
    const DataType want = schema[c].second;
    bool coercible = col.name() == schema[c].first && col.type() != want &&
                     is_numeric(want) &&
                     (is_numeric(col.type()) || col.non_null_count() == 0);
    if (!coercible) {
      out.AddColumn(std::move(col));
      continue;
    }
    Column typed(col.name(), want,
                 want == DataType::kFloat64 ? col.decimals() : 0);
    typed.Reserve(col.size());
    for (size_t r = 0; r < col.size(); ++r) {
      if (col.IsNull(r)) {
        typed.AppendNull();
      } else {
        typed.Append(col.Value(r));
      }
    }
    out.AddColumn(std::move(typed));
  }
  return out;
}

HttpResponse HandleAppend(ServingDb* db, const HttpRequest& req) {
  StatusOr<Table> parsed = ParseCsv(req.body, "append");
  if (!parsed.ok()) return ErrorResponse(parsed.status());
  const Table batch = CoerceToSchema(std::move(parsed).value(),
                                     db->snapshot()->db.AppendSchema());
  Status st = db->Append(batch);
  if (!st.ok()) return ErrorResponse(st);
  ServingStats stats = db->Stats();
  HttpResponse resp;
  resp.body += "{\"epoch\":";
  resp.body += std::to_string(stats.epoch);
  resp.body += ",\"rows\":";
  resp.body += std::to_string(stats.rows);
  resp.body += ",\"segments\":";
  resp.body += std::to_string(stats.segments);
  resp.body += "}";
  return resp;
}

HttpResponse HandleStats(ServingDb* db) {
  const ServingStats s = db->Stats();
  HttpResponse resp;
  std::string& b = resp.body;
  b += "{\"epoch\":" + std::to_string(s.epoch);
  b += ",\"segments\":" + std::to_string(s.segments);
  b += ",\"rows\":" + std::to_string(s.rows);
  b += ",\"queries\":" + std::to_string(s.queries);
  b += ",\"batches\":" + std::to_string(s.batches);
  b += ",\"batch_statements\":" + std::to_string(s.batch_statements);
  b += ",\"coalesced_groups\":" + std::to_string(s.coalesced_groups);
  b += ",\"coalesced_statements\":" + std::to_string(s.coalesced_statements);
  b += ",\"max_group\":" + std::to_string(s.max_group);
  b += ",\"cache_hits\":" + std::to_string(s.cache_hits);
  b += ",\"cache_misses\":" + std::to_string(s.cache_misses);
  b += ",\"cache_entries\":" + std::to_string(s.cache_entries);
  b += ",\"appends\":" + std::to_string(s.appends);
  b += ",\"errors\":" + std::to_string(s.errors);
  b += "}";
  return resp;
}

HttpResponse HandleRequest(ServingDb* db, const HttpRequest& req) {
  if (req.path == "/query") {
    if (req.method != "POST") return SimpleError(405, "use POST /query");
    return HandleQuery(db, req);
  }
  if (req.path == "/batch") {
    if (req.method != "POST") return SimpleError(405, "use POST /batch");
    return HandleBatch(db, req);
  }
  if (req.path == "/append") {
    if (req.method != "POST") return SimpleError(405, "use POST /append");
    return HandleAppend(db, req);
  }
  if (req.path == "/stats") {
    if (req.method != "GET") return SimpleError(405, "use GET /stats");
    return HandleStats(db);
  }
  return SimpleError(404, "unknown endpoint '" + req.path +
                              "' (try /query /batch /append /stats)");
}

}  // namespace

HttpServer::Handler MakeServingHandler(ServingDb* db) {
  return [db](const HttpRequest& req) -> HttpResponse {
    return HandleRequest(db, req);
  };
}

HttpServer::BatchHandler MakeServingBatchHandler(ServingDb* db) {
  return [db](const std::vector<HttpRequest>& reqs)
             -> std::vector<HttpResponse> {
    std::vector<HttpResponse> out(reqs.size());
    // Well-formed /query statements in the group coalesce into one
    // QueryBatch on this thread (the pipelined-burst analogue of the
    // cross-connection ReadCoalescer); everything else — other
    // endpoints, bad bodies — takes the single-request path, producing
    // byte-identical responses to unpipelined traffic.
    std::vector<size_t> qidx;
    std::vector<std::string> sqls;
    const bool coalesce = db->options().coalesce;
    for (size_t i = 0; i < reqs.size(); ++i) {
      const HttpRequest& req = reqs[i];
      if (coalesce && req.method == "POST" && req.path == "/query") {
        StatusOr<JsonValue> doc = ParseJson(req.body);
        const JsonValue* sql =
            doc.ok() ? doc.value().Find("sql") : nullptr;
        if (sql != nullptr && sql->type == JsonValue::Type::kString) {
          qidx.push_back(i);
          sqls.push_back(sql->str);
          continue;
        }
      }
      out[i] = HandleRequest(db, req);
    }
    if (sqls.size() == 1) {
      out[qidx[0]] = HandleRequest(db, reqs[qidx[0]]);
    } else if (!sqls.empty()) {
      std::vector<QueryResult> results;
      std::vector<Status> statement_status;
      uint64_t epoch = 0;
      Status st = db->QueryBatch(sqls, &results, &statement_status, &epoch);
      for (size_t j = 0; j < sqls.size(); ++j) {
        const Status& ss = st.ok() ? statement_status[j] : st;
        if (!ss.ok()) {
          out[qidx[j]] = ErrorResponse(ss);
          continue;
        }
        HttpResponse resp;
        resp.body += "{\"epoch\":";
        resp.body += std::to_string(epoch);
        resp.body += ",\"result\":";
        AppendQueryResult(&resp.body, results[j]);
        resp.body += "}";
        out[qidx[j]] = std::move(resp);
      }
    }
    return out;
  };
}

}  // namespace pairwisehist
