#include "serve/serving_db.h"

#include <utility>

namespace pairwisehist {

ServingDb::ServingDb(Db db, ServingOptions options)
    : options_(options),
      snapshot_(std::make_shared<DbSnapshot>(std::move(db), /*epoch=*/0)),
      cache_(options.plan_cache_capacity, options.plan_cache_shards) {
  if (options_.coalesce) {
    coalescer_ = std::make_unique<ReadCoalescer>(
        [this](const std::vector<ReadCoalescer::Request*>& group) {
          ExecuteGroup(group);
        },
        options_.coalesce_window_us);
  }
}

std::shared_ptr<DbSnapshot> ServingDb::Load() const {
  return std::atomic_load_explicit(&snapshot_, std::memory_order_acquire);
}

std::shared_ptr<const DbSnapshot> ServingDb::snapshot() const {
  return Load();
}

Status ServingDb::Query(const std::string& sql, QueryResult* result,
                        uint64_t* epoch) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (coalescer_ == nullptr) {
    Status st = QueryUncoalesced(sql, result, epoch);
    if (!st.ok()) errors_.fetch_add(1, std::memory_order_relaxed);
    return st;
  }
  ReadCoalescer::Request req;
  req.sql = &sql;
  req.result = result;
  coalescer_->Submit(&req);
  if (!req.status.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return req.status;
  }
  if (epoch != nullptr) *epoch = req.epoch;
  return Status::OK();
}

Status ServingDb::QueryUncoalesced(const std::string& sql,
                                   QueryResult* result, uint64_t* epoch) {
  std::shared_ptr<const DbSnapshot> snap = Load();
  if (snap == nullptr) return Status::Internal("ServingDb: no snapshot");
  bool hit = false;
  StatusOr<PreparedQuery> pq = cache_.Get(snap, sql, &hit);
  (hit ? cache_hits_ : cache_misses_).fetch_add(1, std::memory_order_relaxed);
  if (!pq.ok()) return pq.status();
  PH_RETURN_IF_ERROR(pq.value().ExecuteInto(result));
  if (epoch != nullptr) *epoch = snap->epoch;
  return Status::OK();
}

void ServingDb::ExecuteGroup(
    const std::vector<ReadCoalescer::Request*>& group) {
  // One snapshot answers the whole group: every plan below is prepared
  // against (or cache-matched to) `snap`, so the batch hands the executor
  // plans from a single epoch, as batch execution requires.
  std::shared_ptr<const DbSnapshot> snap = Load();
  if (snap == nullptr) {
    for (ReadCoalescer::Request* r : group) {
      r->status = Status::Internal("ServingDb: no snapshot");
    }
    return;
  }
  std::vector<PreparedQuery> pqs;
  std::vector<size_t> owner;  // group index of each prepared statement
  pqs.reserve(group.size());
  owner.reserve(group.size());
  for (size_t i = 0; i < group.size(); ++i) {
    bool hit = false;
    StatusOr<PreparedQuery> pq = cache_.Get(snap, *group[i]->sql, &hit);
    (hit ? cache_hits_ : cache_misses_)
        .fetch_add(1, std::memory_order_relaxed);
    if (!pq.ok()) {
      group[i]->status = pq.status();
      continue;
    }
    pqs.push_back(std::move(pq).value());
    owner.push_back(i);
  }
  for (size_t i : owner) group[i]->epoch = snap->epoch;
  if (pqs.empty()) return;

  // Compiled statements execute as one batch straight into each
  // requester's result; anything routed through a backend (no compiled
  // plan) runs individually.
  std::vector<const SegmentedPlan*> plans;
  std::vector<QueryResult*> outs;
  std::vector<size_t> batched;
  plans.reserve(pqs.size());
  outs.reserve(pqs.size());
  for (size_t j = 0; j < pqs.size(); ++j) {
    if (pqs[j].compiled()) {
      plans.push_back(&pqs[j].plan());
      outs.push_back(group[owner[j]]->result);
      batched.push_back(owner[j]);
    } else {
      group[owner[j]]->status = pqs[j].ExecuteInto(group[owner[j]]->result);
    }
  }
  if (plans.empty()) return;
  Status st = snap->db.executor().ExecuteBatchInto(plans, outs);
  if (!st.ok()) {
    for (size_t i : batched) group[i]->status = st;
  }
}

Status ServingDb::QueryBatch(const std::vector<std::string>& sqls,
                             std::vector<QueryResult>* results,
                             std::vector<Status>* statement_status,
                             uint64_t* epoch) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_statements_.fetch_add(sqls.size(), std::memory_order_relaxed);
  results->clear();
  results->resize(sqls.size());
  statement_status->assign(sqls.size(), Status::OK());

  std::shared_ptr<const DbSnapshot> snap = Load();
  if (snap == nullptr) return Status::Internal("ServingDb: no snapshot");
  if (epoch != nullptr) *epoch = snap->epoch;

  std::vector<PreparedQuery> pqs;
  std::vector<size_t> owner;
  pqs.reserve(sqls.size());
  owner.reserve(sqls.size());
  for (size_t i = 0; i < sqls.size(); ++i) {
    bool hit = false;
    StatusOr<PreparedQuery> pq = cache_.Get(snap, sqls[i], &hit);
    (hit ? cache_hits_ : cache_misses_)
        .fetch_add(1, std::memory_order_relaxed);
    if (!pq.ok()) {
      (*statement_status)[i] = pq.status();
      errors_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    pqs.push_back(std::move(pq).value());
    owner.push_back(i);
  }
  std::vector<const SegmentedPlan*> plans;
  std::vector<QueryResult*> outs;
  std::vector<size_t> batched;
  for (size_t j = 0; j < pqs.size(); ++j) {
    if (pqs[j].compiled()) {
      plans.push_back(&pqs[j].plan());
      outs.push_back(&(*results)[owner[j]]);
      batched.push_back(owner[j]);
    } else {
      (*statement_status)[owner[j]] =
          pqs[j].ExecuteInto(&(*results)[owner[j]]);
    }
  }
  if (!plans.empty()) {
    Status st = snap->db.executor().ExecuteBatchInto(plans, outs);
    if (!st.ok()) {
      for (size_t i : batched) (*statement_status)[i] = st;
      errors_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

Status ServingDb::Append(const Table& batch) {
  std::lock_guard<std::mutex> lock(append_mu_);
  std::shared_ptr<DbSnapshot> cur = Load();
  if (cur == nullptr) return Status::Internal("ServingDb: no snapshot");
  // The expensive part — canonicalization + synopsis build for the new
  // segments — runs here with no lock but append_mu_ held; readers keep
  // serving the current snapshot throughout.
  PH_ASSIGN_OR_RETURN(Db next, cur->db.WithAppended(batch));
  auto fresh = std::make_shared<DbSnapshot>(std::move(next), cur->epoch + 1);
  std::atomic_store_explicit(&snapshot_, fresh, std::memory_order_release);
  appends_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

ServingStats ServingDb::Stats() const {
  ServingStats s;
  std::shared_ptr<const DbSnapshot> snap = Load();
  if (snap != nullptr) {
    s.epoch = snap->epoch;
    s.segments = snap->db.num_segments();
    s.rows = snap->db.total_rows();
  }
  s.queries = queries_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batch_statements = batch_statements_.load(std::memory_order_relaxed);
  if (coalescer_ != nullptr) {
    ReadCoalescer::Stats cs = coalescer_->stats();
    s.coalesced_groups = cs.groups;
    s.coalesced_statements = cs.statements;
    s.max_group = cs.max_group;
  }
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.cache_entries = cache_.size();
  s.appends = appends_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  return s;
}

StatusOr<Db> ServingDb::TakeDb() {
  std::lock_guard<std::mutex> lock(append_mu_);
  cache_.Clear();
  std::shared_ptr<DbSnapshot> cur =
      std::atomic_exchange(&snapshot_, std::shared_ptr<DbSnapshot>());
  if (cur == nullptr) return Status::Internal("ServingDb: already taken");
  if (cur.use_count() != 1) {
    std::atomic_store(&snapshot_, cur);  // put it back; still serving
    return Status::Unsupported(
        "ServingDb::TakeDb: snapshot still referenced; stop traffic first");
  }
  return std::move(cur->db);
}

}  // namespace pairwisehist
