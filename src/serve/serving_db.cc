#include "serve/serving_db.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <utility>

#include "common/failpoint.h"

namespace pairwisehist {

namespace {

constexpr char kWalFile[] = "wal.log";
constexpr char kCheckpointPrefix[] = "checkpoint-";
// New checkpoints are written in the memory-mappable PWS3 format, so
// Recover reopens them in O(1) via Db::Open's mmap path. Pre-existing
// .pws2 checkpoints (earlier builds) are still recognized and recovered
// from — the next checkpoint rewrites the state as .pws3.
constexpr char kCheckpointSuffix[] = ".pws3";
constexpr char kLegacyCheckpointSuffix[] = ".pws2";

std::string CheckpointPath(const std::string& dir, uint64_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%020llu",
                static_cast<unsigned long long>(epoch));
  return dir + "/" + kCheckpointPrefix + buf + kCheckpointSuffix;
}

struct CheckpointFile {
  uint64_t epoch = 0;
  std::string path;
};

/// Checkpoint files present in `dir` (either suffix), ascending by epoch;
/// for the same epoch the .pws3 file sorts after the legacy one, so
/// back() is always the preferred recovery base. Missing dir = empty.
std::vector<CheckpointFile> ListCheckpoints(const std::string& dir) {
  std::vector<CheckpointFile> files;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return files;
  const size_t prefix_len = std::strlen(kCheckpointPrefix);
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    size_t suffix_len = 0;
    for (const char* suffix : {kCheckpointSuffix, kLegacyCheckpointSuffix}) {
      const size_t n = std::strlen(suffix);
      if (name.size() > prefix_len + n &&
          name.compare(name.size() - n, n, suffix) == 0) {
        suffix_len = n;
        break;
      }
    }
    if (suffix_len == 0) continue;
    if (name.compare(0, prefix_len, kCheckpointPrefix) != 0) continue;
    const std::string digits =
        name.substr(prefix_len, name.size() - prefix_len - suffix_len);
    char* end = nullptr;
    const unsigned long long v = std::strtoull(digits.c_str(), &end, 10);
    if (end != digits.c_str() + digits.size()) continue;
    files.push_back({v, dir + "/" + name});
  }
  ::closedir(d);
  std::sort(files.begin(), files.end(),
            [](const CheckpointFile& a, const CheckpointFile& b) {
              return a.epoch != b.epoch ? a.epoch < b.epoch
                                        : a.path < b.path;
            });
  return files;
}

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST) return Status::OK();
  return Status::Internal("ServingDb: mkdir '" + dir +
                          "' failed: " + std::strerror(errno));
}

/// The fail-closed answer for a quarantined snapshot. The HTTP layer maps
/// DataLoss mentioning "quarantined" to 503 (retryable once the operator
/// restores the file or the next checkpoint replaces it), not 400.
Status QuarantineStatus(const Db& db) {
  return Status::DataLoss(
      "ServingDb: " + std::to_string(db.quarantined_segment_count()) +
      " segment(s) quarantined by integrity verification (" +
      std::to_string(db.quarantined_rows()) +
      " rows); pass X-Allow-Degraded: 1 to read the surviving segments");
}

Status FsyncPath(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::Internal("ServingDb: open-for-fsync '" + path +
                            "' failed: " + std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Internal("ServingDb: fsync '" + path +
                            "' failed: " + std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

ServingDb::ServingDb(Db db, ServingOptions options, uint64_t start_epoch)
    : options_(options),
      snapshot_(std::make_shared<DbSnapshot>(std::move(db), start_epoch)),
      cache_(options.plan_cache_capacity, options.plan_cache_shards) {
  if (options_.coalesce) {
    coalescer_ = std::make_unique<ReadCoalescer>(
        [this](const std::vector<ReadCoalescer::Request*>& group) {
          ExecuteGroup(group);
        },
        options_.coalesce_window_us);
  }
  if (options_.compaction.enabled && options_.compaction.interval_ms > 0) {
    compactor_ = std::thread([this] { CompactorLoop(); });
  }
}

ServingDb::~ServingDb() {
  if (compactor_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(co_mu_);
      co_stop_ = true;
    }
    co_cv_.notify_all();
    compactor_.join();
  }
  if (checkpointer_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(cp_mu_);
      cp_stop_ = true;
    }
    cp_cv_.notify_all();
    checkpointer_.join();
  }
  // Interval-fsync mode may hold acknowledged-but-unsynced bytes; a clean
  // shutdown should not lose them.
  if (wal_ != nullptr) (void)wal_->Sync();
}

StatusOr<std::unique_ptr<ServingDb>> ServingDb::CreateDurable(
    Db db, ServingOptions options) {
  const std::string& dir = options.durability.dir;
  if (dir.empty()) {
    return Status::InvalidArgument(
        "ServingDb::CreateDurable: durability.dir is empty");
  }
  PH_RETURN_IF_ERROR(EnsureDir(dir));
  if (!ListCheckpoints(dir).empty()) {
    return Status::InvalidArgument(
        "ServingDb::CreateDurable: '" + dir +
        "' already holds serving state; use Recover()");
  }
  // The epoch-0 checkpoint is the recovery base: WAL replay needs a
  // checkpoint to re-append onto.
  const std::string path = CheckpointPath(dir, 0);
  const std::string tmp = path + ".tmp";
  PH_RETURN_IF_ERROR(db.Save(tmp));
  PH_RETURN_IF_ERROR(FsyncPath(tmp));
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("ServingDb: rename checkpoint failed: " +
                            std::string(std::strerror(errno)));
  }
  PH_RETURN_IF_ERROR(FsyncPath(dir));

  auto sdb = std::unique_ptr<ServingDb>(
      new ServingDb(std::move(db), options, /*start_epoch=*/0));
  PH_RETURN_IF_ERROR(sdb->InitDurable(RecoveryInfo{}));
  return sdb;
}

StatusOr<std::unique_ptr<ServingDb>> ServingDb::Recover(
    ServingOptions options, AqpEngineOptions engine) {
  DbOptions db_options;
  db_options.engine = engine;
  return Recover(std::move(options), db_options);
}

StatusOr<std::unique_ptr<ServingDb>> ServingDb::Recover(
    ServingOptions options, const DbOptions& db_options) {
  const std::string& dir = options.durability.dir;
  if (dir.empty()) {
    return Status::InvalidArgument(
        "ServingDb::Recover: durability.dir is empty");
  }
  const std::vector<CheckpointFile> checkpoints = ListCheckpoints(dir);
  if (checkpoints.empty()) {
    return Status::NotFound("ServingDb::Recover: no checkpoint in '" + dir +
                            "'");
  }

  // Candidates newest-first. Every candidate is opened without the
  // background scrubber and verified synchronously — recovery must not
  // adopt a base it has not checked. One that fails to open or verify is
  // recorded and skipped; whether skipping it was LEGAL is decided below
  // by the epoch arithmetic, not here.
  RecoveryInfo info;
  std::optional<Db> db;
  DbOptions open_opts = db_options;
  open_opts.scrub = false;
  for (size_t i = checkpoints.size(); i-- > 0;) {
    const CheckpointFile& cand = checkpoints[i];
    Status st = failpoint::Fire("recover.checkpoint_open").status;
    if (st.ok()) {
      StatusOr<Db> opened = Db::Open(cand.path, open_opts);
      if (opened.ok()) {
        st = opened.value().VerifyIntegrity();
        if (st.ok()) {
          db = std::move(opened).value();
          info.checkpoint_epoch = cand.epoch;
          break;
        }
      } else {
        st = opened.status();
      }
    }
    if (info.corrupt_checkpoint.empty()) info.corrupt_checkpoint = cand.path;
    ++info.checkpoints_skipped;
  }
  if (!db.has_value()) {
    return Status::DataLoss("ServingDb::Recover: no usable checkpoint in '" +
                            dir + "' (newest corrupt: '" +
                            info.corrupt_checkpoint + "')");
  }

  uint64_t epoch = info.checkpoint_epoch;
  const uint64_t checkpoint_total = db->total_rows();
  // Rebuild-row retention for compaction: WAL-covered batches are the only
  // row source a checkpoint-recovered server has (no kept raw table).
  // Skipped records (already inside the checkpoint) get their row ranges
  // computed backward from the checkpoint's total below; applied records
  // know their range at replay time.
  std::vector<Table> skipped_batches;
  std::vector<std::pair<uint64_t, Table>> applied_batches;  // (row_begin, rows)
  const bool retain = options.compaction.enabled;
  // Replay the WAL tail. Records at or below the checkpoint epoch are
  // already inside the checkpoint (a crash between checkpoint-rename and
  // WAL-truncate leaves them behind) and are skipped by epoch.
  PH_ASSIGN_OR_RETURN(
      Wal::ReplayResult replay,
      Wal::Replay(dir + "/" + kWalFile,
                  [&](const uint8_t* data, size_t size) -> Status {
                    PH_ASSIGN_OR_RETURN(WalBatch wb,
                                        DecodeWalBatch(data, size));
                    ++info.wal_records;
                    if (wb.epoch <= info.checkpoint_epoch) {
                      if (retain) skipped_batches.push_back(wb.batch);
                      return Status::OK();
                    }
                    PH_RETURN_IF_ERROR(
                        failpoint::Fire("recovery.replay").status);
                    if (wb.epoch != epoch + 1) {
                      std::string msg =
                          "ServingDb::Recover: WAL epoch gap (have " +
                          std::to_string(epoch) + ", next record " +
                          std::to_string(wb.epoch) + ")";
                      if (info.checkpoints_skipped > 0) {
                        msg += " after skipping corrupt checkpoint '" +
                               info.corrupt_checkpoint + "'";
                      }
                      return Status::DataLoss(msg);
                    }
                    const uint64_t prev_total = db->total_rows();
                    PH_ASSIGN_OR_RETURN(Db next,
                                        db->WithAppended(wb.batch));
                    db = std::move(next);
                    epoch = wb.epoch;
                    ++info.wal_records_applied;
                    info.rows_recovered += wb.batch.NumRows();
                    if (retain) {
                      applied_batches.emplace_back(prev_total, wb.batch);
                    }
                    return Status::OK();
                  }));
  info.tail_truncated = replay.tail_truncated;

  // Epoch floor: the newest checkpoint file — even a corrupt one we
  // skipped — proves its epoch was once acknowledged. If the WAL could
  // not replay back up to it (e.g. the WAL was truncated after that
  // checkpoint landed), the fallback silently lost acknowledged appends;
  // fail and name the file instead.
  if (epoch < checkpoints.back().epoch) {
    return Status::DataLoss(
        "ServingDb::Recover: checkpoint '" + info.corrupt_checkpoint +
        "' is corrupt and the WAL does not cover epochs " +
        std::to_string(epoch + 1) + ".." +
        std::to_string(checkpoints.back().epoch) +
        "; refusing to serve with silent data loss");
  }

  // The base was verified above; continuous scrubbing (when asked for)
  // keeps watching for rot while serving.
  if (db_options.scrub && db_options.scrub_repeat_ms > 0) {
    db->synopses().StartScrub(db_options.scrub_mb_per_s,
                              db_options.scrub_repeat_ms);
  }

  auto sdb = std::unique_ptr<ServingDb>(
      new ServingDb(std::move(*db), options, epoch));
  if (retain) {
    // Skipped records are the TAIL of the checkpoint's rows in epoch
    // order: walk them backward from the checkpoint's total to recover
    // each one's row range, then feed everything forward (oldest-first
    // eviction keeps the newest — most compaction-relevant — batches).
    std::vector<uint64_t> skipped_begin(skipped_batches.size(), 0);
    size_t valid_from = skipped_batches.size();
    uint64_t row_end = checkpoint_total;
    for (size_t i = skipped_batches.size(); i-- > 0;) {
      const uint64_t n = skipped_batches[i].NumRows();
      if (n > row_end) break;  // ranges no longer derivable; stop here
      row_end -= n;
      skipped_begin[i] = row_end;
      valid_from = i;
    }
    for (size_t i = valid_from; i < skipped_batches.size(); ++i) {
      sdb->RetainRows(skipped_begin[i], std::move(skipped_batches[i]));
    }
    for (auto& [row_begin, rows] : applied_batches) {
      sdb->RetainRows(row_begin, std::move(rows));
    }
  }
  PH_RETURN_IF_ERROR(sdb->InitDurable(info));
  return sdb;
}

Status ServingDb::InitDurable(const RecoveryInfo& recovered) {
  recovery_ = recovered;
  last_checkpoint_epoch_.store(recovered.checkpoint_epoch,
                               std::memory_order_relaxed);
  WalOptions wopts;
  wopts.fsync = options_.durability.fsync;
  wopts.fsync_interval_ms = options_.durability.fsync_interval_ms;
  PH_ASSIGN_OR_RETURN(Wal wal,
                      Wal::Open(options_.durability.dir + "/" + kWalFile,
                                wopts));
  {
    // append_mu_: the background compactor (started by the constructor)
    // reads wal_ under this lock in its publish phase.
    std::lock_guard<std::mutex> lock(append_mu_);
    wal_ = std::make_unique<Wal>(std::move(wal));
  }
  if (options_.durability.checkpoint_interval_ms > 0) {
    checkpointer_ = std::thread([this] { CheckpointerLoop(); });
  }
  return Status::OK();
}

void ServingDb::CheckpointerLoop() {
  std::unique_lock<std::mutex> lock(cp_mu_);
  const auto interval =
      std::chrono::milliseconds(options_.durability.checkpoint_interval_ms);
  while (!cp_stop_) {
    cp_cv_.wait_for(lock, interval, [this] { return cp_stop_; });
    if (cp_stop_) return;
    lock.unlock();
    {
      std::lock_guard<std::mutex> append_lock(append_mu_);
      if (appends_since_checkpoint_ >=
              options_.durability.checkpoint_min_appends ||
          compaction_since_checkpoint_) {
        (void)CheckpointLocked();  // failure leaves the WAL authoritative
      }
    }
    lock.lock();
  }
}

std::shared_ptr<DbSnapshot> ServingDb::Load() const {
  return std::atomic_load_explicit(&snapshot_, std::memory_order_acquire);
}

std::shared_ptr<const DbSnapshot> ServingDb::snapshot() const {
  return Load();
}

Status ServingDb::Query(const std::string& sql, QueryResult* result,
                        uint64_t* epoch) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (coalescer_ == nullptr) {
    Status st = QueryUncoalesced(sql, result, epoch);
    if (!st.ok()) errors_.fetch_add(1, std::memory_order_relaxed);
    return st;
  }
  ReadCoalescer::Request req;
  req.sql = &sql;
  req.result = result;
  coalescer_->Submit(&req);
  if (!req.status.ok()) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    return req.status;
  }
  if (epoch != nullptr) *epoch = req.epoch;
  return Status::OK();
}

Status ServingDb::Query(const std::string& sql, const ReadOptions& ropts,
                        QueryResult* result, DegradedInfo* degraded,
                        uint64_t* epoch) {
  std::shared_ptr<const DbSnapshot> snap = Load();
  if (snap != nullptr && snap->db.has_quarantine()) {
    queries_.fetch_add(1, std::memory_order_relaxed);
    if (!(ropts.allow_degraded || snap->db.allow_degraded())) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return QuarantineStatus(snap->db);
    }
    Status st = QueryDegraded(snap, sql, result, degraded, epoch);
    if (!st.ok()) errors_.fetch_add(1, std::memory_order_relaxed);
    return st;
  }
  return Query(sql, result, epoch);
}

StatusOr<std::shared_ptr<const Db>> ServingDb::DegradedDb(
    const std::shared_ptr<const DbSnapshot>& snap) {
  const uint64_t qv = snap->db.quarantine_version();
  {
    std::lock_guard<std::mutex> lock(degraded_mu_);
    if (degraded_db_ != nullptr && degraded_src_ == snap &&
        degraded_qversion_ == qv) {
      return degraded_db_;
    }
  }
  // Build outside the lock (a synopsis-only executor rebuild); a racing
  // builder is harmless — last one wins the cache slot.
  PH_ASSIGN_OR_RETURN(Db view, snap->db.WithoutQuarantined());
  auto shared = std::make_shared<const Db>(std::move(view));
  std::lock_guard<std::mutex> lock(degraded_mu_);
  degraded_src_ = snap;
  degraded_db_ = shared;
  degraded_qversion_ = qv;
  return shared;
}

Status ServingDb::QueryDegraded(
    const std::shared_ptr<const DbSnapshot>& snap, const std::string& sql,
    QueryResult* result, DegradedInfo* degraded, uint64_t* epoch) {
  // Degraded reads bypass the plan cache (its plans were prepared against
  // the full snapshot) and the coalescer; correctness over throughput
  // while the operator deals with the corruption.
  PH_ASSIGN_OR_RETURN(std::shared_ptr<const Db> ddb, DegradedDb(snap));
  degraded_reads_.fetch_add(1, std::memory_order_relaxed);
  PH_ASSIGN_OR_RETURN(PreparedQuery pq, ddb->Prepare(sql));
  PH_RETURN_IF_ERROR(pq.ExecuteInto(result));
  if (degraded != nullptr) {
    degraded->degraded = true;
    degraded->rows_skipped = snap->db.quarantined_rows();
    degraded->segments_skipped =
        static_cast<uint32_t>(snap->db.quarantined_segment_count());
  }
  if (epoch != nullptr) *epoch = snap->epoch;
  return Status::OK();
}

Status ServingDb::QueryUncoalesced(const std::string& sql,
                                   QueryResult* result, uint64_t* epoch) {
  std::shared_ptr<const DbSnapshot> snap = Load();
  if (snap == nullptr) return Status::Internal("ServingDb: no snapshot");
  if (snap->db.has_quarantine()) {
    if (!snap->db.allow_degraded()) return QuarantineStatus(snap->db);
    return QueryDegraded(snap, sql, result, nullptr, epoch);
  }
  bool hit = false;
  StatusOr<PreparedQuery> pq = cache_.Get(snap, sql, &hit);
  (hit ? cache_hits_ : cache_misses_).fetch_add(1, std::memory_order_relaxed);
  if (!pq.ok()) return pq.status();
  PH_RETURN_IF_ERROR(pq.value().ExecuteInto(result));
  if (epoch != nullptr) *epoch = snap->epoch;
  return Status::OK();
}

void ServingDb::ExecuteGroup(
    const std::vector<ReadCoalescer::Request*>& group) {
  // One snapshot answers the whole group: every plan below is prepared
  // against (or cache-matched to) `snap`, so the batch hands the executor
  // plans from a single epoch, as batch execution requires.
  std::shared_ptr<const DbSnapshot> snap = Load();
  if (snap == nullptr) {
    for (ReadCoalescer::Request* r : group) {
      r->status = Status::Internal("ServingDb: no snapshot");
    }
    return;
  }
  if (snap->db.has_quarantine()) {
    // Coalesced requests carry no per-read options, so only the Db-level
    // allow_degraded applies here (per-request X-Allow-Degraded bypasses
    // the coalescer — see the Query overload).
    if (!snap->db.allow_degraded()) {
      Status st = QuarantineStatus(snap->db);
      for (ReadCoalescer::Request* r : group) r->status = st;
      return;
    }
    for (ReadCoalescer::Request* r : group) {
      r->status = QueryDegraded(snap, *r->sql, r->result, nullptr,
                                &r->epoch);
    }
    return;
  }
  std::vector<PreparedQuery> pqs;
  std::vector<size_t> owner;  // group index of each prepared statement
  pqs.reserve(group.size());
  owner.reserve(group.size());
  for (size_t i = 0; i < group.size(); ++i) {
    bool hit = false;
    StatusOr<PreparedQuery> pq = cache_.Get(snap, *group[i]->sql, &hit);
    (hit ? cache_hits_ : cache_misses_)
        .fetch_add(1, std::memory_order_relaxed);
    if (!pq.ok()) {
      group[i]->status = pq.status();
      continue;
    }
    pqs.push_back(std::move(pq).value());
    owner.push_back(i);
  }
  for (size_t i : owner) group[i]->epoch = snap->epoch;
  if (pqs.empty()) return;

  // Compiled statements execute as one batch straight into each
  // requester's result; anything routed through a backend (no compiled
  // plan) runs individually.
  std::vector<const SegmentedPlan*> plans;
  std::vector<QueryResult*> outs;
  std::vector<size_t> batched;
  plans.reserve(pqs.size());
  outs.reserve(pqs.size());
  for (size_t j = 0; j < pqs.size(); ++j) {
    if (pqs[j].compiled()) {
      plans.push_back(&pqs[j].plan());
      outs.push_back(group[owner[j]]->result);
      batched.push_back(owner[j]);
    } else {
      group[owner[j]]->status = pqs[j].ExecuteInto(group[owner[j]]->result);
    }
  }
  if (plans.empty()) return;
  Status st = snap->db.executor().ExecuteBatchInto(plans, outs);
  if (!st.ok()) {
    for (size_t i : batched) group[i]->status = st;
  }
}

Status ServingDb::QueryBatch(const std::vector<std::string>& sqls,
                             std::vector<QueryResult>* results,
                             std::vector<Status>* statement_status,
                             uint64_t* epoch) {
  return QueryBatch(sqls, ReadOptions{}, results, statement_status,
                    /*degraded=*/nullptr, epoch);
}

Status ServingDb::QueryBatch(const std::vector<std::string>& sqls,
                             const ReadOptions& ropts,
                             std::vector<QueryResult>* results,
                             std::vector<Status>* statement_status,
                             DegradedInfo* degraded, uint64_t* epoch) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  batch_statements_.fetch_add(sqls.size(), std::memory_order_relaxed);
  results->clear();
  results->resize(sqls.size());
  statement_status->assign(sqls.size(), Status::OK());

  std::shared_ptr<const DbSnapshot> snap = Load();
  if (snap == nullptr) return Status::Internal("ServingDb: no snapshot");
  if (epoch != nullptr) *epoch = snap->epoch;
  if (snap->db.has_quarantine()) {
    if (!(ropts.allow_degraded || snap->db.allow_degraded())) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return QuarantineStatus(snap->db);
    }
    // Degraded batch: statement-by-statement against the surviving
    // segments (no cache, no cross-statement batching — see
    // QueryDegraded).
    PH_ASSIGN_OR_RETURN(std::shared_ptr<const Db> ddb, DegradedDb(snap));
    degraded_reads_.fetch_add(1, std::memory_order_relaxed);
    for (size_t i = 0; i < sqls.size(); ++i) {
      StatusOr<PreparedQuery> pq = ddb->Prepare(sqls[i]);
      (*statement_status)[i] =
          pq.ok() ? pq.value().ExecuteInto(&(*results)[i]) : pq.status();
      if (!(*statement_status)[i].ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (degraded != nullptr) {
      degraded->degraded = true;
      degraded->rows_skipped = snap->db.quarantined_rows();
      degraded->segments_skipped =
          static_cast<uint32_t>(snap->db.quarantined_segment_count());
    }
    return Status::OK();
  }

  std::vector<PreparedQuery> pqs;
  std::vector<size_t> owner;
  pqs.reserve(sqls.size());
  owner.reserve(sqls.size());
  for (size_t i = 0; i < sqls.size(); ++i) {
    bool hit = false;
    StatusOr<PreparedQuery> pq = cache_.Get(snap, sqls[i], &hit);
    (hit ? cache_hits_ : cache_misses_)
        .fetch_add(1, std::memory_order_relaxed);
    if (!pq.ok()) {
      (*statement_status)[i] = pq.status();
      errors_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    pqs.push_back(std::move(pq).value());
    owner.push_back(i);
  }
  std::vector<const SegmentedPlan*> plans;
  std::vector<QueryResult*> outs;
  std::vector<size_t> batched;
  for (size_t j = 0; j < pqs.size(); ++j) {
    if (pqs[j].compiled()) {
      plans.push_back(&pqs[j].plan());
      outs.push_back(&(*results)[owner[j]]);
      batched.push_back(owner[j]);
    } else {
      (*statement_status)[owner[j]] =
          pqs[j].ExecuteInto(&(*results)[owner[j]]);
    }
  }
  if (!plans.empty()) {
    Status st = snap->db.executor().ExecuteBatchInto(plans, outs);
    if (!st.ok()) {
      for (size_t i : batched) (*statement_status)[i] = st;
      errors_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

Status ServingDb::Append(const Table& batch) {
  std::lock_guard<std::mutex> lock(append_mu_);
  std::shared_ptr<DbSnapshot> cur = Load();
  if (cur == nullptr) return Status::Internal("ServingDb: no snapshot");
  PH_RETURN_IF_ERROR(failpoint::Fire("serve.append.build").status);
  // The expensive part — canonicalization + synopsis build for the new
  // segments — runs here with no lock but append_mu_ held; readers keep
  // serving the current snapshot throughout.
  PH_ASSIGN_OR_RETURN(Db next, cur->db.WithAppended(batch));
  const uint64_t next_epoch = cur->epoch + 1;
  if (wal_ != nullptr) {
    // Durability point: once Append() returns, the record is on disk (per
    // the fsync policy). A crash before this leaves no trace; a crash
    // after it re-creates the batch on recovery even if the client never
    // saw the ack (acknowledged ⊆ recovered).
    PH_RETURN_IF_ERROR(wal_->Append(EncodeWalBatch(next_epoch, batch)));
    PH_RETURN_IF_ERROR(failpoint::Fire("wal.append.acked").status);
  }
  auto fresh = std::make_shared<DbSnapshot>(std::move(next), next_epoch,
                                            cur->compaction_seq);
  std::atomic_store_explicit(&snapshot_, fresh, std::memory_order_release);
  appends_.fetch_add(1, std::memory_order_relaxed);
  ++appends_since_checkpoint_;
  if (options_.compaction.enabled && cur->db.table() == nullptr) {
    // No kept raw table (checkpoint-recovered serving): keep the batch's
    // rows in the bounded retention buffer so its segments can still be
    // re-fitted by compaction.
    RetainRows(cur->db.total_rows(), batch);
  }
  return Status::OK();
}

Status ServingDb::Checkpoint() {
  if (wal_ == nullptr) {
    return Status::Unsupported("ServingDb::Checkpoint: not durable");
  }
  std::lock_guard<std::mutex> lock(append_mu_);
  return CheckpointLocked();
}

Status ServingDb::CheckpointLocked() {
  std::shared_ptr<DbSnapshot> cur = Load();
  if (cur == nullptr) return Status::Internal("ServingDb: no snapshot");
  const std::string& dir = options_.durability.dir;
  const std::string path = CheckpointPath(dir, cur->epoch);
  const std::string tmp = path + ".tmp";

  PH_RETURN_IF_ERROR(failpoint::Fire("checkpoint.save").status);
  PH_RETURN_IF_ERROR(cur->db.Save(tmp));
  PH_RETURN_IF_ERROR(FsyncPath(tmp));
  PH_RETURN_IF_ERROR(failpoint::Fire("checkpoint.rename").status);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("ServingDb: rename checkpoint failed: " +
                            std::string(std::strerror(errno)));
  }
  PH_RETURN_IF_ERROR(FsyncPath(dir));
  // The checkpoint is now the recovery base. A crash before the truncate
  // below is harmless: replay skips WAL records with epoch <= cur->epoch.
  PH_RETURN_IF_ERROR(failpoint::Fire("checkpoint.truncate_wal").status);
  PH_RETURN_IF_ERROR(wal_->Truncate());
  for (const CheckpointFile& old : ListCheckpoints(dir)) {
    // Also removes a legacy .pws2 file of the current epoch: this fresh
    // .pws3 checkpoint of the same state supersedes it.
    if (old.epoch < cur->epoch ||
        (old.epoch == cur->epoch && old.path != path)) {
      ::unlink(old.path.c_str());
    }
  }
  appends_since_checkpoint_ = 0;
  compaction_since_checkpoint_ = false;
  last_checkpoint_epoch_.store(cur->epoch, std::memory_order_relaxed);
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Segment lifecycle: tiered compaction through the snapshot swap

Status ServingDb::CompactNow(bool* did) {
  if (did != nullptr) *did = false;
  std::shared_ptr<const DbSnapshot> snap = Load();
  if (snap == nullptr) return Status::Internal("ServingDb: no snapshot");
  const Db& db = snap->db;
  const CompactionOptions& copts = options_.compaction;
  auto rebuildable = [&](uint64_t rb, uint64_t re) {
    if (rb >= re) return false;
    if (db.table() != nullptr && re <= db.table()->NumRows()) return true;
    return CanStitchRetained(rb, re);
  };
  std::optional<CompactionSpec> spec = PickCompaction(
      db.synopses(), copts, db.feedback_ledger().get(), rebuildable);
  if (!spec.has_value()) return Status::OK();

  Status st = [&]() -> Status {
    // Phase 1 (no locks): build the merged segment. Readers and appends
    // proceed throughout; `snap` pins the source segments.
    PH_RETURN_IF_ERROR(failpoint::Fire("compact.build").status);
    CompactedRun run;
    if (db.table() != nullptr && spec->row_end <= db.table()->NumRows()) {
      PH_ASSIGN_OR_RETURN(run, db.BuildCompaction(*spec));
    } else {
      PH_ASSIGN_OR_RETURN(Table rows,
                          StitchRetained(spec->row_begin, spec->row_end));
      PH_ASSIGN_OR_RETURN(run, db.BuildCompaction(*spec, rows));
    }
    const uint64_t bytes = run.synopsis->StorageBytes();

    // Phase 2 (append lock): re-locate the run by row range in the
    // CURRENT snapshot — appends since phase 1 only added segments past
    // the end, so the spec still applies — and publish atomically. The
    // epoch does not change (no rows changed, no WAL record: the recovery
    // epoch chain stays gapless); compaction_seq does.
    std::lock_guard<std::mutex> lock(append_mu_);
    std::shared_ptr<DbSnapshot> cur = Load();
    if (cur == nullptr) return Status::Internal("ServingDb: no snapshot");
    PH_RETURN_IF_ERROR(failpoint::Fire("compact.publish").status);
    StatusOr<Db> next = cur->db.WithCompactionApplied(*spec, std::move(run));
    if (!next.ok()) {
      // NotFound: the run no longer aligns (a racing explicit CompactNow
      // already replaced it). Nothing to do — not an error.
      if (next.status().code() == StatusCode::kNotFound) return Status::OK();
      return next.status();
    }
    const size_t before = cur->db.num_segments();
    const size_t after = next.value().num_segments();
    const uint32_t merged = static_cast<uint32_t>(before - after + 1);
    auto fresh = std::make_shared<DbSnapshot>(std::move(next).value(),
                                              cur->epoch,
                                              cur->compaction_seq + 1);
    std::atomic_store_explicit(&snapshot_, fresh,
                               std::memory_order_release);
    const uint64_t rows_rewritten = spec->row_end - spec->row_begin;
    compaction_runs_.fetch_add(1, std::memory_order_relaxed);
    compaction_segments_merged_.fetch_add(merged, std::memory_order_relaxed);
    compaction_rows_rewritten_.fetch_add(rows_rewritten,
                                         std::memory_order_relaxed);
    compaction_bytes_rewritten_.fetch_add(bytes, std::memory_order_relaxed);
    if (spec->quarantine_drain) {
      quarantine_drained_.fetch_add(1, std::memory_order_relaxed);
    }
    {
      std::lock_guard<std::mutex> ev(events_mu_);
      events_.push_back({fresh->compaction_seq, fresh->epoch, *spec, merged,
                         rows_rewritten, bytes});
    }
    if (did != nullptr) *did = true;
    compaction_since_checkpoint_ = true;
    if (wal_ != nullptr && copts.checkpoint_after) {
      // Make the compacted structure durable promptly. A crash before (or
      // during) this checkpoint recovers the PRE-compaction segment set
      // from the previous checkpoint + WAL — consistent either way, never
      // a mix.
      PH_RETURN_IF_ERROR(failpoint::Fire("compact.checkpoint").status);
      PH_RETURN_IF_ERROR(CheckpointLocked());
    }
    return Status::OK();
  }();
  if (!st.ok()) compaction_errors_.fetch_add(1, std::memory_order_relaxed);
  return st;
}

void ServingDb::CompactorLoop() {
  std::unique_lock<std::mutex> lock(co_mu_);
  const auto interval =
      std::chrono::milliseconds(options_.compaction.interval_ms);
  while (!co_stop_) {
    co_cv_.wait_for(lock, interval, [this] { return co_stop_; });
    if (co_stop_) return;
    lock.unlock();
    // Drain: a merge can cascade into a higher tier becoming eligible.
    bool did = true;
    for (int i = 0; i < 8 && did; ++i) {
      if (!CompactNow(&did).ok()) break;  // already counted in errors
    }
    lock.lock();
  }
}

std::vector<ServingDb::CompactionEvent> ServingDb::CompactionLog() const {
  std::lock_guard<std::mutex> lock(events_mu_);
  return events_;
}

void ServingDb::RetainRows(uint64_t row_begin, Table rows) {
  const size_t cap = static_cast<size_t>(options_.compaction.retain_rows_mb)
                     << 20;
  if (cap == 0) return;
  const size_t bytes = rows.RawSizeBytes();
  const uint64_t row_end = row_begin + rows.NumRows();
  std::lock_guard<std::mutex> lock(retained_mu_);
  retained_.push_back({row_begin, row_end, std::move(rows)});
  retained_bytes_ += bytes;
  while (retained_bytes_ > cap && !retained_.empty()) {
    retained_bytes_ -= retained_.front().rows.RawSizeBytes();
    retained_.pop_front();
  }
}

bool ServingDb::CanStitchRetained(uint64_t begin, uint64_t end) const {
  std::lock_guard<std::mutex> lock(retained_mu_);
  uint64_t cursor = begin;
  for (const RetainedBatch& b : retained_) {
    if (cursor >= end) break;
    if (b.row_end <= cursor) continue;
    if (b.row_begin > cursor) return false;  // gap (evicted batch)
    cursor = std::min(end, b.row_end);
  }
  return cursor >= end;
}

StatusOr<Table> ServingDb::StitchRetained(uint64_t begin,
                                          uint64_t end) const {
  std::lock_guard<std::mutex> lock(retained_mu_);
  std::optional<Table> out;
  uint64_t cursor = begin;
  for (const RetainedBatch& b : retained_) {
    if (cursor >= end) break;
    if (b.row_end <= cursor) continue;
    if (b.row_begin > cursor) break;
    const uint64_t take_end = std::min(end, b.row_end);
    Table slice = b.rows.Slice(static_cast<size_t>(cursor - b.row_begin),
                               static_cast<size_t>(take_end - b.row_begin));
    if (!out.has_value()) {
      out = std::move(slice);
    } else {
      PH_RETURN_IF_ERROR(AppendTableRows(&out.value(), slice));
    }
    cursor = take_end;
  }
  if (!out.has_value() || cursor < end) {
    return Status::NotFound(
        "ServingDb: retained rows do not cover [" + std::to_string(begin) +
        ", " + std::to_string(end) + ")");
  }
  return std::move(out).value();
}

ServingStats ServingDb::Stats() const {
  ServingStats s;
  std::shared_ptr<const DbSnapshot> snap = Load();
  if (snap != nullptr) {
    s.epoch = snap->epoch;
    s.segments = snap->db.num_segments();
    s.rows = snap->db.total_rows();
    s.mapped_bytes = snap->db.mapped_bytes();
    s.quarantined_segments = snap->db.quarantined_segment_count();
    s.quarantined_rows = snap->db.quarantined_rows();
    s.scrub_errors = snap->db.scrub_errors();
  }
  s.degraded_reads = degraded_reads_.load(std::memory_order_relaxed);
  s.checkpoints_skipped = recovery_.checkpoints_skipped;
  s.corrupt_checkpoint = recovery_.corrupt_checkpoint;
  s.compaction_enabled = options_.compaction.enabled;
  if (snap != nullptr) {
    s.compaction_seq = snap->compaction_seq;
    s.compaction_backlog =
        CompactionBacklog(snap->db.synopses(), options_.compaction);
  }
  s.compaction_runs = compaction_runs_.load(std::memory_order_relaxed);
  s.compaction_segments_merged =
      compaction_segments_merged_.load(std::memory_order_relaxed);
  s.compaction_rows_rewritten =
      compaction_rows_rewritten_.load(std::memory_order_relaxed);
  s.compaction_bytes_rewritten =
      compaction_bytes_rewritten_.load(std::memory_order_relaxed);
  s.compaction_errors = compaction_errors_.load(std::memory_order_relaxed);
  s.quarantine_drained = quarantine_drained_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(retained_mu_);
    s.retained_bytes = retained_bytes_;
  }
  s.queries = queries_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batch_statements = batch_statements_.load(std::memory_order_relaxed);
  if (coalescer_ != nullptr) {
    ReadCoalescer::Stats cs = coalescer_->stats();
    s.coalesced_groups = cs.groups;
    s.coalesced_statements = cs.statements;
    s.max_group = cs.max_group;
  }
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  s.cache_entries = cache_.size();
  s.appends = appends_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  if (wal_ != nullptr) {
    s.durable = true;
    s.wal_records = wal_->records_written();
    s.wal_bytes = wal_->bytes_written();
    s.wal_fsyncs = wal_->fsyncs();
    s.last_checkpoint_epoch =
        last_checkpoint_epoch_.load(std::memory_order_relaxed);
    s.checkpoints = checkpoints_.load(std::memory_order_relaxed);
    s.recovered_records = recovery_.wal_records_applied;
    s.recovered_rows = recovery_.rows_recovered;
    s.recovery_tail_truncated = recovery_.tail_truncated;
  }
  return s;
}

StatusOr<Db> ServingDb::TakeDb() {
  if (wal_ != nullptr) {
    return Status::Unsupported(
        "ServingDb::TakeDb: durable serving owns its on-disk state; "
        "checkpoint and Recover() instead");
  }
  std::lock_guard<std::mutex> lock(append_mu_);
  cache_.Clear();
  std::shared_ptr<DbSnapshot> cur =
      std::atomic_exchange(&snapshot_, std::shared_ptr<DbSnapshot>());
  if (cur == nullptr) return Status::Internal("ServingDb: already taken");
  if (cur.use_count() != 1) {
    std::atomic_store(&snapshot_, cur);  // put it back; still serving
    return Status::Unsupported(
        "ServingDb::TakeDb: snapshot still referenced; stop traffic first");
  }
  return std::move(cur->db);
}

}  // namespace pairwisehist
