#include "core/integrity.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "common/failpoint.h"
#include "common/vec_view.h"
#include "storage/sigbus_guard.h"
#include "storage/wal.h"  // Crc32

namespace pairwisehist {

namespace {

// Registry of live mappings for the VecView promotion hook: a promotion
// copies bytes out of SOME mapping; the hook finds whose and verifies the
// source blocks. weak_ptrs expire with the last SynopsisSet snapshot.
std::mutex g_reg_mu;
std::vector<std::weak_ptr<Pws3Integrity>>& Registrations() {
  static auto* v = new std::vector<std::weak_ptr<Pws3Integrity>>();
  return *v;
}

void PromotionHook(const void* data, size_t bytes) {
  std::vector<std::shared_ptr<Pws3Integrity>> owners;
  {
    std::lock_guard<std::mutex> lock(g_reg_mu);
    auto& reg = Registrations();
    for (size_t i = 0; i < reg.size();) {
      if (std::shared_ptr<Pws3Integrity> s = reg[i].lock()) {
        owners.push_back(std::move(s));
        ++i;
      } else {
        reg[i] = std::move(reg.back());
        reg.pop_back();
      }
    }
  }
  // Verify outside the registry lock: CRC work must not serialize
  // unrelated promotions.
  for (const auto& owner : owners) {
    if (owner->VerifyRangeIfOwned(data, bytes)) return;
  }
}

std::atomic<uint64_t> g_legacy_opens{0};

}  // namespace

uint64_t Pws3LegacyOpenCount() {
  return g_legacy_opens.load(std::memory_order_relaxed);
}

void BumpPws3LegacyOpenCount() {
  g_legacy_opens.fetch_add(1, std::memory_order_relaxed);
}

Pws3Integrity::Pws3Integrity(std::shared_ptr<const MappedFile> backing,
                             uint64_t data_begin, uint64_t data_end,
                             std::vector<uint32_t> block_crcs,
                             std::vector<SegmentSpan> spans)
    : backing_(std::move(backing)),
      data_begin_(data_begin),
      data_end_(data_end),
      crcs_(std::move(block_crcs)),
      spans_(std::move(spans)),
      quarantined_(new std::atomic<uint8_t>[spans_.empty() ? 1
                                                           : spans_.size()]) {
  for (size_t i = 0; i < spans_.size(); ++i) {
    quarantined_[i].store(0, std::memory_order_relaxed);
  }
}

Pws3Integrity::~Pws3Integrity() { StopScrub(); }

void Pws3Integrity::Register(const std::shared_ptr<Pws3Integrity>& self) {
  internal::SetVecViewPromotionHook(&PromotionHook);
  std::lock_guard<std::mutex> lock(g_reg_mu);
  Registrations().push_back(self);
}

Status Pws3Integrity::VerifyBlock(size_t k) {
  if (k >= crcs_.size()) return Status::OK();
  blocks_verified_.fetch_add(1, std::memory_order_relaxed);
  Status st = failpoint::Fire("scrub.verify").status;
  if (st.ok()) {
    const uint64_t begin = data_begin_ + k * kBlockSize;
    const uint64_t end = std::min<uint64_t>(data_end_, begin + kBlockSize);
    const uint8_t* base = backing_->bytes().data();
    const uint32_t want = crcs_[k];
    // The guarded body is a pure CRC walk (longjmp-safe); the mismatch
    // Status is built only after the reads completed.
    uint32_t got = 0;
    st = WithSigbusGuard([&]() -> Status {
      got = Crc32(base + begin, end - begin);
      return Status::OK();
    });
    if (st.ok() && got != want) {
      st = Status::DataLoss("PWS3: data block " + std::to_string(k) +
                            " checksum mismatch in '" + backing_->path() +
                            "'");
    }
  }
  if (!st.ok()) {
    scrub_errors_.fetch_add(1, std::memory_order_relaxed);
    QuarantineBlock(k);
  }
  return st;
}

void Pws3Integrity::QuarantineBlock(size_t k) {
  const uint64_t begin = data_begin_ + k * kBlockSize;
  const uint64_t end = std::min<uint64_t>(data_end_, begin + kBlockSize);
  for (size_t s = 0; s < spans_.size(); ++s) {
    const SegmentSpan& sp = spans_[s];
    if (sp.begin >= sp.end) continue;  // segment with no payload bytes
    if (sp.begin < end && begin < sp.end) {
      if (quarantined_[s].exchange(1, std::memory_order_acq_rel) == 0) {
        quarantined_count_.fetch_add(1, std::memory_order_release);
        qversion_.fetch_add(1, std::memory_order_release);
      }
    }
  }
}

Status Pws3Integrity::VerifyAll() {
  Status first = Status::OK();
  for (size_t k = 0; k < crcs_.size(); ++k) {
    Status st = VerifyBlock(k);
    if (!st.ok() && first.ok()) first = st;
  }
  return first;
}

bool Pws3Integrity::VerifyRangeIfOwned(const void* p, size_t n) {
  const uint8_t* q = static_cast<const uint8_t*>(p);
  const uint8_t* base = backing_->bytes().data();
  if (q < base + data_begin_ || q + n > base + data_end_) return false;
  const uint64_t off = static_cast<uint64_t>(q - base);
  const size_t k0 = (off - data_begin_) / kBlockSize;
  const size_t k1 = n == 0 ? k0 : (off + n - 1 - data_begin_) / kBlockSize;
  for (size_t k = k0; k <= k1 && k < crcs_.size(); ++k) {
    (void)VerifyBlock(k);  // failure quarantines; the copy itself proceeds
  }
  return true;
}

void Pws3Integrity::StartScrub(uint32_t mb_per_s, uint32_t repeat_ms) {
  std::lock_guard<std::mutex> lock(scrub_mu_);
  if (scrubber_.joinable()) return;
  stop_.store(false, std::memory_order_relaxed);
  scrubber_ = std::thread([this, mb_per_s, repeat_ms] {
    ScrubLoop(mb_per_s, repeat_ms);
  });
}

void Pws3Integrity::StopScrub() {
  std::lock_guard<std::mutex> lock(scrub_mu_);
  if (!scrubber_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  scrubber_.join();
}

void Pws3Integrity::ScrubLoop(uint32_t mb_per_s, uint32_t repeat_ms) {
  constexpr uint64_t kChunk = 1 << 20;  // throttle granularity: 1 MB
  do {
    // One readahead-friendly pass front to back.
    backing_->Advise(MappedFile::Advice::kSequential, data_begin_,
                     data_end_ - data_begin_);
    uint64_t since_sleep = 0;
    for (size_t k = 0; k < crcs_.size(); ++k) {
      if (stop_.load(std::memory_order_acquire)) return;
      (void)VerifyBlock(k);
      since_sleep += kBlockSize;
      if (mb_per_s > 0 && since_sleep >= kChunk) {
        since_sleep = 0;
        std::this_thread::sleep_for(
            std::chrono::microseconds(1000000 / mb_per_s));
      }
    }
    scrub_passes_.fetch_add(1, std::memory_order_release);
    if (repeat_ms == 0) return;
    for (uint32_t slept = 0;
         slept < repeat_ms && !stop_.load(std::memory_order_acquire);
         slept += 10) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  } while (!stop_.load(std::memory_order_acquire));
}

}  // namespace pairwisehist
