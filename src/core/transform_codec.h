// Shared varint codec for the per-column transform catalog.
//
// Implemented in encoding.cc (the Fig.-6 PWH1/PWS2 writer) and reused by
// the PWS3 memory-mapped container (core/pws3.cc), whose metadata stream
// embeds the same transform encoding so the two formats agree byte-for-byte
// on this section.
#ifndef PAIRWISEHIST_CORE_TRANSFORM_CODEC_H_
#define PAIRWISEHIST_CORE_TRANSFORM_CODEC_H_

#include "common/serialize.h"
#include "common/status.h"
#include "gd/preprocess.h"

namespace pairwisehist {

void WriteTransform(ByteWriter* w, const ColumnTransform& tr);
StatusOr<ColumnTransform> ReadTransform(ByteReader* r);

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_CORE_TRANSFORM_CODEC_H_
