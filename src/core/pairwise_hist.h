// PairwiseHist: the paper's data synopsis (Section 4).
//
// A PairwiseHist consists of one refined 1-d histogram per column, one
// refined 2-d histogram per column pair, and per-bin metadata (actual
// min/max, midpoint, unique count, weighted-centre bounds). It is built
// from a row sample of the GD pre-processed code domain, optionally seeding
// the initial 1-d bin edges with the GreedyGD bases (Algorithm 1), and
// serializes to the compact Fig.-6 storage encoding (see encoding.cc).
#ifndef PAIRWISEHIST_CORE_PAIRWISE_HIST_H_
#define PAIRWISEHIST_CORE_PAIRWISE_HIST_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "gd/greedy_gd.h"
#include "gd/preprocess.h"
#include "hist/histogram.h"
#include "storage/table.h"

namespace pairwisehist {

/// Build-time parameters (paper notation: Ns, M, α).
struct PairwiseHistConfig {
  /// Ns: rows sampled for construction (0 = use every row).
  size_t sample_size = 100000;
  /// M as a fraction of Ns (the paper uses 1%: M = 1000 for Ns = 100k).
  double min_points_fraction = 0.01;
  /// If non-zero, overrides the fraction with an absolute M.
  uint64_t min_points_override = 0;
  /// Hypothesis-test significance α.
  double alpha = 0.001;
  /// Sampling seed (construction is deterministic given the seed).
  uint64_t seed = 42;
  /// Seed initial 1-d edges with GreedyGD bases when a compressed table is
  /// supplied (the paper's compression↔AQP integration).
  bool use_bases_for_edges = true;
  /// Threads for pairwise (2-d) histogram construction: the d(d-1)/2
  /// BuildPairHistogram calls are independent and deterministic, so they
  /// run on a small pool with results written to fixed slots. 0 = one per
  /// hardware core, 1 = serial. Construction output is identical for any
  /// value.
  unsigned build_threads = 0;
};

/// Lower/upper bounds of a bin's weighted centre (Theorem 1 / Eq. 10).
struct CentreBounds {
  double lo = 0;
  double hi = 0;
};

/// A view of one pairwise histogram oriented as (aggregation column,
/// predicate column), hiding whether the pair is stored as (i,j) or (j,i).
class PairView {
 public:
  PairView() = default;
  PairView(const PairHistogram* ph, bool swapped)
      : ph_(ph), swapped_(swapped) {}

  bool valid() const { return ph_ != nullptr; }
  /// Dimension data for the aggregation column ("agg") and the predicate
  /// column ("pred").
  const HistogramDim& agg_dim() const {
    return swapped_ ? ph_->dim_j : ph_->dim_i;
  }
  const HistogramDim& pred_dim() const {
    return swapped_ ? ph_->dim_i : ph_->dim_j;
  }
  /// Cell count with (aggregation bin ta, predicate bin tp).
  uint64_t Cell(size_t ta, size_t tp) const {
    return swapped_ ? ph_->CellCount(tp, ta) : ph_->CellCount(ta, tp);
  }

  /// Dense cell prefix of aggregation bin `ta`: pred_dim().NumBins() + 1
  /// exact integers, entry tp = Σ cells over pred bins [0, tp). A cell is
  /// a difference of adjacent entries; a fully-covered coverage run's
  /// mass is one difference. Requires FinishExecIndex.
  const uint64_t* AggPrefix(size_t ta) const {
    return swapped_
               ? ph_->cell_prefix_j.data() + ta * (ph_->dim_i.NumBins() + 1)
               : ph_->cell_prefix_i.data() + ta * (ph_->dim_j.NumBins() + 1);
  }
  /// Column-major cell prefix at predicate-bin boundary `tp` (0 ..
  /// pred_dim().NumBins() inclusive): agg_dim().NumBins() contiguous exact
  /// integers, entry ta = Σ cells of agg bin ta over pred bins [0, tp).
  /// The mass of pred-bin range [a, b) for EVERY aggregation bin is the
  /// elementwise difference AggPrefixCol(b) - AggPrefixCol(a) — one
  /// contiguous sweep instead of NumBins strided AggPrefix lookups, which
  /// is what the multi-row reduction kernels consume. Requires
  /// FinishExecIndex.
  const uint64_t* AggPrefixCol(size_t tp) const {
    return swapped_ ? ph_->cell_colpre_j.data() + tp * ph_->dim_j.NumBins()
                    : ph_->cell_colpre_i.data() + tp * ph_->dim_i.NumBins();
  }
  /// Per 1-d aggregation-column bin: fraction of 1-d rows with the
  /// predicate column non-null (see PairHistogram::nonnull_frac_*).
  const VecView<double>& NonNullFrac() const {
    return swapped_ ? ph_->nonnull_frac_j : ph_->nonnull_frac_i;
  }

 private:
  const PairHistogram* ph_ = nullptr;
  bool swapped_ = false;
};

/// The synopsis. Thread-safe for concurrent reads after construction.
class PairwiseHist {
 public:
  /// Builds from a pre-processed table; `gd` (optional) supplies the base
  /// values that seed initial 1-d bin edges. `total_rows` is N — pass the
  /// full dataset size when `pre` is itself already a sample.
  static StatusOr<PairwiseHist> Build(const PreprocessedTable& pre,
                                      const CompressedTable* gd,
                                      const PairwiseHistConfig& config);

  /// Convenience: preprocess + build without compression.
  static StatusOr<PairwiseHist> BuildFromTable(const Table& table,
                                               const PairwiseHistConfig& cfg);

  /// Convenience: compress with GreedyGD, then build on top of the bases.
  static StatusOr<PairwiseHist> BuildFromCompressed(
      const CompressedTable& gd, const PairwiseHistConfig& cfg);

  // ---- Introspection ----------------------------------------------------
  size_t num_columns() const { return transforms_.size(); }
  uint64_t total_rows() const { return total_rows_; }     ///< N
  uint64_t sample_rows() const { return sample_rows_; }   ///< Ns
  double sampling_ratio() const {                         ///< ρ = Ns/N
    return total_rows_ == 0
               ? 1.0
               : static_cast<double>(sample_rows_) / total_rows_;
  }
  uint64_t min_points() const { return min_points_; }     ///< M
  double alpha() const { return alpha_; }

  const ColumnTransform& transform(size_t col) const {
    return transforms_[col];
  }
  StatusOr<size_t> ColumnIndex(const std::string& name) const;

  const HistogramDim& hist1d(size_t col) const { return hist1d_[col]; }

  /// Pair view oriented (agg_col, pred_col); invalid view if agg == pred.
  PairView GetPair(size_t agg_col, size_t pred_col) const;

  /// Weighted-centre bounds for bin `t` of `dim` (Eq. 10): tight
  /// chi-squared-derived bounds for passing bins (count >= M), extremal
  /// packing bounds for non-passing bins.
  CentreBounds WeightedCentreBounds(const HistogramDim& dim, size_t t) const;

  /// χ²_α critical value for `df` degrees of freedom at this synopsis's α.
  double Chi2Critical(int df) const { return critical_->Get(df); }

  /// Shared critical-value cache (used by the query engine's coverage
  /// computations).
  const Chi2CriticalCache& critical_cache() const { return *critical_; }

  // ---- Storage (Fig. 6 encoding; implemented in encoding.cc) ------------
  /// Serializes the synopsis (params, 1-d hists, 2-d hists, Golomb/dense
  /// bin counts, transform catalog).
  std::vector<uint8_t> Serialize() const;
  /// Restores a synopsis; full query capability is preserved.
  static StatusOr<PairwiseHist> Deserialize(std::span<const uint8_t> data);
  /// Legacy overload; delegates to the span overload without copying.
  static StatusOr<PairwiseHist> Deserialize(const std::vector<uint8_t>& data);
  /// Bytes of the serialized form.
  size_t StorageBytes() const;

  /// Number of 2-d histograms (d*(d-1)/2).
  size_t num_pairs() const { return pairs_.size(); }
  const PairHistogram& pair_at(size_t idx) const { return pairs_[idx]; }

  // ---- Incremental updates (paper §7 future work; implemented in
  // update.cc) -----------------------------------------------------------
  /// Folds a new pre-processed batch into the synopsis: counts grow, bin
  /// metadata extends, ρ adjusts (N and Ns both grow by the batch size).
  /// The batch must have been encoded with THIS synopsis's transforms.
  /// Bin edges are not re-refined; rebuild after heavy distribution drift.
  Status Update(const PreprocessedTable& batch);
  /// Convenience: applies this synopsis's transforms to a raw table batch,
  /// then updates. New raw values outside the fitted domain clamp to it.
  Status UpdateFromTable(const Table& batch);

  /// True when this synopsis was opened zero-copy from a memory-mapped
  /// PWS3 file (its arrays borrow the mapping; mutation copy-on-write
  /// promotes individual arrays but the handle stays until destruction).
  bool mapped() const { return backing_ != nullptr; }

 private:
  friend class SynopsisCodec;
  friend class Pws3Codec;
  PairwiseHist() = default;

  static size_t PairSlot(size_t i, size_t j);  // requires i > j

  /// (Re)builds every derived execution index: 1-d count prefix sums, the
  /// per-pair dense cell prefixes and the per-pair non-null fractions.
  /// Called at the end of Build, Deserialize and Update.
  void FinishExecIndex();

  uint64_t total_rows_ = 0;
  uint64_t sample_rows_ = 0;
  uint64_t min_points_ = 1;
  double alpha_ = 0.001;
  std::vector<ColumnTransform> transforms_;
  std::vector<HistogramDim> hist1d_;
  std::vector<PairHistogram> pairs_;  // slot PairSlot(i,j) holds pair (i,j), i>j
  std::shared_ptr<Chi2CriticalCache> critical_;
  /// Keeps the memory-mapped PWS3 file alive while any VecView field
  /// borrows from it (null for heap-built/heap-opened synopses). Typed as
  /// void so core/ need not depend on storage/mmap_file.h.
  std::shared_ptr<const void> backing_;
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_CORE_PAIRWISE_HIST_H_
