#include "core/synopsis_set.h"

#include <algorithm>
#include <utility>

#include "common/parallel.h"
#include "common/serialize.h"
#include "core/integrity.h"
#include "core/pws3.h"

namespace pairwisehist {

namespace {

// Container magic "PWS2" — distinct from the per-synopsis "PWH1" so a
// reader can tell a multi-segment file from a legacy single-synopsis one
// by its first four bytes.
constexpr uint32_t kSetMagic = 0x50575332;
constexpr uint32_t kLegacyMagic = 0x50574831;  // "PWH1"
constexpr uint32_t kSetVersion = 1;

}  // namespace

Status SynopsisSet::BuildInto(const SegmentedTable& st,
                              const PairwiseHistConfig& cfg,
                              unsigned build_threads, size_t seed_offset,
                              uint64_t row_base,
                              std::vector<Segment>* out) {
  const size_t nseg = st.NumSegments();
  out->clear();
  out->resize(nseg);

  // One segment: identical to the monolithic build (inner pair-level
  // parallelism, same seed). Several segments: fan out across segments
  // with serial inner builds so the machine is not oversubscribed; each
  // segment writes its fixed slot, so output is thread-count independent.
  std::vector<Status> statuses(nseg, Status::OK());
  auto build_one = [&](size_t i, const PairwiseHistConfig& seg_cfg) {
    // A span covering the whole base table (the default single-segment
    // build) needs no row copy.
    const bool whole = st.span(i).begin == 0 &&
                       st.span(i).end == st.base().NumRows();
    auto ph = whole ? PairwiseHist::BuildFromTable(st.base(), seg_cfg)
                    : PairwiseHist::BuildFromTable(st.Materialize(i),
                                                   seg_cfg);
    if (!ph.ok()) {
      statuses[i] = ph.status();
      return;
    }
    Segment& slot = (*out)[i];
    slot.synopsis = std::make_shared<PairwiseHist>(std::move(ph).value());
    slot.meta.row_begin = row_base + st.span(i).begin;
    slot.meta.row_end = row_base + st.span(i).end;
    slot.meta.ranges = st.Ranges(i);
  };

  if (nseg <= 1) {
    PairwiseHistConfig seg_cfg = cfg;
    seg_cfg.seed = cfg.seed + seed_offset;
    if (build_threads != 0) seg_cfg.build_threads = build_threads;
    build_one(0, seg_cfg);
  } else {
    ParallelFor(nseg, build_threads, [&](size_t i) {
      PairwiseHistConfig seg_cfg = cfg;
      seg_cfg.seed = cfg.seed + seed_offset + i;
      seg_cfg.build_threads = 1;
      build_one(i, seg_cfg);
    });
  }
  for (const Status& st_i : statuses) {
    if (!st_i.ok()) return st_i;
  }
  return Status::OK();
}

StatusOr<SynopsisSet> SynopsisSet::Build(const SegmentedTable& st,
                                         const PairwiseHistConfig& cfg,
                                         unsigned build_threads) {
  SynopsisSet out;
  PH_RETURN_IF_ERROR(BuildInto(st, cfg, build_threads, /*seed_offset=*/0,
                               /*row_base=*/0, &out.segments_));
  return out;
}

SynopsisSet SynopsisSet::FromSingle(PairwiseHist ph, SegmentMeta meta) {
  SynopsisSet out;
  out.segments_.resize(1);
  out.segments_[0].synopsis =
      std::make_shared<PairwiseHist>(std::move(ph));
  out.segments_[0].meta = std::move(meta);
  return out;
}

Status SynopsisSet::SealSegments(const SegmentedTable& st,
                                 const PairwiseHistConfig& cfg) {
  // Phase 1: build every new synopsis without touching the set (same
  // parallel fan-out as the initial build), so a failure part-way through
  // a multi-chunk batch cannot leave it half-appended.
  std::vector<Segment> fresh;
  PH_RETURN_IF_ERROR(BuildInto(st, cfg, cfg.build_threads,
                               /*seed_offset=*/segments_.size(),
                               /*row_base=*/total_rows(), &fresh));
  // Phase 2: commit.
  for (Segment& seg : fresh) segments_.push_back(std::move(seg));
  ++meta_generation_;
  return Status::OK();
}

SynopsisSet SynopsisSet::Share() const {
  SynopsisSet out;
  out.segments_ = segments_;  // shares every (immutable) synopsis
  out.meta_generation_ = meta_generation_;
  out.structure_generation_ = structure_generation_;
  out.mapped_bytes_ = mapped_bytes_;  // shared segments keep borrowing
  out.integrity_ = integrity_;  // one quarantine state across snapshots
  return out;
}

StatusOr<std::pair<size_t, size_t>> SynopsisSet::FindRun(
    uint64_t row_begin, uint64_t row_end) const {
  size_t begin = segments_.size();
  for (size_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i].meta.row_begin == row_begin) {
      begin = i;
      break;
    }
  }
  for (size_t end = begin; end < segments_.size(); ++end) {
    if (segments_[end].meta.row_end == row_end) {
      return std::make_pair(begin, end + 1);
    }
    if (segments_[end].meta.row_end > row_end) break;
  }
  return Status::NotFound(
      "SynopsisSet: no segment run spans rows [" +
      std::to_string(row_begin) + ", " + std::to_string(row_end) + ")");
}

Status SynopsisSet::ReplaceRun(size_t begin, size_t end,
                               std::shared_ptr<PairwiseHist> merged,
                               SegmentMeta meta) {
  if (begin >= end || end > segments_.size() || merged == nullptr) {
    return Status::InvalidArgument("ReplaceRun: bad segment range");
  }
  if (segments_[begin].meta.row_begin != meta.row_begin ||
      segments_[end - 1].meta.row_end != meta.row_end) {
    return Status::InvalidArgument(
        "ReplaceRun: replacement rows do not match the replaced run");
  }
  Segment seg;
  seg.synopsis = std::move(merged);
  seg.meta = std::move(meta);
  // seg.integrity_span stays kNoSpan: the rebuilt segment is heap-built,
  // so replacing a quarantined segment removes it from the quarantine set.
  segments_[begin] = std::move(seg);
  segments_.erase(segments_.begin() + static_cast<ptrdiff_t>(begin) + 1,
                  segments_.begin() + static_cast<ptrdiff_t>(end));
  ++meta_generation_;
  ++structure_generation_;
  return Status::OK();
}

StatusOr<SynopsisSet> SynopsisSet::WithReplacedRun(
    size_t begin, size_t end, std::shared_ptr<PairwiseHist> merged,
    SegmentMeta meta) const {
  SynopsisSet out = Share();
  PH_RETURN_IF_ERROR(
      out.ReplaceRun(begin, end, std::move(merged), std::move(meta)));
  return out;
}

bool SynopsisSet::SegmentQuarantined(size_t i) const {
  return integrity_ != nullptr && i < segments_.size() &&
         segments_[i].integrity_span != Segment::kNoSpan &&
         integrity_->quarantined(segments_[i].integrity_span);
}

Status SynopsisSet::VerifyIntegrity() const {
  return integrity_ ? integrity_->VerifyAll() : Status::OK();
}

void SynopsisSet::StartScrub(uint32_t mb_per_s, uint32_t repeat_ms) const {
  if (integrity_) integrity_->StartScrub(mb_per_s, repeat_ms);
}

bool SynopsisSet::has_quarantine() const {
  // The flags live on the mapping's spans; whether any CURRENT segment is
  // affected depends on which segments still reference a quarantined span
  // (compaction rebuilds segments span-free, draining the quarantine).
  if (!integrity_ || !integrity_->any_quarantined()) return false;
  return quarantined_segment_count() > 0;
}

size_t SynopsisSet::quarantined_segment_count() const {
  if (!integrity_) return 0;
  size_t n = 0;
  for (size_t i = 0; i < segments_.size(); ++i) {
    if (SegmentQuarantined(i)) ++n;
  }
  return n;
}

uint64_t SynopsisSet::quarantined_rows() const {
  if (!integrity_) return 0;
  uint64_t n = 0;
  for (size_t i = 0; i < segments_.size(); ++i) {
    if (SegmentQuarantined(i)) n += segments_[i].synopsis->total_rows();
  }
  return n;
}

uint64_t SynopsisSet::quarantine_version() const {
  return integrity_ ? integrity_->quarantine_version() : 0;
}

uint64_t SynopsisSet::scrub_errors() const {
  return integrity_ ? integrity_->scrub_errors() : 0;
}

SynopsisSet SynopsisSet::ShareHealthy() const {
  SynopsisSet out;
  out.meta_generation_ = meta_generation_;
  out.structure_generation_ = structure_generation_;
  out.mapped_bytes_ = mapped_bytes_;
  for (size_t i = 0; i < segments_.size(); ++i) {
    if (SegmentQuarantined(i)) continue;
    out.segments_.push_back(segments_[i]);
  }
  return out;
}

StatusOr<SynopsisSet> SynopsisSet::WithSealed(
    const SegmentedTable& st, const PairwiseHistConfig& cfg) const {
  SynopsisSet out = Share();
  PH_RETURN_IF_ERROR(out.SealSegments(st, cfg));
  return out;
}

void SynopsisSet::ExtendLastMeta(const Table& batch) {
  if (segments_.empty()) return;
  ++meta_generation_;
  SegmentMeta& meta = segments_.back().meta;
  meta.row_end += batch.NumRows();
  ColumnRanges batch_ranges =
      ComputeColumnRanges(batch, 0, batch.NumRows());
  ColumnRanges& r = meta.ranges;
  for (size_t c = 0; c < r.valid.size() && c < batch_ranges.valid.size();
       ++c) {
    if (!batch_ranges.valid[c]) continue;
    if (!r.valid[c]) {
      r.min[c] = batch_ranges.min[c];
      r.max[c] = batch_ranges.max[c];
      r.valid[c] = 1;
    } else {
      r.min[c] = std::min(r.min[c], batch_ranges.min[c]);
      r.max[c] = std::max(r.max[c], batch_ranges.max[c]);
    }
  }
}

uint64_t SynopsisSet::total_rows() const {
  uint64_t n = 0;
  for (const Segment& s : segments_) n += s.synopsis->total_rows();
  return n;
}

std::vector<uint8_t> SynopsisSet::Serialize() const {
  ByteWriter w;
  w.WriteU32(kSetMagic);
  w.WriteU32(kSetVersion);
  w.WriteVarint(segments_.size());
  for (const Segment& s : segments_) {
    w.WriteU64(s.meta.row_begin);
    w.WriteU64(s.meta.row_end);
    const ColumnRanges& r = s.meta.ranges;
    w.WriteVarint(r.valid.size());
    for (size_t c = 0; c < r.valid.size(); ++c) {
      w.WriteU8(r.valid[c]);
      w.WriteF64(r.min[c]);
      w.WriteF64(r.max[c]);
    }
    w.WriteBytes(s.synopsis->Serialize());
  }
  return w.Finish();
}

StatusOr<SynopsisSet> SynopsisSet::Deserialize(
    const std::vector<uint8_t>& blob) {
  return Deserialize(std::span<const uint8_t>(blob));
}

StatusOr<SynopsisSet> SynopsisSet::Deserialize(std::span<const uint8_t> blob) {
  ByteReader peek(blob);
  PH_ASSIGN_OR_RETURN(uint32_t magic, peek.ReadU32());

  if (magic == Pws3Codec::kMagic) {
    // PWS3 image handed to the heap path (e.g. a blob read into memory):
    // arrays are copied out of the image rather than borrowed, because the
    // blob's lifetime and alignment are the caller's business.
    return Pws3Codec::Decode(blob, /*backing=*/nullptr);
  }
  if (magic == kLegacyMagic) {
    // PR-1-era single-synopsis file: wrap as one segment. Pruning ranges
    // are unknown (col_valid all zero), so the planner never prunes.
    PH_ASSIGN_OR_RETURN(PairwiseHist ph, PairwiseHist::Deserialize(blob));
    SegmentMeta meta;
    meta.row_begin = 0;
    meta.row_end = ph.total_rows();
    meta.ranges.min.assign(ph.num_columns(), 0.0);
    meta.ranges.max.assign(ph.num_columns(), 0.0);
    meta.ranges.valid.assign(ph.num_columns(), 0);
    return FromSingle(std::move(ph), std::move(meta));
  }
  if (magic != kSetMagic) {
    return Status::DataLoss("SynopsisSet: bad magic");
  }

  ByteReader r(blob);
  (void)r.ReadU32();  // magic, already checked
  PH_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version == 0 || version > kSetVersion) {
    return Status::DataLoss("SynopsisSet: unsupported container version " +
                            std::to_string(version));
  }
  PH_ASSIGN_OR_RETURN(uint64_t nseg, r.ReadVarint());
  if (nseg == 0 || nseg > r.remaining()) {
    return Status::DataLoss("SynopsisSet: segment count out of range");
  }
  SynopsisSet out;
  out.segments_.resize(nseg);
  for (uint64_t i = 0; i < nseg; ++i) {
    Segment& seg = out.segments_[i];
    PH_ASSIGN_OR_RETURN(seg.meta.row_begin, r.ReadU64());
    PH_ASSIGN_OR_RETURN(seg.meta.row_end, r.ReadU64());
    PH_ASSIGN_OR_RETURN(uint64_t d, r.ReadVarint());
    if (d > r.remaining()) {
      return Status::DataLoss("SynopsisSet: column count out of range");
    }
    ColumnRanges& ranges = seg.meta.ranges;
    ranges.min.resize(d);
    ranges.max.resize(d);
    ranges.valid.resize(d);
    for (uint64_t c = 0; c < d; ++c) {
      PH_ASSIGN_OR_RETURN(ranges.valid[c], r.ReadU8());
      PH_ASSIGN_OR_RETURN(ranges.min[c], r.ReadF64());
      PH_ASSIGN_OR_RETURN(ranges.max[c], r.ReadF64());
    }
    PH_ASSIGN_OR_RETURN(std::span<const uint8_t> ph_blob, r.ReadBytesView());
    PH_ASSIGN_OR_RETURN(PairwiseHist ph, PairwiseHist::Deserialize(ph_blob));
    seg.synopsis = std::make_shared<PairwiseHist>(std::move(ph));
  }
  return out;
}

size_t SynopsisSet::StorageBytes() const { return Serialize().size(); }

}  // namespace pairwisehist
