// SynopsisSet: the segmented synopsis — one sealed PairwiseHist per row
// segment of a table, plus planner metadata, built in parallel and
// persisted in a versioned multi-segment extension of the Fig.-6 encoding.
//
// The single monolithic synopsis of the paper is the one-segment special
// case; everything downstream (SegmentedExecutor, Db) collapses to the
// exact pre-segmentation behaviour when NumSegments() == 1. Appends seal
// new segments with fresh bin edges instead of mutating existing bins, so
// accuracy does not drift as appended data departs from the original
// distribution (the PairwiseHist::Update footgun).
//
// Persistence: container magic "PWS2" wrapping one standard PWH1 blob per
// segment plus its row range and pruning ranges. Deserialize also accepts a
// bare PWH1 blob (a PR-1-era single-synopsis file) and wraps it as one
// segment with unknown pruning ranges.
#ifndef PAIRWISEHIST_CORE_SYNOPSIS_SET_H_
#define PAIRWISEHIST_CORE_SYNOPSIS_SET_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/pairwise_hist.h"
#include "storage/segment.h"

namespace pairwisehist {

class Pws3Integrity;  // core/integrity.h

/// Per-segment metadata riding next to the synopsis: the row range it was
/// sealed from and the planner pruning ranges.
struct SegmentMeta {
  uint64_t row_begin = 0;
  uint64_t row_end = 0;
  ColumnRanges ranges;  ///< raw-domain min/max per column (may be invalid)
};

class SynopsisSet {
 public:
  SynopsisSet() = default;
  SynopsisSet(SynopsisSet&&) = default;
  SynopsisSet& operator=(SynopsisSet&&) = default;

  /// Builds one synopsis per segment of `st`. With several segments the
  /// builds fan out over `build_threads` (0 = one per core) with serial
  /// inner pair construction; a single segment keeps the inner pair-level
  /// parallelism instead. Output is deterministic for any thread count.
  /// Segment i samples with seed cfg.seed + i.
  static StatusOr<SynopsisSet> Build(const SegmentedTable& st,
                                     const PairwiseHistConfig& cfg,
                                     unsigned build_threads);

  /// Wraps an already-built synopsis as a single segment.
  static SynopsisSet FromSingle(PairwiseHist ph, SegmentMeta meta);

  /// Seals every segment of `st` as new segments, all-or-nothing: every
  /// synopsis (fresh bin edges — no accuracy drift) is built before the
  /// set is mutated, so a mid-batch build failure leaves the set exactly
  /// as it was. Rows keep arriving densely: new segments span
  /// [total_rows, total_rows + n). Segment k of the batch samples with
  /// seed cfg.seed + NumSegments() + k.
  Status SealSegments(const SegmentedTable& st,
                      const PairwiseHistConfig& cfg);

  // ---- Copy-on-append snapshots -----------------------------------------
  /// Returns a set sharing every sealed segment with this one (segments
  /// are immutable once sealed, so sharing is safe as long as no caller
  /// uses the kMutateBins mutation path on either set).
  SynopsisSet Share() const;
  /// Copy-on-append: returns a NEW set that shares this set's sealed
  /// segments and additionally seals every segment of `st`, leaving
  /// `this` untouched. Seeds and row ranges are identical to calling
  /// SealSegments(st, cfg) in place, so readers of the old and new set
  /// see bit-identical segments where they overlap.
  StatusOr<SynopsisSet> WithSealed(const SegmentedTable& st,
                                   const PairwiseHistConfig& cfg) const;

  // ---- Compaction (see storage/compactor.h) -----------------------------
  /// Locates the contiguous run of segments spanning EXACTLY rows
  /// [row_begin, row_end); returns the half-open segment index range.
  /// NotFound when no run aligns (e.g. the range was already compacted).
  /// Stable across appends: sealing only ever adds segments past the end.
  StatusOr<std::pair<size_t, size_t>> FindRun(uint64_t row_begin,
                                              uint64_t row_end) const;
  /// Replaces segments [begin, end) with one already-built merged segment
  /// covering the same rows. Bumps meta_generation() AND
  /// structure_generation(): executors must rebuild engines and recompile
  /// every plan (indices shifted), not just extend the tail. The replaced
  /// segment carries no integrity span, so replacing a quarantined segment
  /// drains it from the quarantine set.
  Status ReplaceRun(size_t begin, size_t end,
                    std::shared_ptr<PairwiseHist> merged, SegmentMeta meta);
  /// Copy-on-compact: a NEW set sharing every segment except the replaced
  /// run, leaving `this` untouched (the serving snapshot-swap path).
  StatusOr<SynopsisSet> WithReplacedRun(size_t begin, size_t end,
                                        std::shared_ptr<PairwiseHist> merged,
                                        SegmentMeta meta) const;
  /// Bumped whenever existing segments are REPLACED (compaction) — unlike
  /// meta_generation(), which also covers pure growth. A change means
  /// cached per-segment engines/plans are structurally stale.
  uint64_t structure_generation() const { return structure_generation_; }
  /// Whether segment i (by CURRENT index) is quarantined. Integrity spans
  /// are remembered per segment, so this stays correct after compaction
  /// shifts indices.
  bool SegmentQuarantined(size_t i) const;

  // ---- Introspection ----------------------------------------------------
  size_t NumSegments() const { return segments_.size(); }
  const PairwiseHist& synopsis(size_t i) const {
    return *segments_[i].synopsis;
  }
  /// Mutable access for the legacy kMutateBins append path.
  PairwiseHist* mutable_synopsis(size_t i) {
    return segments_[i].synopsis.get();
  }
  const SegmentMeta& meta(size_t i) const { return segments_[i].meta; }
  /// Extends the last segment's row range and pruning ranges after a
  /// kMutateBins update folded `batch` into its synopsis.
  void ExtendLastMeta(const Table& batch);

  /// Total N across segments.
  uint64_t total_rows() const;
  /// Bumped whenever segment metadata changes (segments sealed or a
  /// kMutateBins update widened the last segment's ranges). Cached
  /// planner state (per-segment prune flags) re-validates against this.
  uint64_t meta_generation() const { return meta_generation_; }
  /// Column count (identical across segments by construction).
  size_t num_columns() const {
    return segments_.empty() ? 0 : segments_[0].synopsis->num_columns();
  }

  // ---- Persistence ------------------------------------------------------
  /// Compact Fig.-6 PWS2 container (the paper's storage encoding; this is
  /// what StorageBytes measures).
  std::vector<uint8_t> Serialize() const;
  /// Accepts the PWS2 container, a bare legacy PWH1 blob, or a PWS3 image
  /// (heap-converted — arrays are copied out of the blob). Zero-copy PWS3
  /// opens go through OpenMapped instead.
  static StatusOr<SynopsisSet> Deserialize(std::span<const uint8_t> blob);
  /// Legacy overload; delegates to the span overload without copying.
  static StatusOr<SynopsisSet> Deserialize(const std::vector<uint8_t>& blob);
  size_t StorageBytes() const;

  // ---- PWS3 memory-mapped persistence (core/pws3.cc) --------------------
  /// Flat 64-byte-aligned PWS3 image including every FinishExecIndex-
  /// derived structure, so opening needs no recomputation. Larger on disk
  /// than Serialize() — the classic space-for-startup trade.
  std::vector<uint8_t> SerializeMapped() const;
  /// Atomically writes the PWS3 image (tmp + fsync + rename).
  Status SaveMapped(const std::string& path) const;
  /// O(1) open: validates the header + metadata stream and binds every
  /// array as a span view into the mapping. The mapping stays alive (and
  /// shared page-cache-backed across processes) until the last segment
  /// referencing it is destroyed. Legacy PWS2/PWH1 files heap-convert
  /// transparently.
  static StatusOr<SynopsisSet> OpenMapped(const std::string& path);

  /// Bytes currently memory-mapped by this set (0 for heap-opened sets).
  size_t mapped_bytes() const { return mapped_bytes_; }
  bool mapped() const { return mapped_bytes_ != 0; }

  // ---- Integrity (PWS3 v2 mapped opens only; see core/integrity.h) ------
  /// The verification state of the mapping backing this set's segments,
  /// or null for heap sets, legacy files and built-in-memory sets.
  /// Shared (not copied) by Share()/WithSealed(), so a quarantine raised
  /// through any snapshot is visible to all of them.
  const std::shared_ptr<Pws3Integrity>& integrity() const {
    return integrity_;
  }
  /// Synchronous checksum sweep of the backing mapping; OK (trivially)
  /// when there is no integrity state. Failing blocks quarantine their
  /// segments as a side effect.
  Status VerifyIntegrity() const;
  /// Starts the background scrubber over the backing mapping (no-op
  /// without integrity state). See Pws3Integrity::StartScrub.
  void StartScrub(uint32_t mb_per_s, uint32_t repeat_ms) const;
  bool has_quarantine() const;
  size_t quarantined_segment_count() const;
  /// Total rows in quarantined segments (what degraded answers skip).
  uint64_t quarantined_rows() const;
  uint64_t quarantine_version() const;
  uint64_t scrub_errors() const;
  /// Returns a set sharing only the non-quarantined segments — the
  /// degraded-serving view. Drops the integrity handle (the mapping
  /// itself stays alive through the shared segments' backing handles) so
  /// the scrubber is not double-started, and keeps mapped_bytes_.
  SynopsisSet ShareHealthy() const;

 private:
  friend class Pws3Codec;
  /// shared_ptr because sealed segments are immutable and shared across
  /// copy-on-append snapshots (WithSealed); only the legacy kMutateBins
  /// path mutates a synopsis in place, and that path never coexists with
  /// snapshot sharing (Db::WithAppended rejects kMutateBins).
  struct Segment {
    /// "This segment is not backed by an integrity span" (heap-built:
    /// sealed appends and compaction-merged segments).
    static constexpr size_t kNoSpan = static_cast<size_t>(-1);

    std::shared_ptr<PairwiseHist> synopsis;
    SegmentMeta meta;
    /// Index into integrity_'s spans for mapped segments. Kept per
    /// segment (not derived from position) so compaction can replace and
    /// reindex segments without misattributing quarantine flags.
    size_t integrity_span = kNoSpan;
  };

  /// Shared per-segment build fan-out: fills out[i] for every segment of
  /// `st` (deterministic fixed slots; parallel across segments when there
  /// are several, inner pair-parallel otherwise). Segment i samples with
  /// seed cfg.seed + seed_offset + i and spans row_base + st.span(i).
  static Status BuildInto(const SegmentedTable& st,
                          const PairwiseHistConfig& cfg,
                          unsigned build_threads, size_t seed_offset,
                          uint64_t row_base, std::vector<Segment>* out);

  std::vector<Segment> segments_;
  uint64_t meta_generation_ = 0;
  /// Bumped by ReplaceRun (compaction); see structure_generation().
  uint64_t structure_generation_ = 0;
  /// Size of the PWS3 mapping backing this set's segments (0 = heap).
  /// Copied by Share()/WithSealed() — shared segments keep borrowing.
  size_t mapped_bytes_ = 0;
  /// Verification state of the backing mapping (PWS3 v2 mapped opens
  /// only). Span index i == segment index i of the decoded file; segments
  /// sealed later (appends) are heap-built and carry no span.
  std::shared_ptr<Pws3Integrity> integrity_;
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_CORE_SYNOPSIS_SET_H_
