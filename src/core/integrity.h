// Pws3Integrity: the verification state behind one memory-mapped PWS3 v2
// synopsis — the owned copy of the per-block CRC table, the byte span each
// segment's arrays occupy in the data region, per-segment quarantine
// flags, and the background scrubber that sweeps the mapping.
//
// One instance is created by Pws3Codec::Decode per mapped v2 file and held
// (shared_ptr) by every SynopsisSet that borrows arrays from the mapping —
// copy-on-append snapshots share it, so a segment quarantined by the
// scrubber is immediately visible to every snapshot still serving it.
//
// Verification paths (all SIGBUS-guarded, so a file truncated under the
// mapping surfaces as DataLoss, never a process kill):
//  * VerifyAll(): synchronous full sweep — Db::VerifyIntegrity, recovery.
//  * StartScrub(): rate-limited background sweep on the scrubber thread.
//  * The VecView copy-on-write promotion hook: any block a promotion
//    copies from is verified at the moment of the copy.
// A failing block quarantines every segment whose arrays intersect it;
// serving fails closed (or degrades) on quarantined segments upstream.
#ifndef PAIRWISEHIST_CORE_INTEGRITY_H_
#define PAIRWISEHIST_CORE_INTEGRITY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "storage/mmap_file.h"

namespace pairwisehist {

class Pws3Integrity {
 public:
  /// CRC granularity: one u32 per 64 KB of the data region. Must match
  /// Pws3Codec::kCrcBlockSize (static_asserted in pws3.cc).
  static constexpr uint64_t kBlockSize = 64 * 1024;

  /// [begin, end) byte range of one segment's arrays within the file
  /// (contiguous by construction: Encode lays segments out in order).
  struct SegmentSpan {
    uint64_t begin = 0;
    uint64_t end = 0;
  };

  Pws3Integrity(std::shared_ptr<const MappedFile> backing,
                uint64_t data_begin, uint64_t data_end,
                std::vector<uint32_t> block_crcs,
                std::vector<SegmentSpan> spans);
  ~Pws3Integrity();  ///< stops and joins the scrubber

  Pws3Integrity(const Pws3Integrity&) = delete;
  Pws3Integrity& operator=(const Pws3Integrity&) = delete;

  /// Registers `self` for copy-on-write promotion verification (and
  /// installs the process-wide VecView promotion hook on first use).
  static void Register(const std::shared_ptr<Pws3Integrity>& self);

  /// Synchronous guarded sweep of every data block. Returns the first
  /// failure (and keeps sweeping so every bad block quarantines its
  /// segments); OK when the whole region checks out.
  Status VerifyAll();

  /// Verifies block `k`; on mismatch (or an injected `scrub.verify`
  /// fault, or SIGBUS) bumps scrub_errors and quarantines intersecting
  /// segments. Returns the verification status.
  Status VerifyBlock(size_t k);

  /// CoW promotion hook target: verifies every block overlapping
  /// [p, p + n) if that range lies inside this mapping's data region.
  /// Returns false when the range is not ours.
  bool VerifyRangeIfOwned(const void* p, size_t n);

  /// Starts the background scrubber (idempotent): one sweep of the data
  /// region, rate-limited to ~mb_per_s (0 = unthrottled); with
  /// repeat_ms > 0 the sweep re-runs forever with that pause between
  /// passes (continuous scrubbing).
  void StartScrub(uint32_t mb_per_s, uint32_t repeat_ms);
  void StopScrub();

  // ---- Quarantine / counters --------------------------------------------
  size_t num_spans() const { return spans_.size(); }
  bool quarantined(size_t seg) const {
    return seg < spans_.size() &&
           quarantined_[seg].load(std::memory_order_acquire) != 0;
  }
  bool any_quarantined() const {
    return quarantined_count_.load(std::memory_order_acquire) != 0;
  }
  uint64_t quarantined_count() const {
    return quarantined_count_.load(std::memory_order_acquire);
  }
  /// Bumped once per newly quarantined segment; degraded-snapshot caches
  /// key on it.
  uint64_t quarantine_version() const {
    return qversion_.load(std::memory_order_acquire);
  }
  uint64_t scrub_errors() const {
    return scrub_errors_.load(std::memory_order_relaxed);
  }
  uint64_t blocks_verified() const {
    return blocks_verified_.load(std::memory_order_relaxed);
  }
  bool scrub_pass_done() const {
    return scrub_passes_.load(std::memory_order_acquire) != 0;
  }
  const std::string& path() const { return backing_->path(); }

 private:
  void ScrubLoop(uint32_t mb_per_s, uint32_t repeat_ms);
  void QuarantineBlock(size_t k);

  std::shared_ptr<const MappedFile> backing_;
  const uint64_t data_begin_;
  const uint64_t data_end_;
  const std::vector<uint32_t> crcs_;
  const std::vector<SegmentSpan> spans_;
  std::unique_ptr<std::atomic<uint8_t>[]> quarantined_;  // one per span
  std::atomic<uint64_t> quarantined_count_{0};
  std::atomic<uint64_t> qversion_{0};
  std::atomic<uint64_t> scrub_errors_{0};
  std::atomic<uint64_t> blocks_verified_{0};
  std::atomic<uint64_t> scrub_passes_{0};
  std::atomic<bool> stop_{false};
  std::mutex scrub_mu_;  ///< guards scrubber_ start/join
  std::thread scrubber_;
};

/// Process-wide count of PWS3 v1 files opened (no payload checksums —
/// detection is limited to the metadata stream). Surfaced in /healthz so
/// operators notice pre-integrity checkpoints still in rotation.
uint64_t Pws3LegacyOpenCount();
void BumpPws3LegacyOpenCount();

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_CORE_INTEGRITY_H_
