// PWS3: the memory-mappable synopsis container.
//
// Layout (all little-endian):
//
//   [ 64-byte header ]
//   [ 64-byte-aligned raw array payloads ... ]        <- "data" region
//   [ u32 CRC32 per 64 KB data block ]                <- "crc" region (v2)
//   [ ByteWriter metadata stream, CRC32-protected ]   <- "meta" region
//
//   header:  u32 magic "PWS3"   u32 version
//            u64 file_size      u64 data_end
//            u64 meta_size      u32 meta_crc32
//            u32 num_segments
//            u64 crc_off (== data_end)   u32 crc_count
//            u32 crc_table_crc32         [8 reserved zero bytes]
//
// v2 adds the crc region: one CRC32 per kCrcBlockSize (64 KB) block of
// the data region (the last block may be short), so corruption in the
// raw payloads — which v1 only checksummed indirectly via the meta
// stream's array references — is detectable without decoding. The table
// itself is covered by crc_table_crc32, and the meta stream now begins
// at crc_off + 4 * crc_count. v1 files (no crc region, meta at data_end,
// reserved bytes unchecked) still open; each such open bumps
// Pws3LegacyOpenCount(). For v2 the reserved tail bytes must be zero so
// single-bit flips anywhere in the header are rejected.
//
// Every numeric array of every segment (bin edges, counts, per-bin
// metadata, cell matrices, AND the FinishExecIndex-derived execution
// indexes: count prefixes, dense cell prefixes in both orientations,
// centre-bound caches, non-null fractions) is stored as a raw
// little-endian payload at a 64-byte-aligned offset. The metadata stream
// holds everything small (params, transforms, pruning ranges) plus one
// {offset, count} reference per array, in fixed traversal order.
//
// Opening is therefore O(metadata): validate the header, CRC-check and
// parse the meta stream, and bind each array as a std::span view straight
// into the mapping — no per-row decode, no prefix-sum recomputation, no
// allocation proportional to synopsis size. The page cache backs the
// mapping, so N processes opening the same file share one physical copy.
//
// This trades disk space for startup: the compact Fig.-6 PWS2 encoding
// (SynopsisSet::Serialize) remains the paper's storage-efficiency format.
#ifndef PAIRWISEHIST_CORE_PWS3_H_
#define PAIRWISEHIST_CORE_PWS3_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/synopsis_set.h"
#include "storage/mmap_file.h"

namespace pairwisehist {

/// Friend of PairwiseHist and SynopsisSet: encodes/decodes their private
/// representation to/from the PWS3 image.
class Pws3Codec {
 public:
  static constexpr uint32_t kMagic = 0x50575333;  // "PWS3"
  static constexpr uint32_t kVersion = 2;
  static constexpr size_t kHeaderSize = 64;
  static constexpr size_t kAlign = 64;
  /// Payload checksum granularity: one CRC32 per 64 KB data block.
  static constexpr size_t kCrcBlockSize = 64 * 1024;

  /// Builds the complete PWS3 image in memory. Requires every segment to
  /// carry its execution indexes (true for all public construction paths,
  /// which end in FinishExecIndex).
  static std::vector<uint8_t> Encode(const SynopsisSet& set);

  /// Validates and decodes a PWS3 image. With `backing` non-null (the
  /// zero-copy mmap path) every array binds as a borrowed span into
  /// `bytes`, and each segment holds the backing handle so the mapping
  /// outlives the set. With `backing` null (a heap blob of arbitrary
  /// alignment) arrays are memcpy'd into owned vectors.
  static StatusOr<SynopsisSet> Decode(
      std::span<const uint8_t> bytes,
      std::shared_ptr<const MappedFile> backing);
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_CORE_PWS3_H_
