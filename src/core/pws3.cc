// PWS3 memory-mappable synopsis container — writer, validator and the
// zero-copy / heap-copy readers. See pws3.h for the layout.

#include "core/pws3.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "common/failpoint.h"
#include "common/serialize.h"
#include "core/integrity.h"
#include "core/transform_codec.h"
#include "storage/wal.h"  // Crc32

namespace pairwisehist {

static_assert(Pws3Codec::kCrcBlockSize == Pws3Integrity::kBlockSize,
              "codec and verifier must agree on the CRC block size");

namespace {

// ---------------------------------------------------------------------------
// Writer

// Accumulates the aligned array region (starting right after the header)
// and the metadata stream referencing into it.
class ImageBuilder {
 public:
  ImageBuilder() { body_.resize(Pws3Codec::kHeaderSize, 0); }

  // Appends one array payload at the next 64-byte-aligned offset and
  // writes its {offset, count} reference into the metadata stream. Empty
  // arrays write {0, 0} and occupy no payload bytes.
  template <typename T>
  void Arr(const VecView<T>& v) {
    if (v.empty()) {
      meta_.WriteVarint(0);
      meta_.WriteVarint(0);
      return;
    }
    size_t off = Align(body_.size());
    body_.resize(off, 0);
    const uint8_t* p = reinterpret_cast<const uint8_t*>(v.data());
    body_.insert(body_.end(), p, p + v.size() * sizeof(T));
    meta_.WriteVarint(off);
    meta_.WriteVarint(v.size());
  }

  void Dim(const HistogramDim& h) {
    Arr(h.edges);
    Arr(h.counts);
    Arr(h.v_min);
    Arr(h.v_max);
    Arr(h.unique);
    Arr(h.parent);
    Arr(h.count_prefix);
    Arr(h.centre_mid);
    Arr(h.centre_lo);
    Arr(h.centre_hi);
  }

  ByteWriter* meta() { return &meta_; }

  std::vector<uint8_t> Finish(uint32_t num_segments) {
    // Close the data region on an aligned boundary so the crc/meta
    // offsets are stable regardless of the last array's length.
    size_t data_end = Align(body_.size());
    body_.resize(data_end, 0);

    // Per-block payload CRCs over [kHeaderSize, data_end); the final
    // block may be short.
    const size_t data_bytes = data_end - Pws3Codec::kHeaderSize;
    const size_t nblocks =
        (data_bytes + Pws3Codec::kCrcBlockSize - 1) / Pws3Codec::kCrcBlockSize;
    std::vector<uint32_t> block_crcs(nblocks);
    for (size_t k = 0; k < nblocks; ++k) {
      const size_t begin = Pws3Codec::kHeaderSize + k * Pws3Codec::kCrcBlockSize;
      const size_t end =
          std::min(data_end, begin + Pws3Codec::kCrcBlockSize);
      block_crcs[k] = Crc32(body_.data() + begin, end - begin);
    }
    const uint8_t* table =
        reinterpret_cast<const uint8_t*>(block_crcs.data());
    const size_t table_bytes = nblocks * sizeof(uint32_t);
    const uint32_t table_crc = Crc32(table, table_bytes);

    // Corruption generator for tests: with `pws3.block_corrupt` armed as
    // error, flip one payload byte AFTER the CRCs were computed — the
    // image then carries exactly the at-rest rot the verifiers must
    // catch. (crash mode kills the writer here, before any file I/O.)
    if (!failpoint::Fire("pws3.block_corrupt").status.ok() &&
        data_bytes > 0) {
      body_[Pws3Codec::kHeaderSize + data_bytes / 2] ^= 0x01;
    }

    std::vector<uint8_t> meta = meta_.Finish();
    uint32_t crc = Crc32(meta.data(), meta.size());

    std::vector<uint8_t> out = std::move(body_);
    out.insert(out.end(), table, table + table_bytes);
    out.insert(out.end(), meta.begin(), meta.end());

    auto put32 = [&out](size_t at, uint32_t v) {
      std::memcpy(out.data() + at, &v, 4);
    };
    auto put64 = [&out](size_t at, uint64_t v) {
      std::memcpy(out.data() + at, &v, 8);
    };
    put32(0, Pws3Codec::kMagic);
    put32(4, Pws3Codec::kVersion);
    put64(8, out.size());              // file_size
    put64(16, data_end);               // data_end
    put64(24, meta.size());            // meta_size
    put32(32, crc);                    // meta_crc32
    put32(36, num_segments);
    put64(40, data_end);               // crc_off (table follows the data)
    put32(48, static_cast<uint32_t>(nblocks));  // crc_count
    put32(52, table_crc);              // crc_table_crc32
    return out;
  }

 private:
  static size_t Align(size_t n) {
    return (n + Pws3Codec::kAlign - 1) & ~(Pws3Codec::kAlign - 1);
  }

  std::vector<uint8_t> body_;  // header placeholder + aligned arrays
  ByteWriter meta_;
};

// ---------------------------------------------------------------------------
// Reader

Status Bad(const std::string& what) {
  return Status::DataLoss("PWS3: " + what);
}

// Context shared by every array load of one Decode call. seg_lo/seg_hi
// accumulate the data-region byte range the current segment's arrays
// occupy (contiguous by construction: Encode lays segments out in
// order); Decode resets them per segment and snapshots the result as
// that segment's integrity span.
struct LoadCtx {
  std::span<const uint8_t> bytes;
  uint64_t data_end = 0;
  bool zero_copy = false;
  uint64_t seg_lo = 0;
  uint64_t seg_hi = 0;
};

// Reads one {offset, count} reference from the metadata stream, validates
// it against the data region, and binds (zero-copy) or copies (heap) the
// payload into `out`. `expect` is the required element count; pass
// kAnyCount to accept any (the caller validates afterwards).
constexpr size_t kAnyCount = static_cast<size_t>(-1);

template <typename T>
Status LoadArr(ByteReader* r, LoadCtx* ctx, size_t expect,
               VecView<T>* out, const char* name, bool optional = false) {
  uint64_t off = 0, count = 0;
  if (!r->ReadVarintFast(&off) || !r->ReadVarintFast(&count)) {
    return Bad("truncated array reference");
  }
  if (expect != kAnyCount && count != expect && !(optional && count == 0)) {
    return Bad(std::string(name) + " count " + std::to_string(count) +
               " != expected " + std::to_string(expect));
  }
  if (count == 0) {
    *out = VecView<T>();
    return Status::OK();
  }
  if (off < Pws3Codec::kHeaderSize || off % Pws3Codec::kAlign != 0 ||
      off > ctx->data_end) {
    return Bad("array offset out of range");
  }
  if (count > (ctx->data_end - off) / sizeof(T)) {
    return Bad("array extends past data region");
  }
  ctx->seg_lo = std::min(ctx->seg_lo, off);
  ctx->seg_hi = std::max(ctx->seg_hi, off + count * sizeof(T));
  const uint8_t* src = ctx->bytes.data() + off;
  if (ctx->zero_copy) {
    // The mapping is page-aligned and offsets are 64-byte-aligned, so the
    // typed pointer is aligned for any element type used here.
    out->BindView(reinterpret_cast<const T*>(src), count);
  } else {
    out->resize(count);
    std::memcpy(out->mut_data(), src, count * sizeof(T));
  }
  return Status::OK();
}

// Loads one HistogramDim and validates the internal size invariants.
// `parent_bins`: 0 for a 1-d histogram (no parent mapping), else the
// number of bins the parent indices must stay below.
Status LoadDim(ByteReader* r, LoadCtx* ctx, size_t parent_bins,
               HistogramDim* h) {
  PH_RETURN_IF_ERROR(LoadArr(r, ctx, kAnyCount, &h->edges, "edges"));
  if (h->edges.size() < 2) return Bad("histogram has fewer than 2 edges");
  const size_t k = h->edges.size() - 1;
  PH_RETURN_IF_ERROR(LoadArr(r, ctx, k, &h->counts, "counts"));
  PH_RETURN_IF_ERROR(LoadArr(r, ctx, k, &h->v_min, "v_min"));
  PH_RETURN_IF_ERROR(LoadArr(r, ctx, k, &h->v_max, "v_max"));
  PH_RETURN_IF_ERROR(LoadArr(r, ctx, k, &h->unique, "unique"));
  PH_RETURN_IF_ERROR(
      LoadArr(r, ctx, parent_bins == 0 ? 0 : k, &h->parent, "parent"));
  // The execution-index arrays are absent where FinishExecIndex does not
  // fill them (pair dims carry no count_prefix): empty or exact-size.
  PH_RETURN_IF_ERROR(LoadArr(r, ctx, k + 1, &h->count_prefix,
                             "count_prefix", /*optional=*/true));
  PH_RETURN_IF_ERROR(LoadArr(r, ctx, k, &h->centre_mid, "centre_mid",
                             /*optional=*/true));
  PH_RETURN_IF_ERROR(LoadArr(r, ctx, k, &h->centre_lo, "centre_lo",
                             /*optional=*/true));
  PH_RETURN_IF_ERROR(LoadArr(r, ctx, k, &h->centre_hi, "centre_hi",
                             /*optional=*/true));
  for (size_t t = 0; t < h->parent.size(); ++t) {
    if (h->parent[t] >= parent_bins) return Bad("parent bin out of range");
  }
  return Status::OK();
}

struct Header {
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t file_size = 0;
  uint64_t data_end = 0;
  uint64_t meta_size = 0;
  uint32_t meta_crc = 0;
  uint32_t num_segments = 0;
  // v2 only (zero on v1 files):
  uint64_t crc_off = 0;
  uint32_t crc_count = 0;
  uint32_t crc_table_crc = 0;
  // Where the metadata stream begins: data_end on v1, after the CRC
  // table on v2.
  uint64_t meta_off = 0;
};

Status ReadHeader(std::span<const uint8_t> bytes, Header* h) {
  if (bytes.size() < Pws3Codec::kHeaderSize) {
    return Bad("file smaller than header");
  }
  ByteReader r(bytes.data(), Pws3Codec::kHeaderSize);
  PH_ASSIGN_OR_RETURN(h->magic, r.ReadU32());
  PH_ASSIGN_OR_RETURN(h->version, r.ReadU32());
  PH_ASSIGN_OR_RETURN(h->file_size, r.ReadU64());
  PH_ASSIGN_OR_RETURN(h->data_end, r.ReadU64());
  PH_ASSIGN_OR_RETURN(h->meta_size, r.ReadU64());
  PH_ASSIGN_OR_RETURN(h->meta_crc, r.ReadU32());
  PH_ASSIGN_OR_RETURN(h->num_segments, r.ReadU32());
  if (h->magic != Pws3Codec::kMagic) return Bad("bad magic");
  if (h->version == 0 || h->version > Pws3Codec::kVersion) {
    return Bad("unsupported version " + std::to_string(h->version));
  }
  if (h->file_size != bytes.size()) {
    return Bad("file size mismatch (truncated or torn write)");
  }
  if (h->data_end < Pws3Codec::kHeaderSize || h->data_end > bytes.size()) {
    return Bad("section directory out of range");
  }
  if (h->version >= 2) {
    PH_ASSIGN_OR_RETURN(h->crc_off, r.ReadU64());
    PH_ASSIGN_OR_RETURN(h->crc_count, r.ReadU32());
    PH_ASSIGN_OR_RETURN(h->crc_table_crc, r.ReadU32());
    PH_ASSIGN_OR_RETURN(uint32_t rsvd_lo, r.ReadU32());
    PH_ASSIGN_OR_RETURN(uint32_t rsvd_hi, r.ReadU32());
    // Reserved bytes are zero by construction; enforcing that makes a
    // bit flip anywhere in the header detectable.
    if (rsvd_lo != 0 || rsvd_hi != 0) return Bad("reserved bytes not zero");
    if (h->crc_off != h->data_end) return Bad("crc table offset mismatch");
    const uint64_t data_bytes = h->data_end - Pws3Codec::kHeaderSize;
    const uint64_t expect_blocks =
        (data_bytes + Pws3Codec::kCrcBlockSize - 1) / Pws3Codec::kCrcBlockSize;
    if (h->crc_count != expect_blocks) return Bad("crc table size mismatch");
    h->meta_off = h->data_end + uint64_t{4} * h->crc_count;
  } else {
    h->meta_off = h->data_end;
  }
  if (h->meta_off > bytes.size() ||
      h->meta_size > bytes.size() - h->meta_off ||
      h->meta_off + h->meta_size != bytes.size()) {
    return Bad("section directory out of range");
  }
  if (h->num_segments == 0 || h->num_segments > (1u << 20)) {
    return Bad("segment count out of range");
  }
  if (h->version >= 2) {
    uint32_t table_crc =
        Crc32(bytes.data() + h->crc_off, uint64_t{4} * h->crc_count);
    if (table_crc != h->crc_table_crc) {
      return Bad("crc table checksum mismatch");
    }
  }
  uint32_t crc = Crc32(bytes.data() + h->meta_off, h->meta_size);
  if (crc != h->meta_crc) return Bad("metadata checksum mismatch");
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------

std::vector<uint8_t> Pws3Codec::Encode(const SynopsisSet& set) {
  ImageBuilder b;
  ByteWriter* m = b.meta();
  for (const SynopsisSet::Segment& seg : set.segments_) {
    m->WriteU64(seg.meta.row_begin);
    m->WriteU64(seg.meta.row_end);
    const ColumnRanges& ranges = seg.meta.ranges;
    m->WriteVarint(ranges.valid.size());
    for (size_t c = 0; c < ranges.valid.size(); ++c) {
      m->WriteU8(ranges.valid[c]);
      m->WriteF64(ranges.min[c]);
      m->WriteF64(ranges.max[c]);
    }

    const PairwiseHist& ph = *seg.synopsis;
    m->WriteU64(ph.total_rows_);
    m->WriteU64(ph.sample_rows_);
    m->WriteU64(ph.min_points_);
    m->WriteF64(ph.alpha_);
    m->WriteVarint(ph.transforms_.size());
    for (const ColumnTransform& tr : ph.transforms_) WriteTransform(m, tr);

    for (const HistogramDim& h : ph.hist1d_) b.Dim(h);

    m->WriteVarint(ph.pairs_.size());
    for (const PairHistogram& p : ph.pairs_) {
      m->WriteU32(p.col_i);
      m->WriteU32(p.col_j);
      b.Dim(p.dim_i);
      b.Dim(p.dim_j);
      b.Arr(p.cells);
      b.Arr(p.cell_prefix_i);
      b.Arr(p.cell_prefix_j);
      b.Arr(p.cell_colpre_i);
      b.Arr(p.cell_colpre_j);
      b.Arr(p.nonnull_frac_i);
      b.Arr(p.nonnull_frac_j);
    }
  }
  return b.Finish(static_cast<uint32_t>(set.segments_.size()));
}

StatusOr<SynopsisSet> Pws3Codec::Decode(
    std::span<const uint8_t> bytes,
    std::shared_ptr<const MappedFile> backing) {
  Header hdr;
  PH_RETURN_IF_ERROR(ReadHeader(bytes, &hdr));
  if (hdr.version == 1) BumpPws3LegacyOpenCount();

  // Heap opens verify every payload block eagerly: the bytes are about
  // to be copied anyway, so the sweep is one extra sequential pass and
  // corruption fails the open instead of surfacing as wrong answers.
  // Mapped opens stay O(metadata); their blocks are verified lazily by
  // the scrubber and the copy-on-write promotion hook.
  if (hdr.version >= 2 && backing == nullptr) {
    for (uint32_t k = 0; k < hdr.crc_count; ++k) {
      const uint64_t begin =
          Pws3Codec::kHeaderSize + uint64_t{k} * Pws3Codec::kCrcBlockSize;
      const uint64_t end =
          std::min<uint64_t>(hdr.data_end, begin + Pws3Codec::kCrcBlockSize);
      uint32_t want = 0;
      std::memcpy(&want, bytes.data() + hdr.crc_off + uint64_t{4} * k, 4);
      if (Crc32(bytes.data() + begin, end - begin) != want) {
        return Bad("data block " + std::to_string(k) + " checksum mismatch");
      }
    }
  }

  LoadCtx ctx;
  ctx.bytes = bytes;
  ctx.data_end = hdr.data_end;
  ctx.zero_copy = backing != nullptr;

  ByteReader r(bytes.data() + hdr.meta_off, hdr.meta_size);

  SynopsisSet out;
  std::vector<Pws3Integrity::SegmentSpan> spans(hdr.num_segments);
  out.segments_.resize(hdr.num_segments);
  for (uint32_t s = 0; s < hdr.num_segments; ++s) {
    ctx.seg_lo = hdr.data_end;  // min/max identities for the span fold
    ctx.seg_hi = Pws3Codec::kHeaderSize;
    SynopsisSet::Segment& seg = out.segments_[s];
    // Quarantine flags are per SPAN of the decoded file; remember which
    // span this segment came from so later reindexing (compaction) keeps
    // attributing flags correctly.
    seg.integrity_span = s;
    PH_ASSIGN_OR_RETURN(seg.meta.row_begin, r.ReadU64());
    PH_ASSIGN_OR_RETURN(seg.meta.row_end, r.ReadU64());
    PH_ASSIGN_OR_RETURN(uint64_t nranges, r.ReadVarint());
    if (nranges > r.remaining()) return Bad("range count out of range");
    ColumnRanges& ranges = seg.meta.ranges;
    ranges.valid.resize(nranges);
    ranges.min.resize(nranges);
    ranges.max.resize(nranges);
    for (uint64_t c = 0; c < nranges; ++c) {
      PH_ASSIGN_OR_RETURN(ranges.valid[c], r.ReadU8());
      PH_ASSIGN_OR_RETURN(ranges.min[c], r.ReadF64());
      PH_ASSIGN_OR_RETURN(ranges.max[c], r.ReadF64());
    }

    PairwiseHist ph;  // private ctor: Pws3Codec is a friend
    PH_ASSIGN_OR_RETURN(ph.total_rows_, r.ReadU64());
    PH_ASSIGN_OR_RETURN(ph.sample_rows_, r.ReadU64());
    PH_ASSIGN_OR_RETURN(ph.min_points_, r.ReadU64());
    PH_ASSIGN_OR_RETURN(ph.alpha_, r.ReadF64());
    PH_ASSIGN_OR_RETURN(uint64_t d, r.ReadVarint());
    if (d > (1u << 16)) return Bad("column count out of range");
    // Process-wide per-alpha cache: the eager chi-squared quantile fill
    // would otherwise be the only real compute on this O(1) open path.
    ph.critical_ = SharedChi2CriticalCache(ph.alpha_);
    ph.backing_ = backing;

    ph.transforms_.reserve(d);
    for (uint64_t c = 0; c < d; ++c) {
      PH_ASSIGN_OR_RETURN(ColumnTransform tr, ReadTransform(&r));
      ph.transforms_.push_back(std::move(tr));
    }

    ph.hist1d_.resize(d);
    for (uint64_t c = 0; c < d; ++c) {
      PH_RETURN_IF_ERROR(LoadDim(&r, &ctx, /*parent_bins=*/0,
                                 &ph.hist1d_[c]));
    }

    PH_ASSIGN_OR_RETURN(uint64_t npairs, r.ReadVarint());
    if (npairs != d * (d - 1) / 2) return Bad("pair count mismatch");
    ph.pairs_.resize(npairs);
    size_t slot = 0;
    for (uint64_t i = 1; i < d; ++i) {
      for (uint64_t j = 0; j < i; ++j, ++slot) {
        PairHistogram& p = ph.pairs_[slot];
        PH_ASSIGN_OR_RETURN(p.col_i, r.ReadU32());
        PH_ASSIGN_OR_RETURN(p.col_j, r.ReadU32());
        if (p.col_i != i || p.col_j != j) return Bad("pair slot mismatch");
        PH_RETURN_IF_ERROR(
            LoadDim(&r, &ctx, ph.hist1d_[i].NumBins(), &p.dim_i));
        PH_RETURN_IF_ERROR(
            LoadDim(&r, &ctx, ph.hist1d_[j].NumBins(), &p.dim_j));
        const size_t ki = p.dim_i.NumBins();
        const size_t kj = p.dim_j.NumBins();
        PH_RETURN_IF_ERROR(LoadArr(&r, &ctx, ki * kj, &p.cells, "cells"));
        PH_RETURN_IF_ERROR(LoadArr(&r, &ctx, ki * (kj + 1),
                                   &p.cell_prefix_i, "cell_prefix_i"));
        PH_RETURN_IF_ERROR(LoadArr(&r, &ctx, kj * (ki + 1),
                                   &p.cell_prefix_j, "cell_prefix_j"));
        PH_RETURN_IF_ERROR(LoadArr(&r, &ctx, (kj + 1) * ki,
                                   &p.cell_colpre_i, "cell_colpre_i"));
        PH_RETURN_IF_ERROR(LoadArr(&r, &ctx, (ki + 1) * kj,
                                   &p.cell_colpre_j, "cell_colpre_j"));
        PH_RETURN_IF_ERROR(LoadArr(&r, &ctx, ph.hist1d_[i].NumBins(),
                                   &p.nonnull_frac_i, "nonnull_frac_i",
                                   /*optional=*/true));
        PH_RETURN_IF_ERROR(LoadArr(&r, &ctx, ph.hist1d_[j].NumBins(),
                                   &p.nonnull_frac_j, "nonnull_frac_j",
                                   /*optional=*/true));
      }
    }
    // Execution indexes were persisted verbatim — no FinishExecIndex.
    seg.synopsis = std::make_shared<PairwiseHist>(std::move(ph));
    if (ctx.seg_hi > ctx.seg_lo) spans[s] = {ctx.seg_lo, ctx.seg_hi};
  }
  if (r.remaining() != 0) return Bad("trailing metadata bytes");
  out.mapped_bytes_ = backing ? bytes.size() : 0;
  if (backing != nullptr && hdr.version >= 2) {
    std::vector<uint32_t> crcs(hdr.crc_count);
    if (hdr.crc_count > 0) {
      std::memcpy(crcs.data(), bytes.data() + hdr.crc_off,
                  uint64_t{4} * hdr.crc_count);
    }
    auto integrity = std::make_shared<Pws3Integrity>(
        backing, Pws3Codec::kHeaderSize, hdr.data_end, std::move(crcs),
        std::move(spans));
    Pws3Integrity::Register(integrity);
    out.integrity_ = std::move(integrity);
  }
  return out;
}

// ---------------------------------------------------------------------------
// SynopsisSet entry points (declared in synopsis_set.h).

std::vector<uint8_t> SynopsisSet::SerializeMapped() const {
  return Pws3Codec::Encode(*this);
}

Status SynopsisSet::SaveMapped(const std::string& path) const {
  std::vector<uint8_t> image = Pws3Codec::Encode(*this);
  return WriteFileAtomic(path, image.data(), image.size());
}

StatusOr<SynopsisSet> SynopsisSet::OpenMapped(const std::string& path) {
  PH_ASSIGN_OR_RETURN(MappedFile mf, MappedFile::Open(path));
  uint32_t magic = 0;
  if (mf.size() >= 4) std::memcpy(&magic, mf.bytes().data(), 4);
  if (magic != Pws3Codec::kMagic) {
    // Legacy PWS2/PWH1 file: heap-convert through the span reader (the
    // mapping serves as the read buffer and is unmapped on return).
    return Deserialize(mf.bytes());
  }
  auto backing = std::make_shared<const MappedFile>(std::move(mf));
  // Cold open: kick off one readahead batch for the metadata section (the
  // only bytes Decode touches) instead of faulting it in page by page
  // while the CRC and the varint walk run. Bounds are validated again by
  // ReadHeader; a garbage data_end at worst advises a wrong range.
  if (backing->size() >= Pws3Codec::kHeaderSize) {
    uint64_t data_end = 0;
    std::memcpy(&data_end, backing->bytes().data() + 16, 8);
    if (data_end < backing->size()) {
      backing->Advise(MappedFile::Advice::kWillNeed, data_end,
                      backing->size() - data_end);
    }
  }
  PH_ASSIGN_OR_RETURN(SynopsisSet set,
                      Pws3Codec::Decode(backing->bytes(), backing));
  // Truncation-under-open check: if the file shrank after the mmap was
  // established, reads past the new EOF would SIGBUS. Fail the open
  // cleanly instead of handing out a mapping with a hole.
  struct ::stat st;
  if (::stat(path.c_str(), &st) != 0 ||
      static_cast<uint64_t>(st.st_size) < backing->size()) {
    return Bad("'" + path + "' truncated while opening");
  }
  return set;
}

}  // namespace pairwisehist
