// PWS3 memory-mappable synopsis container — writer, validator and the
// zero-copy / heap-copy readers. See pws3.h for the layout.

#include "core/pws3.h"

#include <cstring>
#include <string>
#include <utility>

#include "common/serialize.h"
#include "core/transform_codec.h"
#include "storage/wal.h"  // Crc32

namespace pairwisehist {

namespace {

// ---------------------------------------------------------------------------
// Writer

// Accumulates the aligned array region (starting right after the header)
// and the metadata stream referencing into it.
class ImageBuilder {
 public:
  ImageBuilder() { body_.resize(Pws3Codec::kHeaderSize, 0); }

  // Appends one array payload at the next 64-byte-aligned offset and
  // writes its {offset, count} reference into the metadata stream. Empty
  // arrays write {0, 0} and occupy no payload bytes.
  template <typename T>
  void Arr(const VecView<T>& v) {
    if (v.empty()) {
      meta_.WriteVarint(0);
      meta_.WriteVarint(0);
      return;
    }
    size_t off = Align(body_.size());
    body_.resize(off, 0);
    const uint8_t* p = reinterpret_cast<const uint8_t*>(v.data());
    body_.insert(body_.end(), p, p + v.size() * sizeof(T));
    meta_.WriteVarint(off);
    meta_.WriteVarint(v.size());
  }

  void Dim(const HistogramDim& h) {
    Arr(h.edges);
    Arr(h.counts);
    Arr(h.v_min);
    Arr(h.v_max);
    Arr(h.unique);
    Arr(h.parent);
    Arr(h.count_prefix);
    Arr(h.centre_mid);
    Arr(h.centre_lo);
    Arr(h.centre_hi);
  }

  ByteWriter* meta() { return &meta_; }

  std::vector<uint8_t> Finish(uint32_t num_segments) {
    // Close the data region on an aligned boundary so the meta offset is
    // stable regardless of the last array's length.
    size_t data_end = Align(body_.size());
    body_.resize(data_end, 0);
    std::vector<uint8_t> meta = meta_.Finish();
    uint32_t crc = Crc32(meta.data(), meta.size());

    std::vector<uint8_t> out = std::move(body_);
    out.insert(out.end(), meta.begin(), meta.end());

    auto put32 = [&out](size_t at, uint32_t v) {
      std::memcpy(out.data() + at, &v, 4);
    };
    auto put64 = [&out](size_t at, uint64_t v) {
      std::memcpy(out.data() + at, &v, 8);
    };
    put32(0, Pws3Codec::kMagic);
    put32(4, Pws3Codec::kVersion);
    put64(8, out.size());              // file_size
    put64(16, data_end);               // data_end == meta offset
    put64(24, meta.size());            // meta_size
    put32(32, crc);                    // meta_crc32
    put32(36, num_segments);
    return out;
  }

 private:
  static size_t Align(size_t n) {
    return (n + Pws3Codec::kAlign - 1) & ~(Pws3Codec::kAlign - 1);
  }

  std::vector<uint8_t> body_;  // header placeholder + aligned arrays
  ByteWriter meta_;
};

// ---------------------------------------------------------------------------
// Reader

Status Bad(const std::string& what) {
  return Status::DataLoss("PWS3: " + what);
}

// Context shared by every array load of one Decode call.
struct LoadCtx {
  std::span<const uint8_t> bytes;
  uint64_t data_end = 0;
  bool zero_copy = false;
};

// Reads one {offset, count} reference from the metadata stream, validates
// it against the data region, and binds (zero-copy) or copies (heap) the
// payload into `out`. `expect` is the required element count; pass
// kAnyCount to accept any (the caller validates afterwards).
constexpr size_t kAnyCount = static_cast<size_t>(-1);

template <typename T>
Status LoadArr(ByteReader* r, const LoadCtx& ctx, size_t expect,
               VecView<T>* out, const char* name, bool optional = false) {
  uint64_t off = 0, count = 0;
  if (!r->ReadVarintFast(&off) || !r->ReadVarintFast(&count)) {
    return Bad("truncated array reference");
  }
  if (expect != kAnyCount && count != expect && !(optional && count == 0)) {
    return Bad(std::string(name) + " count " + std::to_string(count) +
               " != expected " + std::to_string(expect));
  }
  if (count == 0) {
    *out = VecView<T>();
    return Status::OK();
  }
  if (off < Pws3Codec::kHeaderSize || off % Pws3Codec::kAlign != 0 ||
      off > ctx.data_end) {
    return Bad("array offset out of range");
  }
  if (count > (ctx.data_end - off) / sizeof(T)) {
    return Bad("array extends past data region");
  }
  const uint8_t* src = ctx.bytes.data() + off;
  if (ctx.zero_copy) {
    // The mapping is page-aligned and offsets are 64-byte-aligned, so the
    // typed pointer is aligned for any element type used here.
    out->BindView(reinterpret_cast<const T*>(src), count);
  } else {
    out->resize(count);
    std::memcpy(out->mut_data(), src, count * sizeof(T));
  }
  return Status::OK();
}

// Loads one HistogramDim and validates the internal size invariants.
// `parent_bins`: 0 for a 1-d histogram (no parent mapping), else the
// number of bins the parent indices must stay below.
Status LoadDim(ByteReader* r, const LoadCtx& ctx, size_t parent_bins,
               HistogramDim* h) {
  PH_RETURN_IF_ERROR(LoadArr(r, ctx, kAnyCount, &h->edges, "edges"));
  if (h->edges.size() < 2) return Bad("histogram has fewer than 2 edges");
  const size_t k = h->edges.size() - 1;
  PH_RETURN_IF_ERROR(LoadArr(r, ctx, k, &h->counts, "counts"));
  PH_RETURN_IF_ERROR(LoadArr(r, ctx, k, &h->v_min, "v_min"));
  PH_RETURN_IF_ERROR(LoadArr(r, ctx, k, &h->v_max, "v_max"));
  PH_RETURN_IF_ERROR(LoadArr(r, ctx, k, &h->unique, "unique"));
  PH_RETURN_IF_ERROR(
      LoadArr(r, ctx, parent_bins == 0 ? 0 : k, &h->parent, "parent"));
  // The execution-index arrays are absent where FinishExecIndex does not
  // fill them (pair dims carry no count_prefix): empty or exact-size.
  PH_RETURN_IF_ERROR(LoadArr(r, ctx, k + 1, &h->count_prefix,
                             "count_prefix", /*optional=*/true));
  PH_RETURN_IF_ERROR(LoadArr(r, ctx, k, &h->centre_mid, "centre_mid",
                             /*optional=*/true));
  PH_RETURN_IF_ERROR(LoadArr(r, ctx, k, &h->centre_lo, "centre_lo",
                             /*optional=*/true));
  PH_RETURN_IF_ERROR(LoadArr(r, ctx, k, &h->centre_hi, "centre_hi",
                             /*optional=*/true));
  for (size_t t = 0; t < h->parent.size(); ++t) {
    if (h->parent[t] >= parent_bins) return Bad("parent bin out of range");
  }
  return Status::OK();
}

struct Header {
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t file_size = 0;
  uint64_t data_end = 0;
  uint64_t meta_size = 0;
  uint32_t meta_crc = 0;
  uint32_t num_segments = 0;
};

Status ReadHeader(std::span<const uint8_t> bytes, Header* h) {
  if (bytes.size() < Pws3Codec::kHeaderSize) {
    return Bad("file smaller than header");
  }
  ByteReader r(bytes.data(), Pws3Codec::kHeaderSize);
  PH_ASSIGN_OR_RETURN(h->magic, r.ReadU32());
  PH_ASSIGN_OR_RETURN(h->version, r.ReadU32());
  PH_ASSIGN_OR_RETURN(h->file_size, r.ReadU64());
  PH_ASSIGN_OR_RETURN(h->data_end, r.ReadU64());
  PH_ASSIGN_OR_RETURN(h->meta_size, r.ReadU64());
  PH_ASSIGN_OR_RETURN(h->meta_crc, r.ReadU32());
  PH_ASSIGN_OR_RETURN(h->num_segments, r.ReadU32());
  if (h->magic != Pws3Codec::kMagic) return Bad("bad magic");
  if (h->version == 0 || h->version > Pws3Codec::kVersion) {
    return Bad("unsupported version " + std::to_string(h->version));
  }
  if (h->file_size != bytes.size()) {
    return Bad("file size mismatch (truncated or torn write)");
  }
  if (h->data_end < Pws3Codec::kHeaderSize || h->data_end > bytes.size() ||
      h->meta_size > bytes.size() - h->data_end ||
      h->data_end + h->meta_size != bytes.size()) {
    return Bad("section directory out of range");
  }
  if (h->num_segments == 0 || h->num_segments > (1u << 20)) {
    return Bad("segment count out of range");
  }
  uint32_t crc = Crc32(bytes.data() + h->data_end, h->meta_size);
  if (crc != h->meta_crc) return Bad("metadata checksum mismatch");
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------

std::vector<uint8_t> Pws3Codec::Encode(const SynopsisSet& set) {
  ImageBuilder b;
  ByteWriter* m = b.meta();
  for (const SynopsisSet::Segment& seg : set.segments_) {
    m->WriteU64(seg.meta.row_begin);
    m->WriteU64(seg.meta.row_end);
    const ColumnRanges& ranges = seg.meta.ranges;
    m->WriteVarint(ranges.valid.size());
    for (size_t c = 0; c < ranges.valid.size(); ++c) {
      m->WriteU8(ranges.valid[c]);
      m->WriteF64(ranges.min[c]);
      m->WriteF64(ranges.max[c]);
    }

    const PairwiseHist& ph = *seg.synopsis;
    m->WriteU64(ph.total_rows_);
    m->WriteU64(ph.sample_rows_);
    m->WriteU64(ph.min_points_);
    m->WriteF64(ph.alpha_);
    m->WriteVarint(ph.transforms_.size());
    for (const ColumnTransform& tr : ph.transforms_) WriteTransform(m, tr);

    for (const HistogramDim& h : ph.hist1d_) b.Dim(h);

    m->WriteVarint(ph.pairs_.size());
    for (const PairHistogram& p : ph.pairs_) {
      m->WriteU32(p.col_i);
      m->WriteU32(p.col_j);
      b.Dim(p.dim_i);
      b.Dim(p.dim_j);
      b.Arr(p.cells);
      b.Arr(p.cell_prefix_i);
      b.Arr(p.cell_prefix_j);
      b.Arr(p.cell_colpre_i);
      b.Arr(p.cell_colpre_j);
      b.Arr(p.nonnull_frac_i);
      b.Arr(p.nonnull_frac_j);
    }
  }
  return b.Finish(static_cast<uint32_t>(set.segments_.size()));
}

StatusOr<SynopsisSet> Pws3Codec::Decode(
    std::span<const uint8_t> bytes,
    std::shared_ptr<const MappedFile> backing) {
  Header hdr;
  PH_RETURN_IF_ERROR(ReadHeader(bytes, &hdr));

  LoadCtx ctx;
  ctx.bytes = bytes;
  ctx.data_end = hdr.data_end;
  ctx.zero_copy = backing != nullptr;

  ByteReader r(bytes.data() + hdr.data_end, hdr.meta_size);

  SynopsisSet out;
  out.segments_.resize(hdr.num_segments);
  for (uint32_t s = 0; s < hdr.num_segments; ++s) {
    SynopsisSet::Segment& seg = out.segments_[s];
    PH_ASSIGN_OR_RETURN(seg.meta.row_begin, r.ReadU64());
    PH_ASSIGN_OR_RETURN(seg.meta.row_end, r.ReadU64());
    PH_ASSIGN_OR_RETURN(uint64_t nranges, r.ReadVarint());
    if (nranges > r.remaining()) return Bad("range count out of range");
    ColumnRanges& ranges = seg.meta.ranges;
    ranges.valid.resize(nranges);
    ranges.min.resize(nranges);
    ranges.max.resize(nranges);
    for (uint64_t c = 0; c < nranges; ++c) {
      PH_ASSIGN_OR_RETURN(ranges.valid[c], r.ReadU8());
      PH_ASSIGN_OR_RETURN(ranges.min[c], r.ReadF64());
      PH_ASSIGN_OR_RETURN(ranges.max[c], r.ReadF64());
    }

    PairwiseHist ph;  // private ctor: Pws3Codec is a friend
    PH_ASSIGN_OR_RETURN(ph.total_rows_, r.ReadU64());
    PH_ASSIGN_OR_RETURN(ph.sample_rows_, r.ReadU64());
    PH_ASSIGN_OR_RETURN(ph.min_points_, r.ReadU64());
    PH_ASSIGN_OR_RETURN(ph.alpha_, r.ReadF64());
    PH_ASSIGN_OR_RETURN(uint64_t d, r.ReadVarint());
    if (d > (1u << 16)) return Bad("column count out of range");
    // Process-wide per-alpha cache: the eager chi-squared quantile fill
    // would otherwise be the only real compute on this O(1) open path.
    ph.critical_ = SharedChi2CriticalCache(ph.alpha_);
    ph.backing_ = backing;

    ph.transforms_.reserve(d);
    for (uint64_t c = 0; c < d; ++c) {
      PH_ASSIGN_OR_RETURN(ColumnTransform tr, ReadTransform(&r));
      ph.transforms_.push_back(std::move(tr));
    }

    ph.hist1d_.resize(d);
    for (uint64_t c = 0; c < d; ++c) {
      PH_RETURN_IF_ERROR(LoadDim(&r, ctx, /*parent_bins=*/0,
                                 &ph.hist1d_[c]));
    }

    PH_ASSIGN_OR_RETURN(uint64_t npairs, r.ReadVarint());
    if (npairs != d * (d - 1) / 2) return Bad("pair count mismatch");
    ph.pairs_.resize(npairs);
    size_t slot = 0;
    for (uint64_t i = 1; i < d; ++i) {
      for (uint64_t j = 0; j < i; ++j, ++slot) {
        PairHistogram& p = ph.pairs_[slot];
        PH_ASSIGN_OR_RETURN(p.col_i, r.ReadU32());
        PH_ASSIGN_OR_RETURN(p.col_j, r.ReadU32());
        if (p.col_i != i || p.col_j != j) return Bad("pair slot mismatch");
        PH_RETURN_IF_ERROR(
            LoadDim(&r, ctx, ph.hist1d_[i].NumBins(), &p.dim_i));
        PH_RETURN_IF_ERROR(
            LoadDim(&r, ctx, ph.hist1d_[j].NumBins(), &p.dim_j));
        const size_t ki = p.dim_i.NumBins();
        const size_t kj = p.dim_j.NumBins();
        PH_RETURN_IF_ERROR(LoadArr(&r, ctx, ki * kj, &p.cells, "cells"));
        PH_RETURN_IF_ERROR(LoadArr(&r, ctx, ki * (kj + 1),
                                   &p.cell_prefix_i, "cell_prefix_i"));
        PH_RETURN_IF_ERROR(LoadArr(&r, ctx, kj * (ki + 1),
                                   &p.cell_prefix_j, "cell_prefix_j"));
        PH_RETURN_IF_ERROR(LoadArr(&r, ctx, (kj + 1) * ki,
                                   &p.cell_colpre_i, "cell_colpre_i"));
        PH_RETURN_IF_ERROR(LoadArr(&r, ctx, (ki + 1) * kj,
                                   &p.cell_colpre_j, "cell_colpre_j"));
        PH_RETURN_IF_ERROR(LoadArr(&r, ctx, ph.hist1d_[i].NumBins(),
                                   &p.nonnull_frac_i, "nonnull_frac_i",
                                   /*optional=*/true));
        PH_RETURN_IF_ERROR(LoadArr(&r, ctx, ph.hist1d_[j].NumBins(),
                                   &p.nonnull_frac_j, "nonnull_frac_j",
                                   /*optional=*/true));
      }
    }
    // Execution indexes were persisted verbatim — no FinishExecIndex.
    seg.synopsis = std::make_shared<PairwiseHist>(std::move(ph));
  }
  if (r.remaining() != 0) return Bad("trailing metadata bytes");
  out.mapped_bytes_ = backing ? bytes.size() : 0;
  return out;
}

// ---------------------------------------------------------------------------
// SynopsisSet entry points (declared in synopsis_set.h).

std::vector<uint8_t> SynopsisSet::SerializeMapped() const {
  return Pws3Codec::Encode(*this);
}

Status SynopsisSet::SaveMapped(const std::string& path) const {
  std::vector<uint8_t> image = Pws3Codec::Encode(*this);
  return WriteFileAtomic(path, image.data(), image.size());
}

StatusOr<SynopsisSet> SynopsisSet::OpenMapped(const std::string& path) {
  PH_ASSIGN_OR_RETURN(MappedFile mf, MappedFile::Open(path));
  uint32_t magic = 0;
  if (mf.size() >= 4) std::memcpy(&magic, mf.bytes().data(), 4);
  if (magic != Pws3Codec::kMagic) {
    // Legacy PWS2/PWH1 file: heap-convert through the span reader (the
    // mapping serves as the read buffer and is unmapped on return).
    return Deserialize(mf.bytes());
  }
  auto backing = std::make_shared<const MappedFile>(std::move(mf));
  // Cold open: kick off one readahead batch for the metadata section (the
  // only bytes Decode touches) instead of faulting it in page by page
  // while the CRC and the varint walk run. Bounds are validated again by
  // ReadHeader; a garbage data_end at worst advises a wrong range.
  if (backing->size() >= Pws3Codec::kHeaderSize) {
    uint64_t data_end = 0;
    std::memcpy(&data_end, backing->bytes().data() + 16, 8);
    if (data_end < backing->size()) {
      backing->Advise(MappedFile::Advice::kWillNeed, data_end,
                      backing->size() - data_end);
    }
  }
  return Pws3Codec::Decode(backing->bytes(), backing);
}

}  // namespace pairwisehist
