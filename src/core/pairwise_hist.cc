#include "core/pairwise_hist.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/stats.h"

namespace pairwisehist {

size_t PairwiseHist::PairSlot(size_t i, size_t j) {
  // i > j; slots are laid out in Algorithm 1's loop order.
  return i * (i - 1) / 2 + j;
}

StatusOr<size_t> PairwiseHist::ColumnIndex(const std::string& name) const {
  for (size_t c = 0; c < transforms_.size(); ++c) {
    if (transforms_[c].name == name) return c;
  }
  return Status::NotFound("column '" + name + "' not in synopsis");
}

PairView PairwiseHist::GetPair(size_t agg_col, size_t pred_col) const {
  if (agg_col == pred_col || agg_col >= num_columns() ||
      pred_col >= num_columns()) {
    return PairView();
  }
  if (agg_col > pred_col) {
    return PairView(&pairs_[PairSlot(agg_col, pred_col)], /*swapped=*/false);
  }
  return PairView(&pairs_[PairSlot(pred_col, agg_col)], /*swapped=*/true);
}

CentreBounds PairwiseHist::WeightedCentreBounds(const HistogramDim& dim,
                                                size_t t) const {
  CentreBounds b;
  const uint64_t h = dim.counts[t];
  const uint64_t u = dim.unique[t];
  const double v_lo = dim.v_min[t];
  const double v_hi = dim.v_max[t];
  if (h == 0 || u <= 1) {
    b.lo = v_lo;
    b.hi = v_hi;
    return b;
  }
  if (h < min_points_) {
    // Non-passing bin: h-u+1 points may sit at one extremum with the other
    // unique values packed µ=1 apart next to it (Eq. 10 upper case).
    const double shift =
        static_cast<double>(u - 1) * static_cast<double>(u) /
        (2.0 * static_cast<double>(h));
    b.lo = v_lo + shift;
    b.hi = v_hi - shift;
  } else {
    // Passing bin: Theorem 1.
    const int s = TerrellScottSubBins(u);
    const double delta = (v_hi - v_lo) / s;
    const double chi2 = critical_->Get(s - 1);
    const double spread =
        delta / 6.0 *
        std::sqrt(3.0 * chi2 * (static_cast<double>(s) * s - 1.0) /
                  static_cast<double>(h));
    b.lo = v_lo + (s - 1) * delta / 2.0 - spread;
    b.hi = v_lo + (s + 1) * delta / 2.0 + spread;
  }
  b.lo = std::clamp(b.lo, v_lo, v_hi);
  b.hi = std::clamp(b.hi, b.lo, v_hi);
  return b;
}

namespace {

// Deterministically samples `ns` of `n` row indices (sorted).
std::vector<uint32_t> SampleRows(size_t n, size_t ns, uint64_t seed) {
  std::vector<uint32_t> rows;
  if (ns >= n) {
    rows.resize(n);
    for (size_t i = 0; i < n; ++i) rows[i] = static_cast<uint32_t>(i);
    return rows;
  }
  Rng rng(seed);
  std::vector<uint32_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = static_cast<uint32_t>(i);
  for (size_t i = 0; i < ns; ++i) {
    size_t j = i + static_cast<size_t>(rng.UniformInt(uint64_t(n - i)));
    std::swap(all[i], all[j]);
  }
  all.resize(ns);
  std::sort(all.begin(), all.end());
  return all;
}

// Initial 1-d bin edges for one column: either GreedyGD base-aligned edges
// (downsampled to at most `max_edges` interior values) or just {min, max+1}.
// `lo` / `hi` are the min and max non-null codes present in the sample.
std::vector<double> InitialEdges(const std::vector<uint64_t>* base_values,
                                 size_t max_edges, double lo, double hi) {
  std::vector<double> edges;
  edges.push_back(lo);
  if (base_values != nullptr && !base_values->empty() && max_edges > 2) {
    // Keep base edges strictly inside (lo, hi], downsampled evenly.
    std::vector<double> interior;
    interior.reserve(base_values->size());
    for (uint64_t v : *base_values) {
      double e = static_cast<double>(v);
      if (e > lo && e <= hi) interior.push_back(e);
    }
    size_t stride =
        std::max<size_t>(1, (interior.size() + max_edges - 1) / max_edges);
    for (size_t i = 0; i < interior.size(); i += stride) {
      edges.push_back(interior[i]);
    }
  }
  edges.push_back(hi + 1.0);
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

// Per 1-d bin of the pair dimension's column: fraction of 1-d rows that the
// pair's marginal counts cover (i.e. rows where the OTHER column is also
// non-null). Mirrors the reference accumulation in the query engine
// (parent-grouped sums in ascending refined-bin order) so the fast path
// reads identical doubles.
std::vector<double> NonNullFractions(const HistogramDim& pair_dim,
                                     const HistogramDim& h1) {
  const size_t k1 = h1.NumBins();
  const size_t ka = pair_dim.NumBins();
  std::vector<double> rows(k1, 0.0);
  for (size_t ta = 0; ta < ka; ++ta) {
    size_t parent = pair_dim.parent.empty() ? ta : pair_dim.parent[ta];
    rows[parent] += static_cast<double>(pair_dim.counts[ta]);
  }
  std::vector<double> frac(k1, 1.0);
  for (size_t t = 0; t < k1; ++t) {
    double h = static_cast<double>(h1.counts[t]);
    if (h <= 0) continue;
    frac[t] = std::clamp(rows[t] / h, 0.0, 1.0);
  }
  return frac;
}

}  // namespace

void PairwiseHist::FinishExecIndex() {
  // Any dimension can serve as an aggregation grid, so every dimension
  // gets the per-bin centre cache (midpoint + Theorem-1 bounds) that
  // Table-3 aggregation reads as flat arrays.
  auto fill_centres = [this](HistogramDim& dim) {
    const size_t k = dim.NumBins();
    dim.centre_mid.resize(k);
    dim.centre_lo.resize(k);
    dim.centre_hi.resize(k);
    for (size_t t = 0; t < k; ++t) {
      dim.centre_mid[t] = dim.Midpoint(t);
      CentreBounds cb = WeightedCentreBounds(dim, t);
      dim.centre_lo[t] = cb.lo;
      dim.centre_hi[t] = cb.hi;
    }
  };
  for (HistogramDim& h : hist1d_) {
    h.BuildCountPrefix();
    fill_centres(h);
  }
  for (PairHistogram& p : pairs_) {
    p.BuildCellPrefix();
    p.nonnull_frac_i = NonNullFractions(p.dim_i, hist1d_[p.col_i]);
    p.nonnull_frac_j = NonNullFractions(p.dim_j, hist1d_[p.col_j]);
    fill_centres(p.dim_i);
    fill_centres(p.dim_j);
  }
}

StatusOr<PairwiseHist> PairwiseHist::Build(const PreprocessedTable& pre,
                                           const CompressedTable* gd,
                                           const PairwiseHistConfig& config) {
  const size_t d = pre.NumColumns();
  const size_t n = pre.NumRows();
  if (d == 0) return Status::InvalidArgument("Build: no columns");
  if (n == 0) return Status::InvalidArgument("Build: no rows");

  PairwiseHist out;
  out.transforms_ = pre.transforms;
  out.total_rows_ = n;
  size_t ns = config.sample_size == 0 ? n : std::min(config.sample_size, n);
  out.sample_rows_ = ns;
  out.min_points_ =
      config.min_points_override > 0
          ? config.min_points_override
          : std::max<uint64_t>(
                2, static_cast<uint64_t>(
                       std::llround(config.min_points_fraction * ns)));
  out.alpha_ = config.alpha;
  out.critical_ = std::make_shared<Chi2CriticalCache>(config.alpha);

  RefineConfig refine;
  refine.min_points = out.min_points_;
  refine.alpha = config.alpha;

  std::vector<uint32_t> rows = SampleRows(n, ns, config.seed);

  // ---- 1-d histograms ----------------------------------------------------
  // Per column: sorted non-null sampled codes.
  std::vector<std::vector<double>> col_values(d);
  out.hist1d_.resize(d);
  const size_t max_edges = static_cast<size_t>(
      std::ceil(static_cast<double>(ns) / out.min_points_));
  for (size_t c = 0; c < d; ++c) {
    auto& vals = col_values[c];
    vals.reserve(rows.size());
    for (uint32_t r : rows) {
      uint64_t code = pre.codes[c][r];
      if (code != kMissingCode) vals.push_back(static_cast<double>(code));
    }
    std::sort(vals.begin(), vals.end());
    if (vals.empty()) {
      // All-null column: degenerate single empty bin.
      out.hist1d_[c] = BuildHistogram1D({}, {1.0, 2.0}, refine,
                                        *out.critical_);
      continue;
    }
    std::vector<uint64_t> bases;
    const std::vector<uint64_t>* bases_ptr = nullptr;
    if (gd != nullptr && config.use_bases_for_edges) {
      bases = gd->ColumnBaseValues(c);
      bases_ptr = &bases;
    }
    std::vector<double> edges =
        InitialEdges(bases_ptr, max_edges, vals.front(), vals.back());
    out.hist1d_[c] =
        BuildHistogram1D(vals, edges, refine, *out.critical_);
  }

  // ---- 2-d histograms ----------------------------------------------------
  // The d(d-1)/2 pair builds are independent and individually deterministic,
  // so they fan out over the shared work-counter pool, each writing its
  // fixed PairSlot — the result is identical for any thread count or
  // scheduling.
  if (d > 1) {
    const size_t npairs = d * (d - 1) / 2;
    out.pairs_.resize(npairs);
    std::vector<std::pair<uint32_t, uint32_t>> work;
    work.reserve(npairs);
    for (size_t i = 1; i < d; ++i) {
      for (size_t j = 0; j < i; ++j) {
        work.emplace_back(static_cast<uint32_t>(i), static_cast<uint32_t>(j));
      }
    }

    ParallelFor(work.size(), config.build_threads, [&](size_t w) {
      const uint32_t i = work[w].first;
      const uint32_t j = work[w].second;
      // One exact-size gather allocation per pair, released when the pair
      // finishes — negligible next to the histogram build itself, and
      // nothing is retained after Build returns.
      std::vector<double> xi, xj;
      xi.reserve(rows.size());
      xj.reserve(rows.size());
      for (uint32_t r : rows) {
        uint64_t ci = pre.codes[i][r];
        uint64_t cj = pre.codes[j][r];
        if (ci == kMissingCode || cj == kMissingCode) continue;
        xi.push_back(static_cast<double>(ci));
        xj.push_back(static_cast<double>(cj));
      }
      out.pairs_[PairSlot(i, j)] = BuildPairHistogram(
          xi, xj, i, j, out.hist1d_[i], out.hist1d_[j], refine,
          *out.critical_);
    });
  }
  out.FinishExecIndex();
  return out;
}

StatusOr<PairwiseHist> PairwiseHist::BuildFromTable(
    const Table& table, const PairwiseHistConfig& cfg) {
  PH_ASSIGN_OR_RETURN(PreprocessedTable pre, Preprocess(table));
  return Build(pre, nullptr, cfg);
}

StatusOr<PairwiseHist> PairwiseHist::BuildFromCompressed(
    const CompressedTable& gd, const PairwiseHistConfig& cfg) {
  PreprocessedTable pre = gd.DecompressCodes();
  return Build(pre, &gd, cfg);
}

}  // namespace pairwisehist
