// Incremental synopsis updates — the paper's Section-7 future-work item
// ("histogram updates"), implemented as an extension.
//
// New rows are folded into the existing bin structure: 1-d and pairwise
// cell counts grow, per-bin min/max extend, and unique counts increase
// when a value lands outside a bin's previously observed [v−, v+] span
// (an upper-bound approximation — values inside the span may also be new,
// but uniqueness inside a span cannot be tracked without storing values).
// Bin *edges* are not re-refined; after heavy drift, rebuild (the paper's
// "online refinement" remains future work there too). Updated rows count
// toward both N and Ns, so the sampling ratio ρ adjusts automatically.
#include <algorithm>

#include "core/pairwise_hist.h"

namespace pairwisehist {

namespace {

// Folds one value into a dimension's bin metadata, returning the bin.
size_t FoldValue(HistogramDim* dim, double value) {
  size_t t = dim->BinIndex(value);
  if (dim->counts[t] == 0) {
    dim->v_min[t] = value;
    dim->v_max[t] = value;
    dim->unique[t] = 1;
  } else {
    if (value < dim->v_min[t]) {
      dim->v_min[t] = value;
      ++dim->unique[t];
    } else if (value > dim->v_max[t]) {
      dim->v_max[t] = value;
      ++dim->unique[t];
    }
  }
  ++dim->counts[t];
  return t;
}

}  // namespace

Status PairwiseHist::Update(const PreprocessedTable& batch) {
  if (batch.NumColumns() != num_columns()) {
    return Status::InvalidArgument(
        "Update: batch has " + std::to_string(batch.NumColumns()) +
        " columns, synopsis has " + std::to_string(num_columns()));
  }
  const size_t d = num_columns();
  const size_t n = batch.NumRows();
  for (size_t c = 0; c < d; ++c) {
    if (batch.transforms[c].name != transforms_[c].name) {
      return Status::InvalidArgument("Update: column mismatch at " +
                                     std::to_string(c));
    }
    // Codes beyond the fitted domain would silently clamp; surface that.
    if (batch.transforms[c].min_scaled != transforms_[c].min_scaled ||
        batch.transforms[c].scale != transforms_[c].scale) {
      return Status::InvalidArgument(
          "Update: batch '" + batch.transforms[c].name +
          "' was pre-processed with different transforms; apply the "
          "synopsis's transforms (ApplyTransforms) to the new batch");
    }
  }

  // 1-d histograms.
  for (size_t c = 0; c < d; ++c) {
    HistogramDim& h = hist1d_[c];
    for (size_t r = 0; r < n; ++r) {
      uint64_t code = batch.codes[c][r];
      if (code == kMissingCode) continue;
      FoldValue(&h, static_cast<double>(code));
    }
  }

  // Pairwise histograms.
  for (size_t i = 1; i < d; ++i) {
    for (size_t j = 0; j < i; ++j) {
      PairHistogram& pair = pairs_[PairSlot(i, j)];
      const size_t kj = pair.dim_j.NumBins();
      for (size_t r = 0; r < n; ++r) {
        uint64_t ci = batch.codes[i][r];
        uint64_t cj = batch.codes[j][r];
        if (ci == kMissingCode || cj == kMissingCode) continue;
        size_t ti = FoldValue(&pair.dim_i, static_cast<double>(ci));
        size_t tj = FoldValue(&pair.dim_j, static_cast<double>(cj));
        ++pair.cells[ti * kj + tj];
      }
    }
  }

  total_rows_ += n;
  sample_rows_ += n;
  // Counts changed: rebuild the derived execution indexes (bin structure is
  // stable, so compiled plans stay valid). This is O(total non-zero cells)
  // per Update regardless of batch size — fine for the intended
  // batch-append cadence, but a high-frequency tiny-batch workload should
  // coalesce appends (incremental prefix maintenance is future work).
  FinishExecIndex();
  return Status::OK();
}

Status PairwiseHist::UpdateFromTable(const Table& batch) {
  PH_ASSIGN_OR_RETURN(PreprocessedTable pre,
                      ApplyTransforms(batch, transforms_));
  return Update(pre);
}

}  // namespace pairwisehist
