// Compact storage encoding for PairwiseHist (paper Section 4.3, Fig. 6).
//
// Layout: params → transform catalog → 1-d histograms → 2-d histograms →
// bin counts. Re-derivable quantities (midpoints, weighted-centre bounds,
// parent mappings, 2-d marginal counts) are NOT stored. Every histogram
// edge lies on the half-integer grid of the code domain (see histogram.cc),
// so edges are stored as varint deltas of 2x the edge value. Cell-count
// matrices are stored dense (bit-packed at ℓh bits per count) or sparse
// (Golomb-coded deltas between non-zero flat indices + ℓh-bit counts),
// whichever is smaller — the I(ij) flag of Fig. 6.
#include <algorithm>
#include <cmath>
#include <span>

#include "common/bitio.h"
#include "common/golomb.h"
#include "common/serialize.h"
#include "core/pairwise_hist.h"
#include "core/transform_codec.h"

namespace pairwisehist {

namespace {

constexpr uint32_t kMagic = 0x50574831;  // "PWH1"

// Bits per count: ℓh = ceil(log2(1 + max_count)) (Eq. 13).
int CountBits(std::span<const uint64_t> counts) {
  uint64_t mx = 0;
  for (uint64_t c : counts) mx = std::max(mx, c);
  int bits = 1;
  while ((uint64_t{1} << bits) <= mx && bits < 63) ++bits;
  return bits;
}

void WriteEdges(ByteWriter* w, std::span<const double> edges) {
  w->WriteVarint(edges.size());
  int64_t prev = 0;
  for (double e : edges) {
    int64_t e2 = static_cast<int64_t>(std::llround(e * 2.0));
    w->WriteSignedVarint(e2 - prev);
    prev = e2;
  }
}

StatusOr<std::vector<double>> ReadEdges(ByteReader* r) {
  PH_ASSIGN_OR_RETURN(uint64_t n, r->ReadVarint());
  // Every edge costs at least one byte, so a length field beyond the
  // remaining input is corruption — reject before allocating.
  if (n < 2 || n > r->remaining() + 2) {
    return Status::DataLoss("edge count out of range");
  }
  std::vector<double> edges(n);
  int64_t prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    PH_ASSIGN_OR_RETURN(int64_t delta, r->ReadSignedVarint());
    if (i > 0 && delta <= 0) {
      return Status::DataLoss("non-ascending histogram edges");
    }
    prev += delta;
    edges[i] = static_cast<double>(prev) / 2.0;
  }
  return edges;
}

// Per-bin metadata (v−, v+, u) for one dimension. Values are stored as
// 2x-scaled deltas from the bin's lower edge (non-negative, small).
void WriteDimMeta(ByteWriter* w, const HistogramDim& dim) {
  for (size_t t = 0; t < dim.NumBins(); ++t) {
    int64_t e2 = static_cast<int64_t>(std::llround(dim.edges[t] * 2.0));
    int64_t lo2 = static_cast<int64_t>(std::llround(dim.v_min[t] * 2.0));
    int64_t hi2 = static_cast<int64_t>(std::llround(dim.v_max[t] * 2.0));
    w->WriteSignedVarint(lo2 - e2);
    w->WriteVarint(static_cast<uint64_t>(hi2 - lo2));
    w->WriteVarint(dim.unique[t]);
  }
}

Status ReadDimMeta(ByteReader* r, HistogramDim* dim) {
  size_t k = dim->edges.size() - 1;
  dim->v_min.resize(k);
  dim->v_max.resize(k);
  dim->unique.resize(k);
  for (size_t t = 0; t < k; ++t) {
    int64_t e2 = static_cast<int64_t>(std::llround(dim->edges[t] * 2.0));
    PH_ASSIGN_OR_RETURN(int64_t lo_delta, r->ReadSignedVarint());
    PH_ASSIGN_OR_RETURN(uint64_t span, r->ReadVarint());
    PH_ASSIGN_OR_RETURN(uint64_t u, r->ReadVarint());
    int64_t lo2 = e2 + lo_delta;
    dim->v_min[t] = static_cast<double>(lo2) / 2.0;
    dim->v_max[t] = static_cast<double>(lo2 + static_cast<int64_t>(span)) / 2.0;
    dim->unique[t] = u;
  }
  return Status::OK();
}

// Cell-count matrix: dense (mode 0) or sparse Golomb (mode 1).
void WriteCells(ByteWriter* w, std::span<const uint64_t> cells) {
  int lh = CountBits(cells);
  size_t nonzero = 0;
  for (uint64_t c : cells) nonzero += (c != 0);

  // Dense cost vs sparse cost (in bits).
  uint64_t dense_bits = cells.size() * static_cast<uint64_t>(lh);
  // Sparse: estimate with the mean index delta.
  uint64_t m = GolombOptimalM(
      nonzero == 0 ? 1.0
                   : static_cast<double>(cells.size()) / nonzero);
  uint64_t sparse_bits = 0;
  {
    uint64_t prev = 0;
    bool first = true;
    for (size_t idx = 0; idx < cells.size(); ++idx) {
      if (cells[idx] == 0) continue;
      uint64_t delta = first ? idx : idx - prev - 1;
      first = false;
      prev = idx;
      sparse_bits += GolombCodeLengthBits(delta, m) + lh;
    }
  }

  w->WriteU8(static_cast<uint8_t>(lh));
  if (sparse_bits < dense_bits) {
    w->WriteU8(1);  // sparse
    w->WriteVarint(nonzero);
    w->WriteVarint(m);
    BitWriter bits;
    uint64_t prev = 0;
    bool first = true;
    for (size_t idx = 0; idx < cells.size(); ++idx) {
      if (cells[idx] == 0) continue;
      uint64_t delta = first ? idx : idx - prev - 1;
      first = false;
      prev = idx;
      GolombEncode(delta, m, &bits);
      bits.WriteBits(cells[idx], lh);
    }
    w->WriteBytes(bits.Finish());
  } else {
    w->WriteU8(0);  // dense
    BitWriter bits;
    for (uint64_t c : cells) bits.WriteBits(c, lh);
    w->WriteBytes(bits.Finish());
  }
}

Status ReadCells(ByteReader* r, size_t n, VecView<uint64_t>* cells) {
  // A cell matrix larger than the whole input at one bit per count is
  // corruption (caller derives n from edge counts, which a flipped bit
  // can inflate).
  if (n > (r->remaining() + 16) * 8 * 64) {
    return Status::DataLoss("cell matrix larger than input");
  }
  cells->assign(n, 0);
  PH_ASSIGN_OR_RETURN(uint8_t lh, r->ReadU8());
  if (lh == 0 || lh > 63) return Status::DataLoss("bad count width");
  PH_ASSIGN_OR_RETURN(uint8_t mode, r->ReadU8());
  if (mode == 1) {
    PH_ASSIGN_OR_RETURN(uint64_t nonzero, r->ReadVarint());
    if (nonzero > n) return Status::DataLoss("non-zero count exceeds cells");
    PH_ASSIGN_OR_RETURN(uint64_t m, r->ReadVarint());
    PH_ASSIGN_OR_RETURN(std::vector<uint8_t> blob, r->ReadBytes());
    BitReader bits(blob);
    uint64_t idx = 0;
    bool first = true;
    for (uint64_t i = 0; i < nonzero; ++i) {
      PH_ASSIGN_OR_RETURN(uint64_t delta, GolombDecode(m, &bits));
      idx = first ? delta : idx + delta + 1;
      first = false;
      PH_ASSIGN_OR_RETURN(uint64_t count, bits.ReadBits(lh));
      if (idx >= n) return Status::DataLoss("sparse cell index overflow");
      (*cells)[idx] = count;
    }
  } else if (mode == 0) {
    PH_ASSIGN_OR_RETURN(std::vector<uint8_t> blob, r->ReadBytes());
    BitReader bits(blob);
    for (size_t i = 0; i < n; ++i) {
      PH_ASSIGN_OR_RETURN(uint64_t count, bits.ReadBits(lh));
      (*cells)[i] = count;
    }
  } else {
    return Status::DataLoss("unknown cell-count mode");
  }
  return Status::OK();
}

}  // namespace

void WriteTransform(ByteWriter* w, const ColumnTransform& tr) {
  w->WriteString(tr.name);
  w->WriteU8(static_cast<uint8_t>(tr.type));
  w->WriteU8(static_cast<uint8_t>(tr.decimals));
  w->WriteSignedVarint(tr.min_scaled);
  w->WriteVarint(tr.max_code);
  w->WriteU8(static_cast<uint8_t>(tr.bit_width));
  w->WriteU8(tr.has_nulls ? 1 : 0);
  w->WriteVarint(tr.rank_to_code.size());
  for (int64_t code : tr.rank_to_code) w->WriteSignedVarint(code);
  w->WriteVarint(tr.dictionary.size());
  for (const auto& s : tr.dictionary) w->WriteString(s);
}

StatusOr<ColumnTransform> ReadTransform(ByteReader* r) {
  ColumnTransform tr;
  PH_ASSIGN_OR_RETURN(tr.name, r->ReadString());
  PH_ASSIGN_OR_RETURN(uint8_t type, r->ReadU8());
  tr.type = static_cast<DataType>(type);
  PH_ASSIGN_OR_RETURN(uint8_t dec, r->ReadU8());
  tr.decimals = dec;
  tr.scale = std::pow(10.0, tr.decimals);
  PH_ASSIGN_OR_RETURN(tr.min_scaled, r->ReadSignedVarint());
  PH_ASSIGN_OR_RETURN(tr.max_code, r->ReadVarint());
  PH_ASSIGN_OR_RETURN(uint8_t bw, r->ReadU8());
  tr.bit_width = bw;
  PH_ASSIGN_OR_RETURN(uint8_t hn, r->ReadU8());
  tr.has_nulls = hn != 0;
  PH_ASSIGN_OR_RETURN(uint64_t nranks, r->ReadVarint());
  if (nranks > r->remaining()) {
    return Status::DataLoss("rank table larger than input");
  }
  tr.rank_to_code.resize(nranks);
  int64_t max_code = -1;
  for (uint64_t i = 0; i < nranks; ++i) {
    PH_ASSIGN_OR_RETURN(tr.rank_to_code[i], r->ReadSignedVarint());
    if (tr.rank_to_code[i] < 0 ||
        tr.rank_to_code[i] > static_cast<int64_t>(nranks) * 2 + 64) {
      return Status::DataLoss("rank table entry out of range");
    }
    max_code = std::max(max_code, tr.rank_to_code[i]);
  }
  if (nranks > 0) {
    tr.code_to_rank.assign(static_cast<size_t>(max_code) + 1, 0);
    for (uint64_t rank = 0; rank < nranks; ++rank) {
      tr.code_to_rank[static_cast<size_t>(tr.rank_to_code[rank])] =
          static_cast<int64_t>(rank);
    }
  }
  PH_ASSIGN_OR_RETURN(uint64_t ndict, r->ReadVarint());
  if (ndict > r->remaining()) {
    return Status::DataLoss("dictionary larger than input");
  }
  tr.dictionary.resize(ndict);
  for (uint64_t i = 0; i < ndict; ++i) {
    PH_ASSIGN_OR_RETURN(tr.dictionary[i], r->ReadString());
  }
  return tr;
}

namespace {

// Recomputes the parent mapping and marginal counts of a pair dimension
// from its edges, the matching 1-d histogram and the cell matrix.
void DerivePairDim(HistogramDim* dim, const HistogramDim& h1,
                   std::span<const uint64_t> cells, size_t k_other,
                   bool is_rows) {
  size_t k = dim->edges.size() - 1;  // counts not populated yet
  dim->parent.resize(k);
  for (size_t t = 0; t < k; ++t) {
    dim->parent[t] = static_cast<uint32_t>(h1.BinIndex(dim->edges[t]));
  }
  dim->counts.assign(k, 0);
  for (size_t a = 0; a < k; ++a) {
    uint64_t sum = 0;
    for (size_t b = 0; b < k_other; ++b) {
      sum += is_rows ? cells[a * k_other + b] : cells[b * k + a];
    }
    dim->counts[a] = sum;
  }
}

}  // namespace

// Friend of PairwiseHist: reads/writes the private representation.
class SynopsisCodec {
 public:
  static std::vector<uint8_t> Encode(const PairwiseHist& ph) {
    ByteWriter w;
    w.WriteU32(kMagic);
    w.WriteU64(ph.total_rows_);
    w.WriteU64(ph.sample_rows_);
    w.WriteU64(ph.min_points_);
    w.WriteF64(ph.alpha_);
    w.WriteU16(static_cast<uint16_t>(ph.transforms_.size()));

    for (const auto& tr : ph.transforms_) WriteTransform(&w, tr);

    // 1-d histograms: edges, metadata, counts.
    for (const auto& h : ph.hist1d_) {
      WriteEdges(&w, h.edges);
      WriteDimMeta(&w, h);
      WriteCells(&w, h.counts);
    }

    // 2-d histograms: refined edges + metadata per dim, then cells.
    for (const auto& p : ph.pairs_) {
      WriteEdges(&w, p.dim_i.edges);
      WriteDimMeta(&w, p.dim_i);
      WriteEdges(&w, p.dim_j.edges);
      WriteDimMeta(&w, p.dim_j);
      WriteCells(&w, p.cells);
    }
    return w.Finish();
  }

  static StatusOr<PairwiseHist> Decode(std::span<const uint8_t> data) {
    ByteReader r(data);
    PH_ASSIGN_OR_RETURN(uint32_t magic, r.ReadU32());
    if (magic != kMagic) {
      return Status::DataLoss("PairwiseHist: bad magic");
    }
    PairwiseHist ph;
    PH_ASSIGN_OR_RETURN(ph.total_rows_, r.ReadU64());
    PH_ASSIGN_OR_RETURN(ph.sample_rows_, r.ReadU64());
    PH_ASSIGN_OR_RETURN(ph.min_points_, r.ReadU64());
    PH_ASSIGN_OR_RETURN(ph.alpha_, r.ReadF64());
    PH_ASSIGN_OR_RETURN(uint16_t d, r.ReadU16());
    ph.critical_ = SharedChi2CriticalCache(ph.alpha_);

    ph.transforms_.reserve(d);
    for (uint16_t c = 0; c < d; ++c) {
      PH_ASSIGN_OR_RETURN(ColumnTransform tr, ReadTransform(&r));
      ph.transforms_.push_back(std::move(tr));
    }

    ph.hist1d_.resize(d);
    for (uint16_t c = 0; c < d; ++c) {
      HistogramDim& h = ph.hist1d_[c];
      PH_ASSIGN_OR_RETURN(h.edges, ReadEdges(&r));
      if (h.edges.size() < 2) {
        return Status::DataLoss("PairwiseHist: 1-d histogram too small");
      }
      PH_RETURN_IF_ERROR(ReadDimMeta(&r, &h));
      PH_RETURN_IF_ERROR(ReadCells(&r, h.edges.size() - 1, &h.counts));
    }

    size_t npairs = static_cast<size_t>(d) * (d - 1) / 2;
    ph.pairs_.resize(npairs);
    size_t slot = 0;
    for (size_t i = 1; i < d; ++i) {
      for (size_t j = 0; j < i; ++j, ++slot) {
        PairHistogram& p = ph.pairs_[slot];
        p.col_i = static_cast<uint32_t>(i);
        p.col_j = static_cast<uint32_t>(j);
        PH_ASSIGN_OR_RETURN(p.dim_i.edges, ReadEdges(&r));
        PH_RETURN_IF_ERROR(ReadDimMeta(&r, &p.dim_i));
        PH_ASSIGN_OR_RETURN(p.dim_j.edges, ReadEdges(&r));
        PH_RETURN_IF_ERROR(ReadDimMeta(&r, &p.dim_j));
        size_t ki = p.dim_i.edges.size() - 1;
        size_t kj = p.dim_j.edges.size() - 1;
        PH_RETURN_IF_ERROR(ReadCells(&r, ki * kj, &p.cells));
        DerivePairDim(&p.dim_i, ph.hist1d_[i], p.cells, kj, /*is_rows=*/true);
        DerivePairDim(&p.dim_j, ph.hist1d_[j], p.cells, ki,
                      /*is_rows=*/false);
      }
    }
    // Execution indexes (prefix sums, cell prefixes, non-null
    // fractions) are derived, not stored.
    ph.FinishExecIndex();
    return ph;
  }
};

std::vector<uint8_t> PairwiseHist::Serialize() const {
  return SynopsisCodec::Encode(*this);
}

StatusOr<PairwiseHist> PairwiseHist::Deserialize(
    std::span<const uint8_t> data) {
  return SynopsisCodec::Decode(data);
}

StatusOr<PairwiseHist> PairwiseHist::Deserialize(
    const std::vector<uint8_t>& data) {
  return SynopsisCodec::Decode(std::span<const uint8_t>(data));
}

size_t PairwiseHist::StorageBytes() const { return Serialize().size(); }

}  // namespace pairwisehist
