// pairwisehist::Db — the unified public facade over the whole pipeline.
//
// Everything downstream code previously wired by hand (CSV / generator /
// Table ingestion → optional GreedyGD compression → segmented PairwiseHist
// build → engine construction → exact ground-truth fallback → Fig.-6
// persistence → incremental append) sits behind one handle:
//
//   auto db = Db::FromGenerator("power", 100000, 42);
//   auto pq = db->Prepare("SELECT AVG(voltage) FROM power WHERE hour > 18;");
//   auto approx = pq->Execute();        // parse-once, execute-many hot path
//   auto exact  = pq->ExecuteExact();   // ground truth from the kept table
//
// Prepare() runs the parse → normalize → grid-selection stages of Fig. 7
// exactly once per segment; each Execute() then performs only coverage +
// weighting + aggregation (see AqpEngine::Compile). Alternative AQP
// backends (sampling / AVI / SPN / DBEst, anything implementing AqpMethod)
// can be swapped in behind the same interface with SetBackend().
//
// Segmentation: a Db holds one sealed PairwiseHist per row segment
// (DbOptions::target_segment_rows; 0 = the paper's single monolithic
// synopsis). Appends seal each batch as a new segment with fresh bin edges
// by default — no accuracy drift — and queries fan out across segments in
// parallel with deterministic merged results (see query/segment_exec.h).
#ifndef PAIRWISEHIST_API_DB_H_
#define PAIRWISEHIST_API_DB_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "baselines/aqp_method.h"
#include "common/status.h"
#include "core/pairwise_hist.h"
#include "core/synopsis_set.h"
#include "gd/greedy_gd.h"
#include "query/batch_exec.h"
#include "query/engine.h"
#include "query/segment_exec.h"
#include "storage/compactor.h"
#include "storage/table.h"

namespace pairwisehist {

/// How Db::Append folds a new batch into the synopsis.
enum class AppendMode {
  /// Seal the batch as one (or more) new segments with freshly fitted bin
  /// edges. Accuracy does not degrade as appended data drifts from the
  /// original distribution. The default.
  kSealSegment,
  /// The paper's Sec.-3.6 behaviour: mutate the last segment's existing
  /// bins in place (PairwiseHist::Update). Cheap, but bin edges are never
  /// re-refined, so accuracy drifts under distribution shift.
  kMutateBins,
};

/// How Db::Open materializes a synopsis file.
enum class OpenMode {
  /// Zero-copy when the file allows it (PWS3 → kMmap, legacy → heap
  /// conversion). Overridable via the PWH_OPEN environment variable
  /// ("mmap" or "heap"), which is how CI forces a whole test run through
  /// one path.
  kAuto,
  /// Read the file into memory and decode into owned vectors. Works for
  /// every format; never keeps a mapping.
  kHeap,
  /// Memory-map the file: a PWS3 synopsis opens in O(metadata) with every
  /// array bound as a span view into the shared page cache; legacy
  /// PWS2/PWH1 files transparently heap-convert (the mapping is dropped).
  kMmap,
};

/// On-disk format written by Db::Save.
enum class SaveFormat {
  /// Memory-mappable PWS3 (the default): O(1) reopen, larger on disk.
  kPws3,
  /// Compact Fig.-6 PWS2 container (the paper's storage encoding).
  kPws2,
};

/// Construction-time choices for a Db.
struct DbOptions {
  /// Synopsis build parameters (Ns, M, α, seed) — applied per segment.
  PairwiseHistConfig synopsis;
  /// Keep a GreedyGD-compressed copy of the data and seed the synopsis bin
  /// edges with its bases (the paper's compression ↔ AQP integration).
  /// Base-edge seeding applies to single-segment builds; a segmented build
  /// fits each segment's edges from its own rows.
  bool compress = false;
  /// GreedyGD tuning (used only when `compress` is set).
  GdConfig gd;
  /// Retain the raw table for exact ground-truth execution and for
  /// training alternative backends. Costs memory; synopsis-only queries
  /// work without it.
  bool keep_table = true;
  /// Engine refinement toggles.
  AqpEngineOptions engine;
  /// Threads for parallel synopsis construction: with one segment these
  /// fan out the d(d-1)/2 pairwise histogram builds, with several segments
  /// the per-segment builds. 0 = one per hardware core, 1 = serial.
  /// Overrides `synopsis.build_threads` when non-zero; construction output
  /// is identical for any value.
  unsigned build_threads = 0;
  /// Target rows per sealed segment: 0 = one monolithic synopsis (the
  /// paper's layout). The initial build partitions the table into
  /// ceil(rows / target) contiguous segments; appended batches are sealed
  /// in chunks of at most this size.
  size_t target_segment_rows = 0;
  /// Threads for cross-segment query execution: 0 = one per hardware
  /// core, 1 = serial. Results are bit-identical for any value.
  unsigned exec_threads = 0;
  /// SIMD kernel tier for the execution hot loops (common/simd.h):
  /// kAuto/kWidest picks the widest ISA the binary and CPU support once at
  /// startup (AVX2 → SSE2/NEON → scalar; overridable via the PWH_KERNELS
  /// environment variable), kScalar forces the scalar kernels. Results are
  /// deterministic per tier — bit-identical across runs and exec_threads —
  /// and tiers agree to 1e-9 relative. When set to anything other than
  /// kAuto this overrides `engine.kernels`; at the kAuto default,
  /// `engine.kernels` is honoured.
  KernelMode kernels = KernelMode::kAuto;
  /// Append behaviour (see AppendMode).
  AppendMode append_mode = AppendMode::kSealSegment;
  /// Planner pruning: skip segments whose per-column min/max provably
  /// cannot satisfy the WHERE clause.
  bool prune_segments = true;
  /// How Db::Open(path, options) materializes the synopsis file (ignored
  /// by the build-from-data constructors). See OpenMode.
  OpenMode open_mode = OpenMode::kAuto;
  /// Serve queries from the surviving segments when some are quarantined
  /// by integrity verification, instead of failing closed. Plumbed to
  /// ServingDb as its default; per-request opt-in (X-Allow-Degraded)
  /// overrides it there.
  bool allow_degraded = false;
  /// Background-scrub a memory-mapped PWS3 v2 open: one checksum sweep of
  /// the mapping starts after open (heap opens verify eagerly instead and
  /// ignore these knobs).
  bool scrub = true;
  /// Scrub rate limit in MB/s (0 = unthrottled).
  uint32_t scrub_mb_per_s = 128;
  /// Pause between scrub passes; 0 = a single pass, >0 = continuous
  /// scrubbing with this many milliseconds between sweeps.
  uint32_t scrub_repeat_ms = 0;
  /// Segment lifecycle: tiered background compaction + error-driven refit
  /// (see storage/compactor.h). When `compact.enabled`, Append drains
  /// eligible compactions after sealing and queries feed observed CI
  /// widths into the refit ledger.
  CompactionOptions compact;
};

class Db;

/// The output of the off-path compaction build phase: one merged segment
/// (fresh bin edges fitted over the whole merged row range) ready to be
/// published into a synopsis set by Db::WithCompactionApplied.
struct CompactedRun {
  std::shared_ptr<PairwiseHist> synopsis;
  SegmentMeta meta;
};

/// A SQL statement prepared against a Db: parsed, normalized and planned
/// once per segment, executable many times. Must not outlive the Db it
/// came from; Db::Append keeps prepared queries valid (plans for newly
/// sealed segments compile lazily on first execution), Db::SetBackend
/// invalidates queries prepared while a different backend was active.
class PreparedQuery {
 public:
  /// An empty statement (Execute fails with Internal until assigned from
  /// Db::Prepare); lets containers and caches hold PreparedQuery slots.
  PreparedQuery() = default;

  /// Runs the approximate engine (or the active backend) on the captured
  /// plans. Only coverage + weighting + aggregation (+ cross-segment
  /// merge) run per call.
  StatusOr<QueryResult> Execute() const;

  /// Same, into a caller-owned result whose group storage is reused. With
  /// a warm result object and a single-segment Db the built-in engine's
  /// fast path performs zero heap allocations per call for scalar
  /// (non-GROUP-BY) queries; grouped and multi-segment executions still
  /// allocate merge scratch.
  Status ExecuteInto(QueryResult* result) const;

  /// Runs the query exactly against the kept raw table (Unsupported when
  /// the Db was opened without one).
  StatusOr<QueryResult> ExecuteExact() const;

  const Query& query() const { return query_; }
  std::string ToSql() const { return query_.ToSql(); }
  /// True when Execute() uses the parse-once compiled plans (the built-in
  /// PairwiseHist engine); false when a swapped-in backend answers.
  bool compiled() const { return plan_.valid(); }
  /// The per-segment plan set (valid only when compiled()).
  const SegmentedPlan& plan() const { return plan_; }

 private:
  friend class Db;

  const SegmentedExecutor* exec_ = nullptr;  // built-in execution path
  const AqpMethod* backend_ = nullptr;       // set when a backend is active
  const Table* table_ = nullptr;             // exact fallback (may be null)
  Query query_;
  SegmentedPlan plan_;  // valid iff backend_ == nullptr
};

/// The facade. Movable, not copyable; prepared queries remain valid across
/// moves (internal components have stable addresses).
///
/// Thread safety:
///  - All const methods — Prepare, Execute*, ExecuteBatch, PrepareBatch,
///    Save, introspection — are safe to call concurrently from any number
///    of threads on the same Db. Per-call execution state lives in scratch
///    leased from per-engine/per-executor pools (never in shared mutable
///    members), cross-segment fan-out serializes on the TaskPool
///    internally, and lazy plan extension after Append synchronizes on
///    each SegmentedPlan's own mutex with release/acquire publication.
///  - Append and SetBackend are exclusive writers: no other call (const or
///    not) may run concurrently with them — Append mutates the synopsis
///    set, raw table and compressed store in place.
///  - For readers that must never block during appends, take copy-on-append
///    snapshots with WithAppended (sealed segments are immutable and
///    shared) and swap whole Db instances — serve/ServingDb packages that
///    pattern behind an RCU-style atomic snapshot pointer.
class Db {
 public:
  Db(Db&&) = default;
  Db& operator=(Db&&) = default;
  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  // ---- Opening ----------------------------------------------------------
  /// Takes ownership of an in-memory table.
  static StatusOr<Db> FromTable(Table table, DbOptions options = {});
  /// Loads a CSV file (header row, inferred types).
  static StatusOr<Db> FromCsv(const std::string& path,
                              DbOptions options = {});
  /// Builds one of the named synthetic datasets (see datagen/datasets.h);
  /// rows == 0 uses the laptop-scale default.
  static StatusOr<Db> FromGenerator(const std::string& name, size_t rows,
                                    uint64_t seed, DbOptions options = {});
  /// Opens a synopsis previously written by Save(): full query capability,
  /// no raw data (exact fallback unavailable). Accepts PWS3 (zero-copy
  /// memory-mapped by default — see OpenMode), the PWS2 multi-segment
  /// container and PR-1-era single-synopsis PWH1 files.
  static StatusOr<Db> Open(const std::string& path,
                           AqpEngineOptions engine = {});
  /// Same with full options: open_mode selects mmap vs heap, and the
  /// engine/exec_threads/kernels/prune_segments knobs apply as usual.
  static StatusOr<Db> Open(const std::string& path, const DbOptions& options);
  /// Same, from an in-memory serialized blob (always heap-decoded).
  static StatusOr<Db> FromBlob(const std::vector<uint8_t>& blob,
                               AqpEngineOptions engine = {});

  // ---- Persistence ------------------------------------------------------
  /// Writes the synopsis: kPws3 (default) is the memory-mappable format,
  /// written atomically (tmp + fsync + rename); kPws2 is the compact
  /// Fig.-6 container. Open handles both transparently.
  Status Save(const std::string& path,
              SaveFormat format = SaveFormat::kPws3) const;
  /// The compact PWS2 image (the paper's storage encoding; heap-decoded by
  /// FromBlob).
  std::vector<uint8_t> ToBlob() const { return set_->Serialize(); }

  // ---- Queries ----------------------------------------------------------
  /// Parses + compiles once; the returned statement re-executes without
  /// re-planning.
  StatusOr<PreparedQuery> Prepare(const std::string& sql) const;
  /// Prepares an already-parsed query.
  StatusOr<PreparedQuery> Prepare(Query query) const;

  /// One-shot approximate execution (parse + plan + run).
  StatusOr<QueryResult> ExecuteSql(const std::string& sql) const;
  StatusOr<QueryResult> Execute(const Query& query) const;

  // ---- Batched queries --------------------------------------------------
  /// Prepares many statements as one batch: parsed and planned once per
  /// segment like Prepare, with duplicate statements sharing one plan.
  /// Execution amortizes coverage + probability + Eq.-29 weighting across
  /// statements sharing an aggregation grid and predicate set (see
  /// query/batch_exec.h); results are bit-identical to executing each
  /// statement alone. Unsupported while a swapped-in backend is active
  /// (batching is a built-in-engine feature).
  StatusOr<PreparedBatch> PrepareBatch(
      const std::vector<std::string>& sqls) const;
  StatusOr<PreparedBatch> PrepareBatch(std::vector<Query> queries) const;

  /// Executes `n` already-prepared statements (a contiguous span) as one
  /// batch; `results` is resized to n with results[i] bit-identical to
  /// queries[i].Execute(). Statements that do not route through the
  /// built-in engine (prepared while a backend was active) execute
  /// individually inside the call.
  Status ExecuteBatch(const PreparedQuery* queries, size_t n,
                      std::vector<QueryResult>* results) const;
  Status ExecuteBatch(const std::vector<PreparedQuery>& queries,
                      std::vector<QueryResult>* results) const;

  /// One-shot exact execution against the kept raw table.
  StatusOr<QueryResult> ExecuteExactSql(const std::string& sql) const;
  StatusOr<QueryResult> ExecuteExact(const Query& query) const;

  // ---- Incremental ingestion -------------------------------------------
  /// Folds a new batch (same schema) into every maintained structure.
  /// kSealSegment (default): the batch becomes one or more new sealed
  /// segments with fresh bin edges. kMutateBins: the last segment's bins
  /// absorb the rows in place (the paper's Sec.-3.6 update). Either way
  /// the compressed store (when present) and the kept raw table grow, and
  /// prepared queries stay valid and see the new data.
  Status Append(const Table& batch);

  /// Copy-on-append snapshot: returns a NEW Db whose synopsis shares every
  /// existing sealed segment with this one (sealed segments are immutable)
  /// and additionally seals `batch` as fresh segments — `this` is left
  /// untouched, so in-flight readers of the old Db and plans prepared
  /// against it stay valid indefinitely. Segment seeds and row ranges
  /// match what Append(batch) would have produced, so old and new Db
  /// answer identically over the shared prefix. The kept raw table (when
  /// present) is deep-copied — O(total rows); open with keep_table = false
  /// for cheap snapshots. Unsupported with a compressed store, an active
  /// backend, or AppendMode::kMutateBins (snapshot sharing requires
  /// immutable segments). This is the building block of serve/ServingDb.
  StatusOr<Db> WithAppended(const Table& batch) const;

  /// Name and type of every column an Append batch must supply, in synopsis
  /// order. Lets callers that parse untyped inputs (e.g. the CSV /append
  /// endpoint) re-type numeric columns before Append's schema check.
  std::vector<std::pair<std::string, DataType>> AppendSchema() const;

  // ---- Segment lifecycle: tiered compaction (storage/compactor.h) -------
  /// Picks the highest-priority eligible compaction under this Db's
  /// CompactionOptions (quarantined rebuildable segments first, then the
  /// worst-error full tier run), or nullopt when nothing is eligible.
  /// Requires the kept raw table to rebuild rows; ranges the table cannot
  /// cover are skipped.
  std::optional<CompactionSpec> PickCompactionSpec() const;

  /// Runs one compaction in place (exclusive writer, like Append): picks
  /// (or takes *spec_in), rebuilds the merged segment from the raw table,
  /// replaces the run, refreshes the executor and forgets the range's
  /// ledger entries. Returns false when nothing was eligible. Prepared
  /// queries/batches stay valid: their plans recompile on next execution
  /// (structure_generation changed). `applied` receives the spec used.
  StatusOr<bool> CompactOnce(CompactionSpec* applied = nullptr,
                             const CompactionSpec* spec_in = nullptr);

  /// Drains eligible compactions (bounded): repeatedly CompactOnce until
  /// nothing is eligible. Returns the number of compactions applied.
  StatusOr<size_t> Compact();

  /// Phase 1 of the serving snapshot-swap path: builds the merged segment
  /// for `spec` from this Db's kept table, entirely off the write path
  /// (const; safe concurrently with reads). The overload taking `rows`
  /// rebuilds from caller-provided rows (e.g. WAL-retained batches) when
  /// this Db has no kept table; `rows` must span exactly
  /// [spec.row_begin, spec.row_end) in order.
  StatusOr<CompactedRun> BuildCompaction(const CompactionSpec& spec) const;
  StatusOr<CompactedRun> BuildCompaction(const CompactionSpec& spec,
                                         const Table& rows) const;

  /// Phase 2: a NEW Db sharing every segment except the compacted run,
  /// which is replaced by `run` — `this` is untouched, so in-flight
  /// readers stay valid (the RCU publish step). NotFound when the spec's
  /// row range no longer aligns to a segment run (e.g. already compacted).
  StatusOr<Db> WithCompactionApplied(const CompactionSpec& spec,
                                     CompactedRun run) const;

  /// This Db's compaction options / error-feedback ledger (ledger is null
  /// unless DbOptions::compact.enabled).
  const CompactionOptions& compaction_options() const { return compact_; }
  const std::shared_ptr<FeedbackLedger>& feedback_ledger() const {
    return ledger_;
  }
  /// Segments sitting in merge-eligible runs (the compaction backlog).
  size_t CompactionBacklogSize() const {
    return CompactionBacklog(*set_, compact_);
  }

  // ---- Pluggable AQP backends ------------------------------------------
  /// Routes subsequent Execute/Prepare calls through `backend` instead of
  /// the built-in PairwiseHist engine. Passing nullptr restores the
  /// built-in engine (as does ResetBackend).
  Status SetBackend(std::unique_ptr<AqpMethod> backend);
  void ResetBackend() { backend_.reset(); }
  /// Builds one of the bundled baselines from the kept raw table:
  /// "sampling", "avi" or "spn". Requires keep_table.
  StatusOr<std::unique_ptr<AqpMethod>> MakeBaselineBackend(
      const std::string& kind, size_t sample_size, uint64_t seed = 1) const;
  const AqpMethod* backend() const { return backend_.get(); }

  // ---- Introspection ----------------------------------------------------
  const std::string& name() const { return name_; }
  /// Number of sealed segments (1 for a monolithic Db).
  size_t num_segments() const { return set_->NumSegments(); }
  /// Segment i's synopsis / metadata.
  const PairwiseHist& synopsis(size_t i) const { return set_->synopsis(i); }
  const SegmentMeta& segment_meta(size_t i) const { return set_->meta(i); }
  /// The first segment's synopsis (the whole synopsis of a monolithic Db).
  const PairwiseHist& synopsis() const { return set_->synopsis(0); }
  /// The whole segmented synopsis.
  const SynopsisSet& synopses() const { return *set_; }
  /// Total rows across all segments.
  uint64_t total_rows() const { return set_->total_rows(); }
  /// The first segment's engine (every segment has one; see executor()).
  const AqpEngine& engine() const { return exec_->engine(0); }
  /// The cross-segment executor.
  const SegmentedExecutor& executor() const { return *exec_; }
  /// The kept raw table, or nullptr when opened synopsis-only.
  const Table* table() const { return table_.get(); }
  /// The GreedyGD store, or nullptr when built without compression.
  const CompressedTable* compressed() const { return compressed_.get(); }
  size_t StorageBytes() const { return set_->StorageBytes(); }
  /// True when this Db was opened zero-copy from a memory-mapped PWS3
  /// file; mapped_bytes() is the mapping's size (0 for heap-opened Dbs).
  bool mapped() const { return set_->mapped(); }
  size_t mapped_bytes() const { return set_->mapped_bytes(); }

  // ---- Integrity (memory-mapped PWS3 v2 opens) --------------------------
  /// Synchronous checksum sweep of the backing mapping (OK for heap /
  /// legacy opens, which verified eagerly). Failing blocks quarantine
  /// their segments.
  Status VerifyIntegrity() const { return set_->VerifyIntegrity(); }
  /// True when integrity verification has quarantined any segment.
  bool has_quarantine() const { return set_->has_quarantine(); }
  size_t quarantined_segment_count() const {
    return set_->quarantined_segment_count();
  }
  /// Rows a degraded answer would skip.
  uint64_t quarantined_rows() const { return set_->quarantined_rows(); }
  /// Bumped per newly quarantined segment (degraded caches key on it).
  uint64_t quarantine_version() const { return set_->quarantine_version(); }
  uint64_t scrub_errors() const { return set_->scrub_errors(); }
  /// The DbOptions::allow_degraded this Db was opened with.
  bool allow_degraded() const { return allow_degraded_; }
  /// The degraded-serving view: a NEW synopsis-only Db sharing every
  /// non-quarantined segment with this one. Fails InvalidArgument when
  /// nothing is quarantined (use `this`) or every segment is quarantined.
  StatusOr<Db> WithoutQuarantined() const;

 private:
  Db() = default;
  static StatusOr<Db> Build(Table table, const DbOptions& options);
  /// Shared tail of every synopsis-only open path: wraps an already
  /// deserialized/mapped set and recovers append build parameters from its
  /// newest segment.
  static StatusOr<Db> FromSet(SynopsisSet set, const DbOptions& options);
  /// Checks that `batch`'s columns match the synopsis schema by name/type.
  Status ValidateAppendSchema(const Table& batch) const;
  /// Returns a copy of `batch` with categorical columns re-coded into the
  /// newest segment's fitted dictionaries (batch dictionaries may order
  /// the same strings differently; unseen categories extend the canonical
  /// dictionary append-only).
  StatusOr<Table> CanonicalizeBatch(const Table& batch) const;

  std::string name_;
  // unique_ptr members keep component addresses stable across Db moves so
  // prepared queries can hold plain pointers.
  std::unique_ptr<SynopsisSet> set_;
  std::unique_ptr<SegmentedExecutor> exec_;
  std::unique_ptr<Table> table_;
  std::unique_ptr<CompressedTable> compressed_;
  std::unique_ptr<AqpMethod> backend_;
  // Retained build options for appends.
  PairwiseHistConfig append_cfg_;
  size_t target_segment_rows_ = 0;
  AppendMode append_mode_ = AppendMode::kSealSegment;
  bool allow_degraded_ = false;
  // Segment lifecycle: options + error-feedback ledger (created when
  // compact.enabled; shared across copy-on-append/compact snapshots so
  // feedback survives snapshot swaps).
  CompactionOptions compact_;
  std::shared_ptr<FeedbackLedger> ledger_;
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_API_DB_H_
