// pairwisehist::Db — the unified public facade over the whole pipeline.
//
// Everything downstream code previously wired by hand (CSV / generator /
// Table ingestion → optional GreedyGD compression → PairwiseHist build →
// engine construction → exact ground-truth fallback → Fig.-6 persistence →
// incremental append) sits behind one handle:
//
//   auto db = Db::FromGenerator("power", 100000, 42);
//   auto pq = db->Prepare("SELECT AVG(voltage) FROM power WHERE hour > 18;");
//   auto approx = pq->Execute();        // parse-once, execute-many hot path
//   auto exact  = pq->ExecuteExact();   // ground truth from the kept table
//
// Prepare() runs the parse → normalize → grid-selection stages of Fig. 7
// exactly once; each Execute() then performs only coverage + weighting +
// aggregation (see AqpEngine::Compile). Alternative AQP backends
// (sampling / AVI / SPN / DBEst, anything implementing AqpMethod) can be
// swapped in behind the same interface with SetBackend().
#ifndef PAIRWISEHIST_API_DB_H_
#define PAIRWISEHIST_API_DB_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/aqp_method.h"
#include "common/status.h"
#include "core/pairwise_hist.h"
#include "gd/greedy_gd.h"
#include "query/engine.h"
#include "storage/table.h"

namespace pairwisehist {

/// Construction-time choices for a Db.
struct DbOptions {
  /// Synopsis build parameters (Ns, M, α, seed).
  PairwiseHistConfig synopsis;
  /// Keep a GreedyGD-compressed copy of the data and seed the synopsis bin
  /// edges with its bases (the paper's compression ↔ AQP integration).
  bool compress = false;
  /// GreedyGD tuning (used only when `compress` is set).
  GdConfig gd;
  /// Retain the raw table for exact ground-truth execution and for
  /// training alternative backends. Costs memory; synopsis-only queries
  /// work without it.
  bool keep_table = true;
  /// Engine refinement toggles.
  AqpEngineOptions engine;
  /// Threads for parallel synopsis construction (the d(d-1)/2 pairwise
  /// histogram builds): 0 = one per hardware core, 1 = serial. Overrides
  /// `synopsis.build_threads` when non-zero; construction output is
  /// identical for any value.
  unsigned build_threads = 0;
};

class Db;

/// A SQL statement prepared against a Db: parsed, normalized and planned
/// once, executable many times. Must not outlive the Db it came from;
/// Db::Append keeps prepared queries valid, Db::SetBackend invalidates
/// queries prepared while a different backend was active.
class PreparedQuery {
 public:
  /// Runs the approximate engine (or the active backend) on the captured
  /// plan. Only coverage + weighting + aggregation run per call.
  StatusOr<QueryResult> Execute() const;

  /// Same, into a caller-owned result whose group storage is reused. With
  /// a warm result object the built-in engine's fast path performs zero
  /// heap allocations per call for scalar (non-GROUP-BY) queries; grouped
  /// queries still build one label string per emitted group.
  Status ExecuteInto(QueryResult* result) const;

  /// Runs the query exactly against the kept raw table (Unsupported when
  /// the Db was opened without one).
  StatusOr<QueryResult> ExecuteExact() const;

  const Query& query() const { return query_; }
  std::string ToSql() const { return query_.ToSql(); }
  /// True when Execute() uses the parse-once compiled plan (the built-in
  /// PairwiseHist engine); false when a swapped-in backend answers.
  bool compiled() const { return plan_.has_value(); }

 private:
  friend class Db;
  PreparedQuery() = default;

  const AqpEngine* engine_ = nullptr;    // built-in execution path
  const AqpMethod* backend_ = nullptr;   // set when a backend is active
  const Table* table_ = nullptr;         // exact fallback (may be null)
  Query query_;
  std::optional<CompiledQuery> plan_;    // set iff backend_ == nullptr
};

/// The facade. Movable, not copyable; prepared queries remain valid across
/// moves (internal components have stable addresses).
class Db {
 public:
  Db(Db&&) = default;
  Db& operator=(Db&&) = default;
  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  // ---- Opening ----------------------------------------------------------
  /// Takes ownership of an in-memory table.
  static StatusOr<Db> FromTable(Table table, DbOptions options = {});
  /// Loads a CSV file (header row, inferred types).
  static StatusOr<Db> FromCsv(const std::string& path,
                              DbOptions options = {});
  /// Builds one of the named synthetic datasets (see datagen/datasets.h);
  /// rows == 0 uses the laptop-scale default.
  static StatusOr<Db> FromGenerator(const std::string& name, size_t rows,
                                    uint64_t seed, DbOptions options = {});
  /// Opens a synopsis previously written by Save(): full query capability,
  /// no raw data (exact fallback unavailable).
  static StatusOr<Db> Open(const std::string& path,
                           AqpEngineOptions engine = {});
  /// Same, from an in-memory serialized blob.
  static StatusOr<Db> FromBlob(const std::vector<uint8_t>& blob,
                               AqpEngineOptions engine = {});

  // ---- Persistence (the Fig.-6 serialized form) -------------------------
  Status Save(const std::string& path) const;
  std::vector<uint8_t> ToBlob() const { return synopsis_->Serialize(); }

  // ---- Queries ----------------------------------------------------------
  /// Parses + compiles once; the returned statement re-executes without
  /// re-planning.
  StatusOr<PreparedQuery> Prepare(const std::string& sql) const;
  /// Prepares an already-parsed query.
  StatusOr<PreparedQuery> Prepare(Query query) const;

  /// One-shot approximate execution (parse + plan + run).
  StatusOr<QueryResult> ExecuteSql(const std::string& sql) const;
  StatusOr<QueryResult> Execute(const Query& query) const;

  /// One-shot exact execution against the kept raw table.
  StatusOr<QueryResult> ExecuteExactSql(const std::string& sql) const;
  StatusOr<QueryResult> ExecuteExact(const Query& query) const;

  // ---- Incremental ingestion -------------------------------------------
  /// Folds a new batch (same schema) into every maintained structure: the
  /// synopsis counts, the compressed store (when present) and the kept raw
  /// table. Prepared queries stay valid and see the new data.
  Status Append(const Table& batch);

  // ---- Pluggable AQP backends ------------------------------------------
  /// Routes subsequent Execute/Prepare calls through `backend` instead of
  /// the built-in PairwiseHist engine. Passing nullptr restores the
  /// built-in engine (as does ResetBackend).
  Status SetBackend(std::unique_ptr<AqpMethod> backend);
  void ResetBackend() { backend_.reset(); }
  /// Builds one of the bundled baselines from the kept raw table:
  /// "sampling", "avi" or "spn". Requires keep_table.
  StatusOr<std::unique_ptr<AqpMethod>> MakeBaselineBackend(
      const std::string& kind, size_t sample_size, uint64_t seed = 1) const;
  const AqpMethod* backend() const { return backend_.get(); }

  // ---- Introspection ----------------------------------------------------
  const std::string& name() const { return name_; }
  const PairwiseHist& synopsis() const { return *synopsis_; }
  const AqpEngine& engine() const { return *engine_; }
  /// The kept raw table, or nullptr when opened synopsis-only.
  const Table* table() const { return table_.get(); }
  /// The GreedyGD store, or nullptr when built without compression.
  const CompressedTable* compressed() const { return compressed_.get(); }
  size_t StorageBytes() const { return synopsis_->StorageBytes(); }

 private:
  Db() = default;
  static StatusOr<Db> Build(Table table, const DbOptions& options);
  /// Returns a copy of `batch` with categorical columns re-coded into the
  /// synopsis's fitted dictionaries (batch dictionaries may order the
  /// same strings differently).
  StatusOr<Table> CanonicalizeBatch(const Table& batch) const;

  std::string name_;
  // unique_ptr members keep component addresses stable across Db moves so
  // prepared queries can hold plain pointers.
  std::unique_ptr<PairwiseHist> synopsis_;
  std::unique_ptr<AqpEngine> engine_;
  std::unique_ptr<Table> table_;
  std::unique_ptr<CompressedTable> compressed_;
  std::unique_ptr<AqpMethod> backend_;
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_API_DB_H_
