#include "api/db.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <span>
#include <utility>

#include "baselines/avi_hist.h"
#include "baselines/sampling_aqp.h"
#include "baselines/spn.h"
#include "datagen/datasets.h"
#include "gd/preprocess.h"
#include "query/exact.h"
#include "query/sql_parser.h"
#include "storage/csv.h"
#include "storage/segment.h"

namespace pairwisehist {

namespace {

SegmentedExecOptions MakeExecOptions(const DbOptions& options) {
  SegmentedExecOptions eo;
  eo.engine = options.engine;
  // The top-level knob wins only when actually set; a kAuto default must
  // not clobber an explicitly chosen engine.kernels.
  if (options.kernels != KernelMode::kAuto) {
    eo.engine.kernels = options.kernels;
  }
  eo.exec_threads = options.exec_threads;
  eo.prune = options.prune_segments;
  return eo;
}

}  // namespace

// ---------------------------------------------------------------------------
// PreparedQuery

StatusOr<QueryResult> PreparedQuery::Execute() const {
  if (backend_ != nullptr) return backend_->Execute(query_);
  if (exec_ == nullptr || !plan_.valid()) {
    return Status::Internal("PreparedQuery used before Db::Prepare");
  }
  return exec_->Execute(plan_);
}

Status PreparedQuery::ExecuteInto(QueryResult* result) const {
  if (backend_ != nullptr) {
    PH_ASSIGN_OR_RETURN(*result, backend_->Execute(query_));
    return Status::OK();
  }
  if (exec_ == nullptr || !plan_.valid()) {
    return Status::Internal("PreparedQuery used before Db::Prepare");
  }
  return exec_->ExecuteInto(plan_, result);
}

StatusOr<QueryResult> PreparedQuery::ExecuteExact() const {
  if (table_ == nullptr) {
    return Status::Unsupported(
        "exact execution requires the raw table (Db was opened "
        "synopsis-only or with keep_table = false)");
  }
  return pairwisehist::ExecuteExact(*table_, query_);
}

// ---------------------------------------------------------------------------
// Opening

StatusOr<Db> Db::Build(Table table, const DbOptions& opts) {
  Db db;
  db.name_ = table.name();

  DbOptions options = opts;
  if (options.build_threads != 0) {
    options.synopsis.build_threads = options.build_threads;
  }
  db.append_cfg_ = options.synopsis;
  db.target_segment_rows_ = options.target_segment_rows;
  db.append_mode_ = options.append_mode;
  db.compact_ = options.compact;
  if (options.compact.enabled) {
    db.ledger_ = std::make_shared<FeedbackLedger>();
  }

  if (options.compress) {
    PH_ASSIGN_OR_RETURN(PreprocessedTable pre, Preprocess(table));
    PH_ASSIGN_OR_RETURN(CompressedTable gd,
                        CompressedTable::Compress(pre, options.gd));
    db.compressed_ = std::make_unique<CompressedTable>(std::move(gd));
  }

  PH_ASSIGN_OR_RETURN(
      SegmentedTable st,
      SegmentedTable::Partition(&table, options.target_segment_rows));
  if (options.compress && st.NumSegments() == 1) {
    // Monolithic compressed build: seed the bin edges with the GreedyGD
    // bases (the paper's compression ↔ AQP integration).
    PH_ASSIGN_OR_RETURN(
        PairwiseHist ph,
        PairwiseHist::BuildFromCompressed(*db.compressed_, options.synopsis));
    SegmentMeta meta;
    meta.row_begin = 0;
    meta.row_end = table.NumRows();
    meta.ranges = ComputeColumnRanges(table, 0, table.NumRows());
    db.set_ = std::make_unique<SynopsisSet>(
        SynopsisSet::FromSingle(std::move(ph), std::move(meta)));
  } else {
    PH_ASSIGN_OR_RETURN(SynopsisSet set,
                        SynopsisSet::Build(st, options.synopsis,
                                           options.synopsis.build_threads));
    db.set_ = std::make_unique<SynopsisSet>(std::move(set));
  }

  if (options.keep_table) {
    db.table_ = std::make_unique<Table>(std::move(table));
  }
  SegmentedExecOptions eo = MakeExecOptions(options);
  eo.ledger = db.ledger_;
  db.exec_ = std::make_unique<SegmentedExecutor>(db.set_.get(), eo);
  db.allow_degraded_ = options.allow_degraded;
  return db;
}

StatusOr<Db> Db::FromTable(Table table, DbOptions options) {
  return Build(std::move(table), options);
}

StatusOr<Db> Db::FromCsv(const std::string& path, DbOptions options) {
  PH_ASSIGN_OR_RETURN(Table table, ReadCsv(path));
  return Build(std::move(table), options);
}

StatusOr<Db> Db::FromGenerator(const std::string& name, size_t rows,
                               uint64_t seed, DbOptions options) {
  PH_ASSIGN_OR_RETURN(Table table, MakeDataset(name, rows, seed));
  return Build(std::move(table), options);
}

StatusOr<Db> Db::FromSet(SynopsisSet set, const DbOptions& options) {
  Db db;
  db.set_ = std::make_unique<SynopsisSet>(std::move(set));
  db.compact_ = options.compact;
  if (options.compact.enabled) {
    db.ledger_ = std::make_shared<FeedbackLedger>();
  }
  SegmentedExecOptions eo = MakeExecOptions(options);
  eo.ledger = db.ledger_;
  db.exec_ = std::make_unique<SegmentedExecutor>(db.set_.get(), eo);
  db.name_ = "synopsis";
  db.allow_degraded_ = options.allow_degraded;
  // Recover append build parameters from the newest stored segment so
  // post-Open appends seal segments consistent with the original build
  // (the original DbOptions are not serialized). When the segment sampled
  // every row we cannot tell "sample everything" from "cap above N";
  // recover as 0 (sample everything), which only ever increases accuracy.
  // M is recovered as a fraction of Ns so it keeps scaling with batch
  // size; the sampling seed is not recoverable and stays at its default.
  const PairwiseHist& newest =
      db.set_->synopsis(db.set_->NumSegments() - 1);
  db.append_cfg_.sample_size =
      newest.sample_rows() == newest.total_rows() ? 0
                                                  : newest.sample_rows();
  db.append_cfg_.min_points_override = 0;
  db.append_cfg_.min_points_fraction =
      newest.sample_rows() > 0
          ? static_cast<double>(newest.min_points()) / newest.sample_rows()
          : 0.01;
  db.append_cfg_.alpha = newest.alpha();
  return db;
}

StatusOr<Db> Db::FromBlob(const std::vector<uint8_t>& blob,
                          AqpEngineOptions engine) {
  PH_ASSIGN_OR_RETURN(SynopsisSet set, SynopsisSet::Deserialize(blob));
  DbOptions options;
  options.engine = engine;
  return FromSet(std::move(set), options);
}

StatusOr<Db> Db::Open(const std::string& path, AqpEngineOptions engine) {
  DbOptions options;
  options.engine = engine;
  return Open(path, options);
}

StatusOr<Db> Db::Open(const std::string& path, const DbOptions& options) {
  OpenMode mode = options.open_mode;
  if (mode == OpenMode::kAuto) {
    const char* env = std::getenv("PWH_OPEN");
    if (env != nullptr && std::string(env) == "heap") {
      mode = OpenMode::kHeap;
    } else {
      // "mmap" and unset both take the zero-copy path: PWS3 files map,
      // legacy files heap-convert inside OpenMapped.
      mode = OpenMode::kMmap;
    }
  }
  if (mode == OpenMode::kMmap) {
    PH_ASSIGN_OR_RETURN(SynopsisSet set, SynopsisSet::OpenMapped(path));
    // Mapped PWS3 v2 opens skip eager verification (the open stays
    // O(metadata)); the background scrubber sweeps the payload blocks
    // instead, and a CoW promotion re-verifies whatever it copies from.
    if (options.scrub) {
      set.StartScrub(options.scrub_mb_per_s, options.scrub_repeat_ms);
    }
    return FromSet(std::move(set), options);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::vector<uint8_t> blob((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return Status::DataLoss("error reading '" + path + "'");
  }
  PH_ASSIGN_OR_RETURN(SynopsisSet set,
                      SynopsisSet::Deserialize(std::span<const uint8_t>(blob)));
  return FromSet(std::move(set), options);
}

Status Db::Save(const std::string& path, SaveFormat format) const {
  if (format == SaveFormat::kPws3) return set_->SaveMapped(path);
  std::vector<uint8_t> blob = set_->Serialize();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::InvalidArgument("cannot write '" + path + "'");
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
  if (!out.good()) return Status::DataLoss("error writing '" + path + "'");
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Queries

StatusOr<PreparedQuery> Db::Prepare(const std::string& sql) const {
  PH_ASSIGN_OR_RETURN(Query query, ParseSql(sql));
  return Prepare(std::move(query));
}

StatusOr<PreparedQuery> Db::Prepare(Query query) const {
  PreparedQuery pq;
  pq.table_ = table_.get();
  pq.query_ = std::move(query);
  if (backend_ != nullptr) {
    pq.backend_ = backend_.get();
  } else {
    pq.exec_ = exec_.get();
    PH_ASSIGN_OR_RETURN(pq.plan_, exec_->Prepare(pq.query_));
  }
  return pq;
}

StatusOr<QueryResult> Db::ExecuteSql(const std::string& sql) const {
  PH_ASSIGN_OR_RETURN(PreparedQuery pq, Prepare(sql));
  return pq.Execute();
}

// ---------------------------------------------------------------------------
// Batched queries

StatusOr<PreparedBatch> Db::PrepareBatch(
    const std::vector<std::string>& sqls) const {
  std::vector<Query> queries;
  queries.reserve(sqls.size());
  for (const std::string& sql : sqls) {
    PH_ASSIGN_OR_RETURN(Query q, ParseSql(sql));
    queries.push_back(std::move(q));
  }
  return PrepareBatch(std::move(queries));
}

StatusOr<PreparedBatch> Db::PrepareBatch(std::vector<Query> queries) const {
  if (backend_ != nullptr) {
    return Status::Unsupported(
        "batch execution uses the built-in engine; reset the backend "
        "before PrepareBatch");
  }
  PreparedBatch batch;
  batch.exec_ = exec_.get();
  batch.queries_ = std::move(queries);
  batch.plan_of_query_.reserve(batch.queries_.size());
  // Duplicate-plan dedup: statements with identical normalized SQL share
  // one SegmentedPlan (results are copied at execution time).
  std::vector<std::string> keys;
  for (const Query& q : batch.queries_) {
    const std::string key = q.ToSql();
    size_t idx = keys.size();
    for (size_t i = 0; i < keys.size(); ++i) {
      if (keys[i] == key) {
        idx = i;
        break;
      }
    }
    if (idx == keys.size()) {
      PH_ASSIGN_OR_RETURN(SegmentedPlan plan, exec_->Prepare(q));
      batch.plans_.push_back(std::move(plan));
      keys.push_back(key);
    }
    batch.plan_of_query_.push_back(idx);
  }
  return batch;
}

Status Db::ExecuteBatch(const PreparedQuery* queries, size_t n,
                        std::vector<QueryResult>* results) const {
  results->resize(n);
  // Statements routed through the built-in engine execute as one batch;
  // anything else (backend-prepared) runs its own path individually.
  std::vector<const SegmentedPlan*> plans;
  std::vector<QueryResult*> outs;
  plans.reserve(n);
  outs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (queries[i].compiled()) {
      plans.push_back(&queries[i].plan());
      outs.push_back(&(*results)[i]);
    } else {
      PH_RETURN_IF_ERROR(queries[i].ExecuteInto(&(*results)[i]));
    }
  }
  if (plans.empty()) return Status::OK();
  return exec_->ExecuteBatchInto(plans, outs);
}

Status Db::ExecuteBatch(const std::vector<PreparedQuery>& queries,
                        std::vector<QueryResult>* results) const {
  return ExecuteBatch(queries.data(), queries.size(), results);
}

StatusOr<QueryResult> Db::Execute(const Query& query) const {
  PH_ASSIGN_OR_RETURN(PreparedQuery pq, Prepare(query));
  return pq.Execute();
}

StatusOr<QueryResult> Db::ExecuteExactSql(const std::string& sql) const {
  PH_ASSIGN_OR_RETURN(Query query, ParseSql(sql));
  return ExecuteExact(query);
}

StatusOr<QueryResult> Db::ExecuteExact(const Query& query) const {
  if (table_ == nullptr) {
    return Status::Unsupported(
        "exact execution requires the raw table (Db was opened "
        "synopsis-only or with keep_table = false)");
  }
  return pairwisehist::ExecuteExact(*table_, query);
}

// ---------------------------------------------------------------------------
// Incremental ingestion

StatusOr<Table> Db::CanonicalizeBatch(const Table& batch) const {
  // Re-code against the NEWEST segment's transforms: its dictionaries are
  // the longest prefix-consistent (canonical) ones, and unseen categories
  // extend them append-only so every older segment's codes stay valid.
  const PairwiseHist& newest = set_->synopsis(set_->NumSegments() - 1);
  Table out(batch.name());
  for (size_t c = 0; c < batch.NumColumns(); ++c) {
    const Column& src = batch.column(c);
    const ColumnTransform& tr = newest.transform(c);
    if (src.type() != DataType::kCategorical) {
      out.AddColumn(src);
      continue;
    }
    // Re-code through the fitted dictionary: the batch may have interned
    // the same category strings in a different order (e.g. a CSV where
    // 'fault' appears before 'ok'), and the synopsis/GD transforms map
    // *codes*, not strings. Categories unseen at fit time extend the
    // canonical dictionary; the kMutateBins path clamps them at encode
    // time (update.cc semantics) while segment sealing fits them fresh.
    Column col(src.name(), DataType::kCategorical, src.decimals());
    col.SetDictionary(tr.dictionary);
    for (size_t r = 0; r < src.size(); ++r) {
      if (src.IsNull(r)) {
        col.AppendNull();
        continue;
      }
      PH_ASSIGN_OR_RETURN(
          std::string cat,
          src.CategoryName(static_cast<int64_t>(src.Value(r))));
      col.AppendCategory(cat);
    }
    out.AddColumn(std::move(col));
  }
  return out;
}

std::vector<std::pair<std::string, DataType>> Db::AppendSchema() const {
  const PairwiseHist& newest = set_->synopsis(set_->NumSegments() - 1);
  std::vector<std::pair<std::string, DataType>> schema;
  schema.reserve(newest.num_columns());
  for (size_t c = 0; c < newest.num_columns(); ++c) {
    const ColumnTransform& tr = newest.transform(c);
    schema.emplace_back(tr.name, tr.type);
  }
  return schema;
}

Status Db::ValidateAppendSchema(const Table& batch) const {
  const PairwiseHist& newest = set_->synopsis(set_->NumSegments() - 1);
  const size_t d = newest.num_columns();
  if (batch.NumColumns() != d) {
    return Status::InvalidArgument(
        "Append: batch has " + std::to_string(batch.NumColumns()) +
        " columns, synopsis has " + std::to_string(d));
  }
  for (size_t c = 0; c < d; ++c) {
    const Column& col = batch.column(c);
    const ColumnTransform& tr = newest.transform(c);
    if (col.name() != tr.name || col.type() != tr.type) {
      return Status::InvalidArgument(
          "Append: column " + std::to_string(c) + " is '" + col.name() +
          "' (" + DataTypeName(col.type()) + "), synopsis expects '" +
          tr.name + "' (" + DataTypeName(tr.type) + ")");
    }
  }
  return Status::OK();
}

Status Db::Append(const Table& batch) {
  // Validate the whole schema up front, then canonicalize, so that by the
  // time any component is mutated the batch is known-applicable: a late
  // failure would leave synopsis, compressed store and raw table counting
  // different rows with no way to roll back.
  const size_t last = set_->NumSegments() - 1;
  PH_RETURN_IF_ERROR(ValidateAppendSchema(batch));
  if (batch.NumRows() == 0) return Status::OK();
  PH_ASSIGN_OR_RETURN(Table canonical, CanonicalizeBatch(batch));

  if (append_mode_ == AppendMode::kMutateBins) {
    // The paper's in-place bin mutation (kept for compatibility; accuracy
    // drifts as appended data departs from the fitted bin edges).
    PH_RETURN_IF_ERROR(
        set_->mutable_synopsis(last)->UpdateFromTable(canonical));
    set_->ExtendLastMeta(canonical);
  } else {
    // Seal the batch as fresh segments with newly fitted bin edges;
    // SealSegments is all-or-nothing, so a build failure leaves every
    // maintained structure untouched.
    PH_ASSIGN_OR_RETURN(
        SegmentedTable st,
        SegmentedTable::Partition(&canonical, target_segment_rows_));
    PH_RETURN_IF_ERROR(set_->SealSegments(st, append_cfg_));
    PH_RETURN_IF_ERROR(exec_->Refresh());
  }

  if (compressed_ != nullptr) {
    PH_ASSIGN_OR_RETURN(PreprocessedTable pre,
                        ApplyTransforms(canonical, compressed_->transforms()));
    PH_RETURN_IF_ERROR(compressed_->Append(pre));
  }
  if (table_ != nullptr) {
    PH_RETURN_IF_ERROR(AppendTableRows(table_.get(), canonical));
  }
  if (compact_.enabled && append_mode_ == AppendMode::kSealSegment) {
    // Drain eligible compactions right away (Append is already the
    // exclusive writer). Bounded: one Append seals O(1) segments, so at
    // most a few merges cascade; the cap only guards pathological configs.
    for (int step = 0; step < 8; ++step) {
      PH_ASSIGN_OR_RETURN(bool did, CompactOnce());
      if (!did) break;
    }
  }
  return Status::OK();
}

StatusOr<Db> Db::WithAppended(const Table& batch) const {
  if (backend_ != nullptr) {
    return Status::Unsupported(
        "WithAppended snapshots use the built-in engine; reset the backend "
        "first");
  }
  if (compressed_ != nullptr) {
    return Status::Unsupported(
        "WithAppended: the compressed store is single-owner; use Append");
  }
  if (append_mode_ == AppendMode::kMutateBins) {
    return Status::Unsupported(
        "WithAppended requires AppendMode::kSealSegment (snapshot sharing "
        "relies on sealed segments staying immutable)");
  }
  PH_RETURN_IF_ERROR(ValidateAppendSchema(batch));

  Db out;
  out.name_ = name_;
  out.append_cfg_ = append_cfg_;
  out.target_segment_rows_ = target_segment_rows_;
  out.append_mode_ = append_mode_;
  out.allow_degraded_ = allow_degraded_;
  out.compact_ = compact_;
  out.ledger_ = ledger_;  // shared: feedback accumulates across snapshots
  if (batch.NumRows() == 0) {
    out.set_ = std::make_unique<SynopsisSet>(set_->Share());
    if (table_ != nullptr) out.table_ = std::make_unique<Table>(*table_);
  } else {
    PH_ASSIGN_OR_RETURN(Table canonical, CanonicalizeBatch(batch));
    PH_ASSIGN_OR_RETURN(
        SegmentedTable st,
        SegmentedTable::Partition(&canonical, target_segment_rows_));
    PH_ASSIGN_OR_RETURN(SynopsisSet set, set_->WithSealed(st, append_cfg_));
    out.set_ = std::make_unique<SynopsisSet>(std::move(set));
    if (table_ != nullptr) {
      out.table_ = std::make_unique<Table>(*table_);
      PH_RETURN_IF_ERROR(AppendTableRows(out.table_.get(), canonical));
    }
  }
  out.exec_ = std::make_unique<SegmentedExecutor>(out.set_.get(),
                                                  exec_->options());
  return out;
}

StatusOr<Db> Db::WithoutQuarantined() const {
  if (!has_quarantine()) {
    return Status::InvalidArgument(
        "WithoutQuarantined: no segment is quarantined");
  }
  SynopsisSet healthy = set_->ShareHealthy();
  if (healthy.NumSegments() == 0) {
    return Status::DataLoss(
        "every segment is quarantined; nothing left to serve");
  }
  Db out;
  out.name_ = name_;
  out.append_cfg_ = append_cfg_;
  out.target_segment_rows_ = target_segment_rows_;
  out.append_mode_ = append_mode_;
  out.allow_degraded_ = allow_degraded_;
  out.compact_ = compact_;
  out.ledger_ = ledger_;
  out.set_ = std::make_unique<SynopsisSet>(std::move(healthy));
  out.exec_ = std::make_unique<SegmentedExecutor>(out.set_.get(),
                                                  exec_->options());
  return out;
}

// ---------------------------------------------------------------------------
// Segment lifecycle: tiered compaction + error-driven refit

std::optional<CompactionSpec> Db::PickCompactionSpec() const {
  if (!compact_.enabled) return std::nullopt;
  auto rebuildable = [this](uint64_t rb, uint64_t re) {
    return table_ != nullptr && rb < re && re <= table_->NumRows();
  };
  return PickCompaction(*set_, compact_, ledger_.get(), rebuildable);
}

StatusOr<CompactedRun> Db::BuildCompaction(const CompactionSpec& spec) const {
  if (table_ == nullptr) {
    return Status::Unsupported(
        "BuildCompaction requires the kept raw table (or pass the rows "
        "explicitly)");
  }
  if (spec.row_begin >= spec.row_end ||
      spec.row_end > table_->NumRows()) {
    return Status::InvalidArgument(
        "BuildCompaction: rows [" + std::to_string(spec.row_begin) + ", " +
        std::to_string(spec.row_end) + ") outside the kept table");
  }
  Table rows = table_->Slice(spec.row_begin, spec.row_end);
  return BuildCompaction(spec, rows);
}

StatusOr<CompactedRun> Db::BuildCompaction(const CompactionSpec& spec,
                                           const Table& rows) const {
  if (spec.row_begin >= spec.row_end ||
      rows.NumRows() != spec.row_end - spec.row_begin) {
    return Status::InvalidArgument(
        "BuildCompaction: got " + std::to_string(rows.NumRows()) +
        " rows for range [" + std::to_string(spec.row_begin) + ", " +
        std::to_string(spec.row_end) + ")");
  }
  // Re-fit with fresh bin edges over the whole merged range. The seed is a
  // pure function of (build seed, row range) so replaying a recorded spec
  // rebuilds a bit-identical synopsis; the error-driven budget boost was
  // captured in the spec at pick time for the same reason.
  PairwiseHistConfig cfg = append_cfg_;
  cfg.min_points_override = 0;
  const double boost = std::max(1.0, spec.budget_boost);
  cfg.min_points_fraction =
      std::max(compact_.min_points_floor, cfg.min_points_fraction / boost);
  cfg.seed = CompactionSeed(append_cfg_.seed, spec.row_begin, spec.row_end);
  PH_ASSIGN_OR_RETURN(PairwiseHist ph,
                      PairwiseHist::BuildFromTable(rows, cfg));
  CompactedRun run;
  run.synopsis = std::make_shared<PairwiseHist>(std::move(ph));
  run.meta.row_begin = spec.row_begin;
  run.meta.row_end = spec.row_end;
  run.meta.ranges = ComputeColumnRanges(rows, 0, rows.NumRows());
  return run;
}

StatusOr<bool> Db::CompactOnce(CompactionSpec* applied,
                               const CompactionSpec* spec_in) {
  std::optional<CompactionSpec> spec;
  if (spec_in != nullptr) {
    spec = *spec_in;
  } else {
    spec = PickCompactionSpec();
  }
  if (!spec.has_value()) return false;
  PH_ASSIGN_OR_RETURN(auto run_idx,
                      set_->FindRun(spec->row_begin, spec->row_end));
  PH_ASSIGN_OR_RETURN(CompactedRun run, BuildCompaction(*spec));
  PH_RETURN_IF_ERROR(set_->ReplaceRun(run_idx.first, run_idx.second,
                                      std::move(run.synopsis),
                                      std::move(run.meta)));
  PH_RETURN_IF_ERROR(exec_->Refresh());
  if (ledger_ != nullptr) ledger_->Forget(spec->row_begin, spec->row_end);
  if (applied != nullptr) *applied = *spec;
  return true;
}

StatusOr<size_t> Db::Compact() {
  size_t applied = 0;
  // The drain converges: every step strictly reduces the segment count,
  // so the cap is only a guard against pathological configurations.
  for (int step = 0; step < 64; ++step) {
    PH_ASSIGN_OR_RETURN(bool did, CompactOnce());
    if (!did) break;
    ++applied;
  }
  return applied;
}

StatusOr<Db> Db::WithCompactionApplied(const CompactionSpec& spec,
                                       CompactedRun run) const {
  if (backend_ != nullptr) {
    return Status::Unsupported(
        "WithCompactionApplied snapshots use the built-in engine; reset "
        "the backend first");
  }
  PH_ASSIGN_OR_RETURN(auto run_idx,
                      set_->FindRun(spec.row_begin, spec.row_end));
  PH_ASSIGN_OR_RETURN(
      SynopsisSet set,
      set_->WithReplacedRun(run_idx.first, run_idx.second,
                            std::move(run.synopsis), std::move(run.meta)));
  Db out;
  out.name_ = name_;
  out.append_cfg_ = append_cfg_;
  out.target_segment_rows_ = target_segment_rows_;
  out.append_mode_ = append_mode_;
  out.allow_degraded_ = allow_degraded_;
  out.compact_ = compact_;
  out.ledger_ = ledger_;
  out.set_ = std::make_unique<SynopsisSet>(std::move(set));
  if (table_ != nullptr) out.table_ = std::make_unique<Table>(*table_);
  out.exec_ = std::make_unique<SegmentedExecutor>(out.set_.get(),
                                                  exec_->options());
  if (ledger_ != nullptr) ledger_->Forget(spec.row_begin, spec.row_end);
  return out;
}

// ---------------------------------------------------------------------------
// Backends

Status Db::SetBackend(std::unique_ptr<AqpMethod> backend) {
  backend_ = std::move(backend);
  return Status::OK();
}

StatusOr<std::unique_ptr<AqpMethod>> Db::MakeBaselineBackend(
    const std::string& kind, size_t sample_size, uint64_t seed) const {
  if (table_ == nullptr) {
    return Status::Unsupported(
        "baseline backends train on the raw table; this Db has none");
  }
  if (kind == "sampling") {
    return std::unique_ptr<AqpMethod>(
        std::make_unique<SamplingAqp>(*table_, sample_size, seed));
  }
  if (kind == "avi") {
    return std::unique_ptr<AqpMethod>(std::make_unique<AviHistogram>(
        *table_, sample_size, /*buckets=*/64, seed));
  }
  if (kind == "spn") {
    SpnBaseline::Config cfg;
    cfg.sample_size = sample_size;
    return std::unique_ptr<AqpMethod>(
        std::make_unique<SpnBaseline>(*table_, cfg));
  }
  return Status::NotFound("unknown backend kind '" + kind +
                          "' (try: sampling, avi, spn)");
}

}  // namespace pairwisehist
