// Batched multi-query execution over a segmented synopsis.
//
// Interactive dashboards issue dozens of simultaneous aggregates over the
// same table; executed one at a time, each re-pays coverage, probability
// and Eq.-29 weighting work that is identical for every query sharing an
// aggregation grid and predicate set. A PreparedBatch carries many
// statements prepared together: execution groups their per-segment plans
// by grid (AqpEngine::ExecuteBatchInto), computes each distinct predicate
// set's pipeline once, weights all of them with a single batched kernel
// call over a plan-major SoA block, and runs only the cheap per-query
// aggregation individually. Duplicate statements (same normalized SQL)
// share one plan outright.
//
// The safety rail: batch results are BIT-IDENTICAL to executing every
// statement on its own with PreparedQuery::ExecuteInto — on every kernel
// tier, for any exec_threads, before and after Db::Append (asserted by
// tests/batch_test.cc).
#ifndef PAIRWISEHIST_QUERY_BATCH_EXEC_H_
#define PAIRWISEHIST_QUERY_BATCH_EXEC_H_

#include <vector>

#include "common/status.h"
#include "query/ast.h"
#include "query/segment_exec.h"

namespace pairwisehist {

class Db;

/// A set of SQL statements prepared together against one Db (see
/// Db::PrepareBatch): planned once per segment like PreparedQuery, with
/// duplicate statements deduplicated onto a shared plan. Must not outlive
/// the Db; Db::Append keeps batches valid (plans for newly sealed segments
/// compile lazily on first execution, exactly like PreparedQuery).
class PreparedBatch {
 public:
  PreparedBatch() = default;

  /// Number of statements in the batch (including duplicates).
  size_t size() const { return plan_of_query_.size(); }
  /// Number of distinct plans after duplicate-statement dedup.
  size_t NumDistinctPlans() const { return plans_.size(); }
  /// Statement i as parsed.
  const Query& query(size_t i) const { return queries_[i]; }
  bool valid() const { return exec_ != nullptr; }

  /// Executes every statement as one batch. `results` is resized to
  /// size(); results[i] is bit-identical to executing statement i alone.
  Status ExecuteInto(std::vector<QueryResult>* results) const;
  StatusOr<std::vector<QueryResult>> Execute() const;

 private:
  friend class Db;

  const SegmentedExecutor* exec_ = nullptr;
  std::vector<SegmentedPlan> plans_;   ///< distinct plans
  std::vector<size_t> plan_of_query_;  ///< statement i -> index in plans_
  std::vector<Query> queries_;         ///< statements in submission order
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_QUERY_BATCH_EXEC_H_
