#include "query/ast.h"

#include <algorithm>
#include <cstdio>

namespace pairwisehist {

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
    case AggFunc::kMedian:
      return "MEDIAN";
    case AggFunc::kVar:
      return "VAR";
  }
  return "?";
}

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
  }
  return "?";
}

namespace {

void CollectColumns(const PredicateNode& node, std::vector<std::string>* out) {
  if (node.type == PredicateNode::Type::kCondition) {
    if (std::find(out->begin(), out->end(), node.condition.column) ==
        out->end()) {
      out->push_back(node.condition.column);
    }
    return;
  }
  for (const auto& child : node.children) CollectColumns(child, out);
}

std::string FormatNumber(double v) {
  char buf[64];
  if (v == static_cast<long long>(v) && std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", v);
  }
  return buf;
}

void NodeToSql(const PredicateNode& node, bool parenthesize,
               std::string* out) {
  if (node.type == PredicateNode::Type::kCondition) {
    const Condition& c = node.condition;
    *out += c.column;
    *out += ' ';
    *out += CmpOpName(c.op);
    *out += ' ';
    if (c.is_string) {
      *out += '\'';
      *out += c.text_value;
      *out += '\'';
    } else {
      *out += FormatNumber(c.value);
    }
    return;
  }
  const char* joiner =
      node.type == PredicateNode::Type::kAnd ? " AND " : " OR ";
  if (parenthesize) *out += '(';
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i) *out += joiner;
    const PredicateNode& child = node.children[i];
    bool child_parens = child.type != PredicateNode::Type::kCondition;
    NodeToSql(child, child_parens, out);
  }
  if (parenthesize) *out += ')';
}

}  // namespace

std::vector<std::string> Query::PredicateColumns() const {
  std::vector<std::string> cols;
  if (where.has_value()) CollectColumns(*where, &cols);
  return cols;
}

bool Query::SingleColumn() const {
  std::vector<std::string> cols = PredicateColumns();
  if (count_star) return cols.size() <= 1;
  for (const auto& c : cols) {
    if (c != agg_column) return false;
  }
  return true;
}

std::string Query::ToSql() const {
  std::string sql = "SELECT ";
  sql += AggFuncName(func);
  sql += '(';
  sql += count_star ? "*" : agg_column;
  sql += ") FROM ";
  sql += table.empty() ? "t" : table;
  if (where.has_value()) {
    sql += " WHERE ";
    NodeToSql(*where, /*parenthesize=*/false, &sql);
  }
  if (!group_by.empty()) {
    sql += " GROUP BY ";
    sql += group_by;
  }
  sql += ';';
  return sql;
}

}  // namespace pairwisehist
