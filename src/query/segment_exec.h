// Cross-segment query execution over a SynopsisSet.
//
// One AqpEngine per sealed segment; a query is compiled per segment (each
// segment has its own code domain), pruned against per-segment min/max
// ranges, executed as mergeable partials — in parallel on a persistent
// work-stealing pool — and merged serially in segment order, so results
// are bit-identical for every exec_threads value. A one-segment set
// short-circuits to the plain engine path and behaves exactly like the
// monolithic synopsis (including the zero-allocation fast path).
//
// Plans extend lazily: Db::Append seals new segments, and the first
// execution after an append compiles the missing per-segment plans under
// the plan's own mutex. The steady-state check is one acquire load.
#ifndef PAIRWISEHIST_QUERY_SEGMENT_EXEC_H_
#define PAIRWISEHIST_QUERY_SEGMENT_EXEC_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "common/object_pool.h"
#include "common/parallel.h"
#include "common/status.h"
#include "core/synopsis_set.h"
#include "query/engine.h"
#include "query/partial_agg.h"
#include "storage/compactor.h"

namespace pairwisehist {

/// Knobs for cross-segment execution.
struct SegmentedExecOptions {
  /// Per-segment engine refinement toggles.
  AqpEngineOptions engine;
  /// Fan-out threads for multi-segment execution: 0 = one per hardware
  /// core, 1 = serial. Results are identical for any value.
  unsigned exec_threads = 0;
  /// Skip segments whose per-column min/max provably cannot satisfy the
  /// WHERE clause.
  bool prune = true;
  /// When set, multi-segment scalar executions record each segment's
  /// observed relative CI width here (the compaction picker's error
  /// signal). Shared across copy-on-append/compact snapshots.
  std::shared_ptr<FeedbackLedger> ledger;
};

/// A query prepared against every segment of a SynopsisSet. Movable;
/// thread-safe for concurrent execution. Internally mutable: executions
/// after an append compile the plans for new segments on first use.
class SegmentedPlan {
 public:
  SegmentedPlan() = default;
  const Query& query() const;
  /// Segments planned so far (grows lazily after appends).
  size_t PlannedSegments() const;
  /// Segments the planner proved unable to match (of those planned).
  size_t PrunedSegments() const;
  bool valid() const { return state_ != nullptr; }

 private:
  friend class SegmentedExecutor;
  struct State {
    Query query;
    std::mutex mu;                     // guards extension
    std::atomic<size_t> planned{0};    // release-published plan count
    /// SynopsisSet::meta_generation() the skip flags were computed at; a
    /// kMutateBins append widens segment ranges without growing the set,
    /// so prune flags re-validate against this, not just the count.
    std::atomic<uint64_t> meta_gen{0};
    /// SynopsisSet::structure_generation() the plans were compiled at. A
    /// compaction REPLACES segments (indices shift, engines rebuild), so
    /// on mismatch every plan — not just the tail — recompiles. This is
    /// what keeps PreparedQuery/PreparedBatch valid across Db::Compact.
    std::atomic<uint64_t> structure_gen{0};
    std::vector<CompiledQuery> plans;  // one per segment
    std::vector<uint8_t> skip;         // 1 = provably no match
  };
  std::shared_ptr<State> state_;
};

class SegmentedExecutor {
 public:
  /// The set must outlive the executor. Call Refresh() after the set gains
  /// segments (not concurrently with execution).
  SegmentedExecutor(const SynopsisSet* set, SegmentedExecOptions options);
  ~SegmentedExecutor();
  SegmentedExecutor(SegmentedExecutor&&) noexcept;
  SegmentedExecutor& operator=(SegmentedExecutor&&) noexcept;

  /// Creates engines for segments appended since construction/last call.
  /// After a compaction (structure_generation changed) EVERY engine is
  /// rebuilt: replaced segments shifted the index space.
  Status Refresh();

  /// Compiles `query` against every current segment (later segments are
  /// compiled lazily at execution time).
  StatusOr<SegmentedPlan> Prepare(const Query& query) const;

  /// Executes: single segment delegates to the plain engine; multiple
  /// segments fan partials out over the pool and merge deterministically.
  Status ExecuteInto(const SegmentedPlan& plan, QueryResult* result) const;
  StatusOr<QueryResult> Execute(const SegmentedPlan& plan) const;

  /// Batch execution (implemented in batch_exec.cc): plans execute as one
  /// batch per segment through AqpEngine::ExecuteBatchInto /
  /// ExecutePartialBatchInto, so grid-sharing plans amortize their
  /// coverage + weighting within every segment. Multiple segments fan the
  /// batch × segment partial tasks over the pool and merge each query
  /// serially in segment order; results[i] is bit-identical to
  /// ExecuteInto(*plans[i], results[i]) for any exec_threads. Plans extend
  /// lazily after appends exactly like single-plan execution.
  Status ExecuteBatchInto(const std::vector<const SegmentedPlan*>& plans,
                          const std::vector<QueryResult*>& results) const;

  /// Contiguous-array overload: executes plans[i] into results[i] for
  /// i < n with no caller-side pointer marshalling — all per-call
  /// bookkeeping lives in pooled scratch, so steady-state batches
  /// allocate nothing.
  Status ExecuteBatchInto(const SegmentedPlan* plans, QueryResult* results,
                          size_t n) const;

  size_t NumSegments() const { return engines_.size(); }
  const AqpEngine& engine(size_t i) const { return *engines_[i]; }
  const SynopsisSet& set() const { return *set_; }
  const SegmentedExecOptions& options() const { return options_; }

 private:
  /// Compiles plans (and prune flags) for segments in [planned, current);
  /// after a compaction, discards and recompiles the whole plan set.
  Status EnsurePlans(SegmentedPlan::State* st) const;

  /// Folds one scalar execution's per-segment partials into the feedback
  /// ledger (no-op unless options_.ledger is set).
  void RecordFeedback(const SegmentedPlan::State& st,
                      const std::vector<PartialResult>& parts) const;

  /// Per-call bookkeeping for batch execution, leased from a pool so
  /// repeated batches reuse warmed capacity and concurrent const callers
  /// never share mutable state. Vectors only ever grow; stale partial
  /// groups are cleared on reuse (the merge reads every slot).
  struct BatchExecScratch {
    std::vector<const SegmentedPlan*> plan_ptrs;  // contiguous overload
    std::vector<QueryResult*> result_ptrs;        // contiguous overload
    std::vector<const CompiledQuery*> cps;        // single-segment batch
    std::vector<QueryResult*> outs;               // single-segment batch
    std::vector<std::vector<PartialResult>> parts;  // [query][segment]
    std::vector<std::vector<const CompiledQuery*>> task_cps;  // per segment
    std::vector<std::vector<PartialResult*>> task_outs;       // per segment
    std::vector<Status> statuses;                             // per segment
  };
  Status ExecuteBatchImpl(const SegmentedPlan* const* plans,
                          QueryResult* const* results, size_t n,
                          BatchExecScratch& scratch) const;

  const SynopsisSet* set_;
  SegmentedExecOptions options_;
  std::vector<std::unique_ptr<AqpEngine>> engines_;
  /// The set structure_generation() engines_ was built against.
  uint64_t structure_seen_ = 0;
  /// Persistent fan-out pool; created by the constructor / Refresh once
  /// the set holds more than one segment (and exec_threads != 1).
  std::unique_ptr<TaskPool> pool_;
  /// Batch scratch pool (unique_ptr keeps the executor movable).
  std::unique_ptr<ObjectPool<BatchExecScratch>> batch_pool_ =
      std::make_unique<ObjectPool<BatchExecScratch>>();
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_QUERY_SEGMENT_EXEC_H_
