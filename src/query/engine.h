// The PairwiseHist AQP query engine (paper Section 5).
//
// Pipeline per Fig. 7: parse SQL → map literals into the GD code domain →
// normalize the predicate tree with same-column consolidation (delayed
// transformation) → per-leaf coverage over the relevant pairwise histogram
// dimension with Theorem-2 bounds → combine AND/OR probabilities under
// conditional independence (Eq. 28) → bin weightings + Eq. 29 sampling
// widening → Table-3 aggregation with lower/upper bounds → map results back
// to the raw value domain.
//
// Three engine refinements beyond the paper's literal formulas (each
// toggleable for the ablation benches, all on by default):
//  * use_pair_grid — aggregate on the refined e(i|j) grid of the most
//    informative predicate pair instead of projecting every predicate onto
//    the coarse 1-d grid. This is what the per-pair v±/c/u metadata the
//    paper stores (Fig. 4/6) exists for; without it, cross-column
//    aggregates collapse to 1-d bin midpoints.
//  * clip_agg_values — when the aggregation column itself carries a
//    conjunctive predicate, restrict each bin's value interval to the
//    predicate's intersection with [v−, v+] under the within-bin
//    uniformity model before computing midpoints/extrema.
//  * var_within_bin — add the within-bin uniform variance term
//    (v+ − v−)²/12 to VAR (Table 3's formula alone sees only between-bin
//    variance and reports 0 for single-bin columns).
#ifndef PAIRWISEHIST_QUERY_ENGINE_H_
#define PAIRWISEHIST_QUERY_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/object_pool.h"
#include "common/simd.h"
#include "common/status.h"
#include "core/pairwise_hist.h"
#include "query/ast.h"
#include "query/coverage.h"
#include "query/partial_agg.h"

namespace pairwisehist {

class ExecArena;  // query/exec_scratch.h

/// Per-bin weightings over the chosen aggregation grid, with bounds
/// (w, w−, w+ in the paper's notation).
struct Weightings {
  std::vector<double> w;
  std::vector<double> lo;
  std::vector<double> hi;

  double Total() const;
  double TotalLo() const;
  double TotalHi() const;
};

/// Engine behaviour toggles (see the header comment).
struct AqpEngineOptions {
  bool use_pair_grid = true;
  bool clip_agg_values = true;
  bool var_within_bin = true;
  /// Zero-allocation execution fast path: pooled scratch arena, cell
  /// prefix index and interval-localized coverage. Produces results
  /// identical to the reference path (asserted by the equivalence suite);
  /// off switches Execute back to the straightforward reference
  /// implementation.
  bool use_fast_path = true;
  /// SIMD kernel tier for the execution loops (see common/simd.h):
  /// runtime-detected widest by default, kScalar forces the scalar
  /// kernels. Per-tier results are deterministic (bit-identical across
  /// runs and exec_threads); scalar and SIMD tiers agree to 1e-9 relative
  /// (lane reassociation only). Both the fast path and the reference path
  /// use the same tier, preserving their exact equivalence.
  KernelMode kernels = KernelMode::kAuto;
};

/// Normalized predicate tree: leaves are consolidated (column,
/// interval-set) pairs after the paper's delayed transformation; AND/OR
/// structure is preserved for cross-column combination (Eq. 28).
struct NormalizedPredicate {
  enum class Type { kLeaf, kAnd, kOr };
  Type type = Type::kLeaf;
  size_t column = 0;     // leaf
  IntervalSet intervals; // leaf
  std::vector<NormalizedPredicate> children;
  /// Fast-path compile-time cache for cross-column leaves: grid bin →
  /// refined aggregation bin of this leaf's pairwise histogram (empty for
  /// leaves that don't transfer across pairs). Filled by AqpEngine::Compile.
  std::vector<uint32_t> g2ta;
};

/// The aggregation grid chosen for one query: either the 1-d histogram of
/// the aggregation column or the refined agg dimension of one pair.
struct AggGrid {
  const HistogramDim* dim = nullptr;
  PairView pair;               // valid when dim is a pair agg dimension
  size_t pair_pred_col = ~size_t{0};  // leaf column backing `pair`
  bool IsPair() const { return pair.valid(); }
};

/// A query compiled against one synopsis: the parsed AST plus everything
/// the parse → literal-mapping → normalization → grid-selection stages of
/// Fig. 7 produce, captured once so repeated execution runs only coverage
/// + weighting + aggregation. Obtained from AqpEngine::Compile (or
/// Db::Prepare); executed with AqpEngine::Execute(plan).
///
/// The plan holds pointers into the synopsis it was compiled against, so
/// it must not outlive that synopsis. Incremental PairwiseHist::Update
/// keeps existing plans valid (bin structure is stable); rebuilding or
/// deserializing a new synopsis does not.
class CompiledQuery {
 public:
  CompiledQuery() = default;

  const Query& query() const { return query_; }
  /// Aggregation column index resolved against the synopsis.
  size_t agg_column() const { return agg_col_; }
  /// True when execution aggregates on a refined pairwise grid rather
  /// than the 1-d histogram.
  bool uses_pair_grid() const { return grid_.IsPair(); }
  bool grouped() const { return group_values_ > 0; }

 private:
  friend class AqpEngine;

  Query query_;
  size_t agg_col_ = 0;
  std::optional<NormalizedPredicate> where_;  // normalized WHERE clause
  bool has_or_ = false;
  AggGrid grid_;
  /// Consolidated same-column clip on the aggregation column (copied out
  /// of the normalized tree at compile time; scalar queries only).
  std::optional<IntervalSet> agg_clip_;
  bool single_column_ = false;
  // GROUP BY state: group_values_ == 0 means not grouped.
  size_t group_col_ = 0;
  uint64_t group_values_ = 0;
  /// Fast-path transfer map for the per-value GROUP BY leaf (same shape as
  /// NormalizedPredicate::g2ta; empty when unused).
  std::vector<uint32_t> group_g2ta_;
};

/// Executes queries against a PairwiseHist synopsis. Apart from the
/// synopsis pointer the only state is a pool of reusable execution scratch
/// arenas; safe for concurrent use.
class AqpEngine {
 public:
  /// The synopsis must outlive the engine.
  explicit AqpEngine(const PairwiseHist* synopsis,
                     AqpEngineOptions options = {});
  ~AqpEngine();
  AqpEngine(AqpEngine&&) noexcept;
  AqpEngine& operator=(AqpEngine&&) noexcept;

  /// Compiles a parsed query: predicate normalization with same-column
  /// consolidation, aggregation-column resolution, grid selection. The
  /// returned plan can be executed any number of times.
  StatusOr<CompiledQuery> Compile(const Query& query) const;

  /// Executes a compiled plan (coverage + weighting + aggregation only).
  StatusOr<QueryResult> Execute(const CompiledQuery& plan) const;

  /// Executes a compiled plan into a caller-owned result, reusing its
  /// group storage. With a warm result object and the fast path enabled,
  /// steady-state scalar (non-GROUP-BY) execution performs zero heap
  /// allocations; grouped execution still builds per-group label strings.
  Status ExecuteInto(const CompiledQuery& plan, QueryResult* result) const;

  /// Per-segment execution for cross-segment merging: runs the same
  /// coverage + weighting pipeline as ExecuteInto but emits mergeable
  /// sufficient statistics (see partial_agg.h) instead of finalized
  /// AggResults. One PartialResult group per emitted label ("" for scalar
  /// queries); grouped execution omits groups with no estimated mass.
  Status ExecutePartialInto(const CompiledQuery& plan,
                            PartialResult* out) const;

  // ---- Batch execution --------------------------------------------------
  // Many plans in one call: scalar plans are grouped by aggregation grid
  // and coverage/weighting is computed once per distinct normalized
  // predicate set, the distinct weight tables living in one plan-major SoA
  // block filled by a single batched Eq.-29 kernel call; only the cheap
  // Table-3 aggregation then runs per plan (with duplicate (func, flags)
  // plans answered by copy). Grouped queries and predicate-free COUNT(*)
  // fall back to the single-query path inside the batch. Results[i] is
  // BIT-IDENTICAL to calling ExecuteInto(*plans[i], results[i]) in a loop
  // — on every kernel tier (asserted by tests/batch_test.cc).

  /// Compiles every query (same as Compile in a loop; convenience for
  /// batch callers).
  StatusOr<std::vector<CompiledQuery>> CompileBatch(
      const std::vector<Query>& queries) const;

  /// Executes a batch of compiled plans into caller-owned results.
  /// `plans.size()` must equal `results.size()`; every plan must have been
  /// compiled by this engine.
  Status ExecuteBatchInto(const std::vector<const CompiledQuery*>& plans,
                          const std::vector<QueryResult*>& results) const;

  /// Batched counterpart of ExecutePartialInto (the per-segment entry the
  /// cross-segment batch fan-out uses). Same sharing as ExecuteBatchInto;
  /// out[i] is bit-identical to ExecutePartialInto(*plans[i], out[i]).
  Status ExecutePartialBatchInto(const std::vector<const CompiledQuery*>& plans,
                                 const std::vector<PartialResult*>& out) const;

  /// Executes a parsed query (Compile + Execute).
  StatusOr<QueryResult> Execute(const Query& query) const;

  /// Parses and executes a SQL string. This is the engine's only ParseSql
  /// call site; everything funnels through Compile/Execute.
  StatusOr<QueryResult> ExecuteSql(const std::string& sql) const;

  /// Exposed for tests and ablations: weightings for `query`'s predicate
  /// over the 1-d histogram of `agg_col` (the paper's Eq. 28 layout).
  StatusOr<Weightings> ComputeWeightings(size_t agg_col,
                                         const Query& query) const;

  const PairwiseHist& synopsis() const { return *ph_; }
  const AqpEngineOptions& options() const { return options_; }

 private:
  using Node = NormalizedPredicate;
  using Grid = AggGrid;

  /// Per-bin satisfaction probabilities with bounds, on some grid.
  struct Prob {
    std::vector<double> p, lo, hi;
  };

  /// Reusable per-execution scratch (arena + batch bookkeeping); leased
  /// from a per-engine pool so concurrent executions never share one.
  struct ExecScratch;
  using ScratchPool = ObjectPool<ExecScratch>;
  /// RAII lease of one ExecScratch (allocates only when the pool is dry).
  struct ScratchLease;

  StatusOr<Node> Normalize(const PredicateNode& node) const;
  static bool HasOr(const Node& node);
  static void CollectLeaves(const Node& node,
                            std::vector<const Node*>* leaves);
  /// Returns the consolidated interval set of a root-level conjunctive
  /// leaf on `agg_col`, or nullptr.
  static const IntervalSet* FindAggClip(const Node& node, size_t agg_col);

  Grid ChooseGrid(size_t agg_col, const Node* root, bool has_or) const;
  Prob EvalNode(size_t agg_col, const Node& node, const Grid& grid) const;
  Prob LeafProb(size_t agg_col, const Node& leaf, const Grid& grid) const;
  Weightings WeightsFromProb(const HistogramDim& dim,
                             const Prob& prob) const;
  /// Reference-path probabilities + Eq. 29 weights for a plan, optionally
  /// conjoined with the per-value GROUP BY leaf (shared by ExecuteScalar
  /// and the reference branch of ExecutePartialScalar).
  Weightings ComputeWeightsRef(const CompiledQuery& plan,
                               const Node* extra_group_leaf) const;

  /// Fast-path compile support: grid bin → refined agg bin of the
  /// (agg_col, col) pair (empty when the leaf doesn't transfer).
  std::vector<uint32_t> TransferMap(size_t agg_col, size_t col,
                                    const Grid& grid) const;
  void FillTransferMaps(Node* node, size_t agg_col, const Grid& grid) const;

  /// Fast-path O(log k) COUNT shortcut (single same-column predicate whose
  /// pieces fully cover every touched bin); returns true and fills `out`
  /// when it applies. Shared by ExecuteScalarFast and the batch path so
  /// the two can never diverge.
  bool TryCountShortcutFast(const CompiledQuery& plan, AggResult* out) const;

  /// One batch group: scalar plans sharing a weight pipeline (defined in
  /// engine.cc). The grouping and weighting stages are shared by
  /// ExecuteBatchInto and ExecutePartialBatchInto so single-segment and
  /// per-segment batches can never group or weight differently.
  struct BatchGroup;
  /// Groups batchable scalar plans by (aggregation column, grid,
  /// value-equal normalized WHERE); plans the batch path does not cover
  /// (GROUP BY, predicate-free COUNT(*)) land in scratch.singles instead.
  /// Groups live in scratch.groups[0..scratch.n_groups) — pooled with the
  /// scratch so repeated batches reuse the bookkeeping vector capacity
  /// (a batch of fully-distinct sub-microsecond queries must not pay
  /// per-call allocations the per-query loop avoids).
  void GroupBatchPlans(const std::vector<const CompiledQuery*>& plans,
                       ExecScratch& scratch) const;
  /// Weight stage for every group with need_wt set: the fast path carves
  /// one plan-major SoA block and fills all rows with a single batched
  /// Eq.-29 kernel call; the reference path computes per-group
  /// Weightings. Probability/weight spans live in the scratch arena.
  void WeightBatchGroups(const std::vector<const CompiledQuery*>& plans,
                         ExecScratch& scratch) const;

  /// Reference execution path (vector-based, one allocation per stage).
  StatusOr<AggResult> ExecuteScalar(const CompiledQuery& plan,
                                    const Node* extra_group_leaf,
                                    ExecScratch& scratch) const;
  /// Zero-allocation fast path over the scratch arena (cell prefix
  /// index, localized coverage, range-restricted weighting/aggregation).
  StatusOr<AggResult> ExecuteScalarFast(const CompiledQuery& plan,
                                        const Node* extra_group_leaf,
                                        const std::vector<uint32_t>* extra_g2ta,
                                        ExecScratch& scratch) const;
  /// Scalar (or per-group) partial: same weighting pipeline as the two
  /// paths above (fast or reference, per options), ending in mergeable
  /// sufficient statistics instead of a finalized AggResult.
  Status ExecutePartialScalar(const CompiledQuery& plan,
                              const Node* extra_group_leaf,
                              const std::vector<uint32_t>* extra_g2ta,
                              ExecScratch& scratch,
                              PartialAggregate* out) const;

  const PairwiseHist* ph_;
  AqpEngineOptions options_;
  /// Kernel table resolved once from options_.kernels at construction.
  const KernelOps* ks_;
  std::unique_ptr<ScratchPool> pool_;
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_QUERY_ENGINE_H_
