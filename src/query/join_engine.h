// Multi-table AQP (paper Section 3): "queries across different tables can
// be resolved via two-dimensional histograms involving the primary/foreign
// keys". This prototype covers the star-schema case the paper sketches:
//
//   SELECT F(fact.x) FROM fact JOIN dim ON fact.fk = dim.pk
//   WHERE <conjunctive predicates on fact and/or dim columns>;
//
// Dimension-table predicates are converted to coverage over the dimension
// synopsis's (pk, attr) pairwise histogram, transferred onto the fact
// synopsis's (agg, fk) histogram through the key dimension, and combined
// with fact-side predicates under Eq. 28. Assumes pk is unique in the
// dimension table and every fact fk joins (inner-join semantics otherwise
// shade COUNTs proportionally). COUNT/SUM/AVG with AND-combined predicates;
// bounds propagate from Theorem-2 coverage bounds.
#ifndef PAIRWISEHIST_QUERY_JOIN_ENGINE_H_
#define PAIRWISEHIST_QUERY_JOIN_ENGINE_H_

#include <string>

#include "common/status.h"
#include "core/pairwise_hist.h"
#include "query/ast.h"
#include "query/coverage.h"

namespace pairwisehist {

class JoinAqpEngine {
 public:
  /// Both synopses must outlive the engine. `fact_key` / `dim_key` name
  /// the join columns in the respective synopses.
  JoinAqpEngine(const PairwiseHist* fact, std::string fact_key,
                const PairwiseHist* dim, std::string dim_key)
      : fact_(fact),
        dim_(dim),
        fact_key_(std::move(fact_key)),
        dim_key_(std::move(dim_key)) {}

  /// Executes a query over the implicit join. The aggregation column must
  /// belong to the fact table; predicate columns are resolved against the
  /// fact synopsis first, then the dimension synopsis.
  StatusOr<QueryResult> Execute(const Query& query) const;

  /// Parses and executes SQL (the FROM table name is informational).
  StatusOr<QueryResult> ExecuteSql(const std::string& sql) const;

 private:
  struct Prob {
    std::vector<double> p, lo, hi;
  };

  /// Probability vector over the fact aggregation column's 1-d bins for a
  /// fact-side condition.
  Prob FactLeaf(size_t agg_col, size_t col,
                const IntervalSet& intervals) const;
  /// Probability vector for a dimension-side condition, routed through the
  /// key histograms.
  StatusOr<Prob> DimLeaf(size_t agg_col, size_t dim_col,
                         const IntervalSet& intervals) const;

  const PairwiseHist* fact_;
  const PairwiseHist* dim_;
  std::string fact_key_;
  std::string dim_key_;
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_QUERY_JOIN_ENGINE_H_
