#include "query/partial_agg.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace pairwisehist {

namespace {

constexpr double kMassEps = 1e-9;
const double kNaN = std::numeric_limits<double>::quiet_NaN();

AggResult EmptyResult(AggFunc func) {
  AggResult r;
  r.empty_selection = true;
  if (func != AggFunc::kCount) {
    r.estimate = r.lower = r.upper = kNaN;
  }
  return r;
}

/// Extreme of the weighted average Σ w_i v_i / Σ w_i with each w_i free in
/// [lo_i, hi_i]. The optimum sits at an extreme point where small values
/// get one bound and large values the other, so scanning the n+1 splits of
/// the value-sorted order finds it exactly. Falls back to the plain
/// min/max of `vals` when every weight interval is zero.
double WeightedAvgExtreme(std::vector<double> vals, std::vector<double> wlo,
                          std::vector<double> whi, bool maximize) {
  const size_t n = vals.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return vals[a] < vals[b]; });

  bool found = false;
  double best = 0;
  for (size_t split = 0; split <= n; ++split) {
    // Minimizing: weight the `split` smallest values at their hi bound and
    // the rest at lo. Maximizing: the mirror image.
    double tw = 0, tv = 0;
    for (size_t p = 0; p < n; ++p) {
      size_t i = order[p];
      bool heavy = maximize ? (p >= split) : (p < split);
      double w = heavy ? whi[i] : wlo[i];
      tw += w;
      tv += w * vals[i];
    }
    if (tw <= kMassEps) continue;
    double avg = tv / tw;
    if (!found || (maximize ? avg > best : avg < best)) {
      best = avg;
      found = true;
    }
  }
  if (found) return best;
  // All weight intervals are (numerically) zero: any mixture degenerates;
  // bound by the extreme value itself.
  double ext = vals.empty() ? 0.0 : vals[order[maximize ? n - 1 : 0]];
  return ext;
}

// Mirrors AggregateImpl's kMedian CDF walk (engine.cc) over the combined
// raw-domain bins of every segment. The two deliberately stay separate
// implementations: the engine interpolates in the code domain and decodes
// the result (bit-compatibility with the paper path), while the merge
// works on already-decoded exported bins — but any change to the median
// RULE (half-mass tie handling, the unique==2 two-value case, the
// w_lo/w_hi bound walk) must be applied to both, and the 1-vs-N-segment
// equivalence suite in tests/segment_test.cc guards their agreement.
AggResult MergeMedian(const std::vector<const PartialAggregate*>& parts,
                      const KernelOps& ks) {
  // Gather every touched bin; sort by value interval for the CDF walk.
  std::vector<const PartialAggregate::MedianBin*> bins;
  for (const PartialAggregate* p : parts) {
    for (const auto& b : p->median_bins) bins.push_back(&b);
  }
  std::sort(bins.begin(), bins.end(),
            [](const PartialAggregate::MedianBin* a,
               const PartialAggregate::MedianBin* b) {
              if (a->v_lo != b->v_lo) return a->v_lo < b->v_lo;
              return a->v_hi < b->v_hi;
            });
  const size_t n = bins.size();
  if (n == 0) return EmptyResult(AggFunc::kMedian);

  // Transpose the sorted bins into weight lanes so the three CDF walks run
  // as prefix-scan kernels + binary search instead of pointer-chasing.
  std::vector<double> w(n), w_lo(n), w_hi(n), prefix(n);
  for (size_t i = 0; i < n; ++i) {
    w[i] = bins[i]->w;
    w_lo[i] = bins[i]->w_lo;
    w_hi[i] = bins[i]->w_hi;
  }
  // Same 1e-9 relative tie tolerance as the engine's half-mass walk
  // (engine.cc kMedian): the two implementations must keep rule parity.
  auto median_bin = [&](const double* wv) -> int {
    ks.prefix_sum(wv, 0, n, prefix.data());
    double tw = prefix[n - 1];
    if (tw <= kMassEps) return -1;
    double target = tw / 2.0 - 1e-9 * tw;
    size_t idx = static_cast<size_t>(
        std::lower_bound(prefix.data(), prefix.data() + n, target) -
        prefix.data());
    if (idx >= n) idx = n - 1;
    return static_cast<int>(idx);
  };

  AggResult r;
  int t_est = median_bin(w.data());
  if (t_est < 0) return EmptyResult(AggFunc::kMedian);

  const size_t te = static_cast<size_t>(t_est);
  double total = prefix[n - 1];
  double before = te > 0 ? prefix[te - 1] : 0.0;
  const auto* bt = bins[te];
  double f = (total / 2.0 - before) / std::max(bt->w, kMassEps);
  f = std::clamp(f, 0.0, 1.0);
  if (bt->unique == 2) {
    r.estimate = f < 0.5 ? bt->v_lo : bt->v_hi;
  } else {
    r.estimate = bt->v_lo + (bt->v_hi - bt->v_lo) * f;
  }

  int t_lo = t_est, t_hi = t_est;
  for (const double* wv : {w_lo.data(), w_hi.data()}) {
    int tb = median_bin(wv);
    if (tb >= 0) {
      t_lo = std::min(t_lo, tb);
      t_hi = std::max(t_hi, tb);
    }
  }
  r.lower = bins[static_cast<size_t>(t_lo)]->v_lo;
  r.upper = bins[static_cast<size_t>(t_hi)]->v_hi;
  r.lower = std::min(r.lower, r.estimate);
  r.upper = std::max(r.upper, r.estimate);
  return r;
}

}  // namespace

AggResult MergePartials(AggFunc func,
                        const std::vector<const PartialAggregate*>& parts,
                        const KernelOps* ks) {
  if (ks == nullptr) ks = &ScalarKernels();
  if (func == AggFunc::kCount) {
    AggResult r;
    for (const PartialAggregate* p : parts) {
      r.estimate += p->count;
      r.lower += p->count_lo;
      r.upper += p->count_hi;
    }
    r.empty_selection = r.estimate <= kMassEps;
    return r;
  }

  // Non-COUNT functions draw only from segments with matching mass.
  std::vector<const PartialAggregate*> live;
  for (const PartialAggregate* p : parts) {
    if (!p->empty) live.push_back(p);
  }
  if (live.empty()) return EmptyResult(func);
  if (func == AggFunc::kMedian) return MergeMedian(live, *ks);
  if (live.size() == 1) {
    return live[0]->value;  // single contributing segment: pass through
  }

  AggResult r;
  switch (func) {
    case AggFunc::kSum: {
      for (const PartialAggregate* p : live) {
        r.estimate += p->value.estimate;
        r.lower += p->value.lower;
        r.upper += p->value.upper;
      }
      return r;
    }
    case AggFunc::kAvg: {
      double w = 0, num = 0;
      std::vector<double> lo_vals, hi_vals, wlo, whi;
      for (const PartialAggregate* p : live) {
        w += p->count;
        num += p->count * p->value.estimate;
        lo_vals.push_back(p->value.lower);
        hi_vals.push_back(p->value.upper);
        wlo.push_back(p->count_lo);
        whi.push_back(p->count_hi);
      }
      r.estimate = w > kMassEps ? num / w : live[0]->value.estimate;
      r.lower = WeightedAvgExtreme(lo_vals, wlo, whi, /*maximize=*/false);
      r.upper = WeightedAvgExtreme(hi_vals, wlo, whi, /*maximize=*/true);
      r.lower = std::min(r.lower, r.estimate);
      r.upper = std::max(r.upper, r.estimate);
      return r;
    }
    case AggFunc::kVar: {
      // Pooled variance from per-segment (count, mean, var).
      double w = 0, m1 = 0, m2 = 0;
      for (const PartialAggregate* p : live) {
        w += p->count;
        m1 += p->count * p->mean.estimate;
        m2 += p->count * (p->value.estimate +
                          p->mean.estimate * p->mean.estimate);
      }
      if (w <= kMassEps) return live[0]->value;
      double mean = m1 / w;
      r.estimate = std::max(0.0, m2 / w - mean * mean);

      // Lower bound: pooled variance >= the count-weighted mean of the
      // within-segment variances >= the smallest per-segment lower bound.
      double lo = std::numeric_limits<double>::infinity();
      for (const PartialAggregate* p : live) {
        lo = std::min(lo, p->value.lower);
      }
      r.lower = std::max(0.0, std::min(lo, r.estimate));

      // Upper bound: extremal second moment minus the smallest possible
      // squared merged mean.
      std::vector<double> e2_hi, mlo_v, mhi_v, wlo, whi;
      for (const PartialAggregate* p : live) {
        double mm = std::max(p->mean.lower * p->mean.lower,
                             p->mean.upper * p->mean.upper);
        e2_hi.push_back(p->value.upper + mm);
        mlo_v.push_back(p->mean.lower);
        mhi_v.push_back(p->mean.upper);
        wlo.push_back(p->count_lo);
        whi.push_back(p->count_hi);
      }
      double e2 = WeightedAvgExtreme(e2_hi, wlo, whi, /*maximize=*/true);
      double mean_lo = WeightedAvgExtreme(mlo_v, wlo, whi, false);
      double mean_hi = WeightedAvgExtreme(mhi_v, wlo, whi, true);
      double mean_sq_min = (mean_lo <= 0.0 && mean_hi >= 0.0)
                               ? 0.0
                               : std::min(mean_lo * mean_lo,
                                          mean_hi * mean_hi);
      r.upper = std::max(r.estimate, e2 - mean_sq_min);
      return r;
    }
    case AggFunc::kMin: {
      r.estimate = std::numeric_limits<double>::infinity();
      r.lower = std::numeric_limits<double>::infinity();
      r.upper = std::numeric_limits<double>::infinity();
      for (const PartialAggregate* p : live) {
        r.estimate = std::min(r.estimate, p->value.estimate);
        r.lower = std::min(r.lower, p->value.lower);
        r.upper = std::min(r.upper, p->value.upper);
      }
      r.lower = std::min(r.lower, r.estimate);
      r.upper = std::max(r.upper, r.estimate);
      return r;
    }
    case AggFunc::kMax: {
      r.estimate = -std::numeric_limits<double>::infinity();
      r.lower = -std::numeric_limits<double>::infinity();
      r.upper = -std::numeric_limits<double>::infinity();
      for (const PartialAggregate* p : live) {
        r.estimate = std::max(r.estimate, p->value.estimate);
        r.lower = std::max(r.lower, p->value.lower);
        r.upper = std::max(r.upper, p->value.upper);
      }
      r.lower = std::min(r.lower, r.estimate);
      r.upper = std::max(r.upper, r.estimate);
      return r;
    }
    case AggFunc::kCount:
    case AggFunc::kMedian:
      break;  // handled above
  }
  return r;
}

void MergePartialResults(AggFunc func, bool grouped,
                         const std::vector<PartialResult>& parts,
                         QueryResult* out, const KernelOps* ks) {
  out->groups.clear();

  // Label -> index into the merged order (first seen, walking segments in
  // order — deterministic), then collect per-label partial lists. Hashed
  // lookup keeps high-cardinality GROUP BY merges linear.
  std::vector<std::string> labels;
  std::vector<std::vector<const PartialAggregate*>> by_label;
  std::unordered_map<std::string, size_t> index;
  for (const PartialResult& part : parts) {
    for (const PartialResult::Group& g : part.groups) {
      auto [it, inserted] = index.emplace(g.label, labels.size());
      if (inserted) {
        labels.push_back(g.label);
        by_label.emplace_back();
      }
      by_label[it->second].push_back(&g.agg);
    }
  }

  if (!grouped && labels.empty()) {
    // Every segment was pruned or empty: a scalar query still returns one
    // group.
    out->groups.push_back(
        QueryResult::Group{std::string(), EmptyResult(func)});
    return;
  }

  for (size_t i = 0; i < labels.size(); ++i) {
    AggResult agg = MergePartials(func, by_label[i], ks);
    if (grouped) {
      bool empty_count = func == AggFunc::kCount && agg.estimate <= 0.5;
      if (agg.empty_selection || empty_count) continue;
    }
    out->groups.push_back(QueryResult::Group{labels[i], agg});
  }
}

}  // namespace pairwisehist
