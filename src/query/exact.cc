#include "query/exact.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>

#include "query/sql_parser.h"

namespace pairwisehist {

namespace {

// Predicate tree with resolved column indices and categorical literals.
struct ResolvedNode {
  PredicateNode::Type type = PredicateNode::Type::kCondition;
  size_t column = 0;
  CmpOp op = CmpOp::kEq;
  double value = 0;
  std::vector<ResolvedNode> children;
};

StatusOr<ResolvedNode> Resolve(const Table& table, const PredicateNode& node) {
  ResolvedNode out;
  out.type = node.type;
  if (node.type == PredicateNode::Type::kCondition) {
    const Condition& c = node.condition;
    PH_ASSIGN_OR_RETURN(out.column, table.ColumnIndex(c.column));
    out.op = c.op;
    if (c.is_string) {
      const Column& col = table.column(out.column);
      if (col.type() != DataType::kCategorical) {
        return Status::InvalidArgument("string literal on non-categorical '" +
                                       c.column + "'");
      }
      auto code = col.CategoryCode(c.text_value);
      // Unknown categories match nothing (handled with a sentinel).
      out.value = code.ok() ? static_cast<double>(code.value()) : -1.0;
    } else {
      out.value = c.value;
    }
    return out;
  }
  for (const auto& child : node.children) {
    PH_ASSIGN_OR_RETURN(ResolvedNode rc, Resolve(table, child));
    out.children.push_back(std::move(rc));
  }
  return out;
}

bool EvalCondition(const ResolvedNode& n, const Table& table, size_t row) {
  const Column& col = table.column(n.column);
  if (col.IsNull(row)) return false;  // SQL: NULL comparisons are not true
  double v = col.Value(row);
  switch (n.op) {
    case CmpOp::kLt:
      return v < n.value;
    case CmpOp::kLe:
      return v <= n.value;
    case CmpOp::kGt:
      return v > n.value;
    case CmpOp::kGe:
      return v >= n.value;
    case CmpOp::kEq:
      return v == n.value;
    case CmpOp::kNe:
      return v != n.value;
  }
  return false;
}

bool EvalNode(const ResolvedNode& n, const Table& table, size_t row) {
  switch (n.type) {
    case PredicateNode::Type::kCondition:
      return EvalCondition(n, table, row);
    case PredicateNode::Type::kAnd:
      for (const auto& c : n.children) {
        if (!EvalNode(c, table, row)) return false;
      }
      return true;
    case PredicateNode::Type::kOr:
      for (const auto& c : n.children) {
        if (EvalNode(c, table, row)) return true;
      }
      return false;
  }
  return false;
}

// Aggregates a collected value vector.
AggResult Aggregate(AggFunc func, std::vector<double>& values,
                    uint64_t count_star_rows, bool count_star) {
  AggResult r;
  if (func == AggFunc::kCount) {
    r.estimate = count_star ? static_cast<double>(count_star_rows)
                            : static_cast<double>(values.size());
    r.lower = r.upper = r.estimate;
    return r;
  }
  if (values.empty()) {
    r.empty_selection = true;
    r.estimate = r.lower = r.upper =
        std::numeric_limits<double>::quiet_NaN();
    return r;
  }
  switch (func) {
    case AggFunc::kSum: {
      double s = 0;
      for (double v : values) s += v;
      r.estimate = s;
      break;
    }
    case AggFunc::kAvg: {
      double s = 0;
      for (double v : values) s += v;
      r.estimate = s / values.size();
      break;
    }
    case AggFunc::kMin:
      r.estimate = *std::min_element(values.begin(), values.end());
      break;
    case AggFunc::kMax:
      r.estimate = *std::max_element(values.begin(), values.end());
      break;
    case AggFunc::kMedian: {
      size_t mid = values.size() / 2;
      std::nth_element(values.begin(), values.begin() + mid, values.end());
      double hi = values[mid];
      if (values.size() % 2 == 0) {
        double lo =
            *std::max_element(values.begin(), values.begin() + mid);
        r.estimate = (lo + hi) / 2.0;
      } else {
        r.estimate = hi;
      }
      break;
    }
    case AggFunc::kVar: {
      // Population variance, matching the paper's estimator
      // E[x^2] - E[x]^2.
      double s = 0, s2 = 0;
      for (double v : values) {
        s += v;
        s2 += v * v;
      }
      double mean = s / values.size();
      r.estimate = std::max(0.0, s2 / values.size() - mean * mean);
      break;
    }
    case AggFunc::kCount:
      break;  // handled above
  }
  r.lower = r.upper = r.estimate;
  return r;
}

std::string GroupLabel(const Column& col, double code) {
  if (col.type() == DataType::kCategorical) {
    auto name = col.CategoryName(static_cast<int64_t>(code));
    if (name.ok()) return name.value();
  }
  char buf[64];
  if (code == static_cast<long long>(code)) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(code));
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", code);
  }
  return buf;
}

}  // namespace

StatusOr<QueryResult> ExecuteExact(const Table& table, const Query& query) {
  std::optional<ResolvedNode> where;
  if (query.where.has_value()) {
    PH_ASSIGN_OR_RETURN(ResolvedNode node, Resolve(table, *query.where));
    where = std::move(node);
  }
  const Column* agg_col = nullptr;
  if (!query.count_star) {
    PH_ASSIGN_OR_RETURN(size_t idx, table.ColumnIndex(query.agg_column));
    agg_col = &table.column(idx);
  }
  const Column* group_col = nullptr;
  if (!query.group_by.empty()) {
    PH_ASSIGN_OR_RETURN(size_t idx, table.ColumnIndex(query.group_by));
    group_col = &table.column(idx);
  }

  // group code -> (values, row count). Ungrouped uses the single key 0.
  std::map<double, std::pair<std::vector<double>, uint64_t>> groups;
  for (size_t r = 0; r < table.NumRows(); ++r) {
    if (where.has_value() && !EvalNode(*where, table, r)) continue;
    double key = 0;
    if (group_col != nullptr) {
      if (group_col->IsNull(r)) continue;  // NULL groups are dropped
      key = group_col->Value(r);
    }
    auto& slot = groups[key];
    ++slot.second;
    if (agg_col != nullptr && !agg_col->IsNull(r)) {
      slot.first.push_back(agg_col->Value(r));
    }
  }

  QueryResult result;
  if (groups.empty() && group_col == nullptr) {
    groups[0];  // materialize the empty ungrouped group
  }
  for (auto& [key, slot] : groups) {
    QueryResult::Group g;
    g.label = group_col == nullptr ? "" : GroupLabel(*group_col, key);
    g.agg = Aggregate(query.func, slot.first, slot.second, query.count_star);
    result.groups.push_back(std::move(g));
  }
  return result;
}

StatusOr<QueryResult> ExecuteExactSql(const Table& table,
                                      const std::string& sql) {
  PH_ASSIGN_OR_RETURN(Query q, ParseSql(sql));
  return ExecuteExact(table, q);
}

StatusOr<double> ExactSelectivity(const Table& table, const Query& query) {
  if (!query.where.has_value()) return 1.0;
  if (table.NumRows() == 0) return 0.0;
  PH_ASSIGN_OR_RETURN(ResolvedNode node, Resolve(table, *query.where));
  uint64_t hits = 0;
  for (size_t r = 0; r < table.NumRows(); ++r) {
    if (EvalNode(node, table, r)) ++hits;
  }
  return static_cast<double>(hits) / table.NumRows();
}

}  // namespace pairwisehist
