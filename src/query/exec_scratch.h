// Bump-pointer scratch arena for query execution.
//
// Execute(CompiledQuery) runs entirely out of one of these: every per-bin
// vector the pipeline needs (satisfaction probabilities, coverage,
// weightings, cross-column transfer buffers, aggregation temporaries) is
// carved out of pooled blocks with a bump pointer. Blocks are allocated on
// first use and retained across Reset(), so steady-state execution performs
// zero heap allocations. Blocks are never reallocated, so outstanding
// pointers stay valid until Reset().
//
// Every handed-out span is 64-byte aligned (one cache line, a full AVX-512
// vector): the SIMD execution kernels (common/simd.h) process elements at
// absolute-index lane phase, so aligned bases make their whole-vector body
// loads aligned. The bump offset advances in 64-byte units to keep the
// invariant for every allocation, not just the first of a block.
#ifndef PAIRWISEHIST_QUERY_EXEC_SCRATCH_H_
#define PAIRWISEHIST_QUERY_EXEC_SCRATCH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace pairwisehist {

class ExecArena {
 public:
  /// Alignment of every allocation, in bytes.
  static constexpr size_t kAlign = 64;

  /// Returns `n` uninitialized doubles, 64-byte aligned. Never invalidates
  /// earlier allocations; allocates a new block only when the retained
  /// ones are exhausted (first execution, or a larger query shape than
  /// seen before).
  double* Alloc(size_t n) { return AllocAs<double>(n); }

  /// Zero-filled variant.
  double* AllocZeroed(size_t n) {
    double* p = Alloc(n);
    std::fill(p, p + n, 0.0);
    return p;
  }

  /// `n` uninitialized uint32s (coverage run/segment descriptors),
  /// 64-byte aligned.
  uint32_t* AllocU32(size_t n) { return AllocAs<uint32_t>(n); }

  /// Releases every allocation but keeps the blocks for reuse.
  void Reset() {
    for (Block& b : blocks_) b.used = 0;
    cur_ = 0;
  }

  /// Ensures one retained block can hold at least `bytes` contiguously.
  /// Batch execution sizes the arena once from its plan count and grid
  /// width (see BatchArenaBytes) instead of growing block by block as the
  /// groups execute — after the first batch of a given shape, later
  /// batches run allocation-free. Never invalidates prior allocations.
  void Reserve(size_t bytes) {
    const size_t need = (bytes + kAlign - 1) & ~(kAlign - 1);
    for (const Block& b : blocks_) {
      if (b.cap - b.used >= need) return;  // free bytes, not total capacity
    }
    Block b;
    b.raw = std::make_unique<unsigned char[]>(need + kAlign);
    const size_t misalign =
        reinterpret_cast<uintptr_t>(b.raw.get()) & (kAlign - 1);
    b.base = b.raw.get() + (misalign ? kAlign - misalign : 0);
    b.cap = need;
    b.used = 0;
    blocks_.push_back(std::move(b));
  }

  size_t BytesReserved() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.cap;
    return total;
  }

 private:
  static constexpr size_t kMinBlockBytes = size_t{128} * 1024;

  struct Block {
    std::unique_ptr<unsigned char[]> raw;
    unsigned char* base = nullptr;  ///< 64-byte aligned into `raw`
    size_t cap = 0;                 ///< usable bytes from `base`
    size_t used = 0;                ///< bump offset (multiple of kAlign)
  };

  /// Carves `n` objects of trivial type T out of the byte blocks,
  /// formally starting their lifetimes (C++17 has no implicit object
  /// creation in byte storage; the trivial default-init placement-new
  /// loop compiles to nothing).
  template <typename T>
  T* AllocAs(size_t n) {
    static_assert(std::is_trivial_v<T>, "arena holds trivial types only");
    T* p = static_cast<T*>(AllocBytes(n * sizeof(T)));
    for (size_t i = 0; i < n; ++i) ::new (static_cast<void*>(p + i)) T;
    return p;
  }

  void* AllocBytes(size_t bytes) {
    // Round the reservation to the alignment so the next bump stays
    // aligned without tracking padding separately.
    const size_t need = (bytes + kAlign - 1) & ~(kAlign - 1);
    while (cur_ < blocks_.size()) {
      Block& b = blocks_[cur_];
      if (b.cap - b.used >= need) {
        void* p = b.base + b.used;
        b.used += need;
        return p;
      }
      ++cur_;
    }
    const size_t cap = std::max(need, kMinBlockBytes);
    Block b;
    b.raw = std::make_unique<unsigned char[]>(cap + kAlign);
    const size_t misalign =
        reinterpret_cast<uintptr_t>(b.raw.get()) & (kAlign - 1);
    b.base = b.raw.get() + (misalign ? kAlign - misalign : 0);
    b.cap = cap;
    b.used = need;
    blocks_.push_back(std::move(b));
    cur_ = blocks_.size() - 1;
    return blocks_.back().base;
  }

  std::vector<Block> blocks_;
  size_t cur_ = 0;
};

/// Per-bin satisfaction probabilities with bounds on some grid, plus the
/// fully-covered run descriptors coverage.cc emits (absolute [begin, end)
/// bin-index pairs where β = β− = β+ = 1): Eq. 29 weighting consumes runs
/// in bulk (w = w− = w+ = bin count) instead of per-bin arithmetic. Bins
/// outside [begin, end) are implicitly exactly zero.
struct ProbTable {
  double* p = nullptr;
  double* lo = nullptr;
  double* hi = nullptr;
  size_t begin = 0;
  size_t end = 0;
  const uint32_t* runs = nullptr;  ///< 2*n_runs absolute bin indices
  size_t n_runs = 0;
};

/// Per-bin weightings (w, w−, w+) over the aggregation grid. The three
/// lanes live in one 64-byte-aligned SoA block (each lane padded to a
/// whole number of cache lines) when arena-backed via Make; the reference
/// path instead points the lanes at its Weightings vectors.
struct WeightTable {
  double* w = nullptr;
  double* lo = nullptr;
  double* hi = nullptr;
  size_t begin = 0;
  size_t end = 0;

  /// Carves a single [w | lo | hi] block for `k` bins out of `arena`,
  /// every lane 64-byte aligned.
  static WeightTable Make(ExecArena& arena, size_t k) {
    constexpr size_t kLine = ExecArena::kAlign / sizeof(double);
    const size_t stride = (k + kLine - 1) & ~(kLine - 1);
    double* base = arena.Alloc(3 * stride);
    WeightTable wt;
    wt.w = base;
    wt.lo = base + stride;
    wt.hi = base + 2 * stride;
    return wt;
  }
};

/// Plan-major SoA weight tables for batch execution: one contiguous arena
/// block holding R row triples [w | lo | hi] over a k-bin grid, each lane
/// padded to whole cache lines. Row r is one plan pipeline's WeightTable;
/// the batched Eq.-29 weighting kernel (KernelOps::weights_batch) fills
/// every row in a single call.
class WeightTableBlock {
 public:
  WeightTableBlock() = default;
  WeightTableBlock(ExecArena& arena, size_t k, size_t rows) : rows_(rows) {
    constexpr size_t kLine = ExecArena::kAlign / sizeof(double);
    stride_ = (k + kLine - 1) & ~(kLine - 1);
    base_ = rows > 0 ? arena.Alloc(3 * stride_ * rows) : nullptr;
  }

  size_t rows() const { return rows_; }

  WeightTable Row(size_t r) const {
    WeightTable wt;
    double* base = base_ + 3 * stride_ * r;
    wt.w = base;
    wt.lo = base + stride_;
    wt.hi = base + 2 * stride_;
    return wt;
  }

 private:
  double* base_ = nullptr;
  size_t stride_ = 0;  ///< doubles per lane (cache-line padded k)
  size_t rows_ = 0;
};

/// Conservative arena-byte estimate for one batch execution: `rows`
/// distinct weight pipelines over a `grid_bins`-wide grid. Each pipeline
/// needs the SoA weight triple plus probability/coverage scratch of a few
/// grid widths; aggregation temporaries ride in the same budget. Used with
/// ExecArena::Reserve so a batch sizes its arena up front.
inline size_t BatchArenaBytes(size_t grid_bins, size_t rows) {
  const size_t per_row = 12 * grid_bins * sizeof(double);
  return per_row * (rows + 1) + ExecArena::kAlign;
}

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_QUERY_EXEC_SCRATCH_H_
