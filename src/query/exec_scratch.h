// Bump-pointer scratch arena for query execution.
//
// Execute(CompiledQuery) runs entirely out of one of these: every per-bin
// vector the pipeline needs (satisfaction probabilities, coverage,
// weightings, cross-column transfer buffers, aggregation temporaries) is
// carved out of pooled blocks with a bump pointer. Blocks are allocated on
// first use and retained across Reset(), so steady-state execution performs
// zero heap allocations. Blocks are never reallocated, so outstanding
// pointers stay valid until Reset().
#ifndef PAIRWISEHIST_QUERY_EXEC_SCRATCH_H_
#define PAIRWISEHIST_QUERY_EXEC_SCRATCH_H_

#include <algorithm>
#include <cstddef>
#include <memory>
#include <vector>

namespace pairwisehist {

class ExecArena {
 public:
  /// Returns `n` uninitialized doubles. Never invalidates earlier
  /// allocations; allocates a new block only when the retained ones are
  /// exhausted (first execution, or a larger query shape than seen before).
  double* Alloc(size_t n) {
    while (cur_ < blocks_.size()) {
      Block& b = blocks_[cur_];
      if (b.cap - b.used >= n) {
        double* p = b.data.get() + b.used;
        b.used += n;
        return p;
      }
      ++cur_;
    }
    const size_t cap = std::max(n, kMinBlockDoubles);
    blocks_.push_back(Block{std::make_unique<double[]>(cap), cap, n});
    cur_ = blocks_.size() - 1;
    return blocks_.back().data.get();
  }

  /// Zero-filled variant.
  double* AllocZeroed(size_t n) {
    double* p = Alloc(n);
    std::fill(p, p + n, 0.0);
    return p;
  }

  /// Releases every allocation but keeps the blocks for reuse.
  void Reset() {
    for (Block& b : blocks_) b.used = 0;
    cur_ = 0;
  }

  size_t BytesReserved() const {
    size_t total = 0;
    for (const Block& b : blocks_) total += b.cap * sizeof(double);
    return total;
  }

 private:
  static constexpr size_t kMinBlockDoubles = 16384;  // 128 KiB

  struct Block {
    std::unique_ptr<double[]> data;
    size_t cap = 0;
    size_t used = 0;
  };

  std::vector<Block> blocks_;
  size_t cur_ = 0;
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_QUERY_EXEC_SCRATCH_H_
