// Query AST shared by the SQL parser, the exact engine and the AQP engines.
//
// The supported query shape is the paper's problem definition (Section 3):
//   SELECT F(Xi) FROM D WHERE P1 AND/OR P2 ... GROUP BY Xg;
// with F in {COUNT, SUM, AVG, MIN, MAX, MEDIAN, VAR}, predicates of the form
// "Xj OP literal" (OP in <, >, <=, >=, =, !=) combined with arbitrary
// AND/OR nesting (AND binds tighter), and GROUP BY on a categorical column.
#ifndef PAIRWISEHIST_QUERY_AST_H_
#define PAIRWISEHIST_QUERY_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace pairwisehist {

/// Supported aggregation functions (Table 3).
enum class AggFunc { kCount, kSum, kAvg, kMin, kMax, kMedian, kVar };

const char* AggFuncName(AggFunc f);

/// Binary comparison operators for predicate conditions.
enum class CmpOp { kLt, kLe, kGt, kGe, kEq, kNe };

const char* CmpOpName(CmpOp op);

/// A leaf predicate: column OP literal.
struct Condition {
  std::string column;
  CmpOp op = CmpOp::kEq;
  double value = 0;        ///< numeric literal (unused if is_string)
  std::string text_value;  ///< string literal for categorical columns
  bool is_string = false;
};

/// Predicate tree node. AND/OR nodes have >= 2 children.
struct PredicateNode {
  enum class Type { kCondition, kAnd, kOr };
  Type type = Type::kCondition;
  Condition condition;                  ///< when type == kCondition
  std::vector<PredicateNode> children;  ///< when type is kAnd / kOr
};

/// A parsed query.
struct Query {
  AggFunc func = AggFunc::kCount;
  std::string agg_column;  ///< empty for COUNT(*)
  bool count_star = false;
  std::string table;
  std::optional<PredicateNode> where;
  std::string group_by;  ///< empty when not grouped

  /// Collects the distinct predicate column names (in first-seen order).
  std::vector<std::string> PredicateColumns() const;
  /// True if the query touches a single column only (aggregation and every
  /// predicate) — enables the Table-3 "1-d" special cases for MIN/MAX.
  bool SingleColumn() const;
  /// Round-trips the query to SQL text.
  std::string ToSql() const;
};

/// Result of one aggregation: the estimate plus lower/upper bounds.
/// Exact engines return estimate == lower == upper.
struct AggResult {
  double estimate = 0;
  double lower = 0;
  double upper = 0;
  /// True when no (estimated) rows satisfy the predicate; non-COUNT
  /// aggregates are then undefined and estimate/bounds are NaN.
  bool empty_selection = false;
};

/// A full query result: one AggResult per group (single unnamed group when
/// there is no GROUP BY).
struct QueryResult {
  struct Group {
    std::string label;  ///< group value as text; "" for ungrouped
    AggResult agg;
  };
  std::vector<Group> groups;

  /// Convenience for ungrouped queries.
  const AggResult& Scalar() const { return groups.at(0).agg; }
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_QUERY_AST_H_
