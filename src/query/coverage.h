// Predicate coverage over histogram bins (paper Section 5.2).
//
// Conditions are turned into sets of disjoint closed integer intervals in
// the GD code domain. Condition groups on the same column under one AND/OR
// operator are consolidated by interval intersection/union ("delayed
// transformation"), which is exact under the per-bin uniformity model
// instead of a conditional-independence approximation. Coverage β of an
// interval set over each bin follows Eqs. 14–16; coverage bounds β± follow
// Theorem 2 (Eqs. 22–23).
#ifndef PAIRWISEHIST_QUERY_COVERAGE_H_
#define PAIRWISEHIST_QUERY_COVERAGE_H_

#include <cstdint>
#include <vector>

#include "gd/preprocess.h"
#include "hist/histogram.h"
#include "query/ast.h"

namespace pairwisehist {

/// A union of disjoint, sorted, closed integer intervals [lo, hi] in the
/// code domain. ±kIntervalInf stand for unbounded ends.
struct IntervalSet {
  static constexpr double kInf = 1e300;

  /// Intervals as (lo, hi) pairs, lo <= hi, sorted, pairwise disjoint and
  /// non-adjacent (gap of at least one code between consecutive intervals).
  std::vector<std::pair<double, double>> pieces;

  bool Empty() const { return pieces.empty(); }
  bool IsAll() const {
    return pieces.size() == 1 && pieces[0].first <= -kInf &&
           pieces[0].second >= kInf;
  }

  /// Whole-line and empty sets.
  static IntervalSet All();
  static IntervalSet None();
  /// Single interval [lo, hi] (empty set if lo > hi).
  static IntervalSet Of(double lo, double hi);

  /// Set union with coalescing of adjacent integer intervals.
  static IntervalSet Union(const IntervalSet& a, const IntervalSet& b);
  /// Set intersection.
  static IntervalSet Intersect(const IntervalSet& a, const IntervalSet& b);

  /// True if the integer `code` is inside the set.
  bool Contains(double code) const;
};

/// Converts one condition into an interval set in the code domain.
/// String literals resolve through the transform's dictionary; unknown
/// categories yield the empty set (match nothing), which mirrors SQL.
IntervalSet ConditionToIntervals(const Condition& condition,
                                 const ColumnTransform& transform);

/// Per-bin coverage vector with Theorem-2 bounds.
struct Coverage {
  std::vector<double> beta;  ///< estimate (Eqs. 14–16)
  std::vector<double> lo;    ///< lower bound (Eq. 22)
  std::vector<double> hi;    ///< upper bound (Eq. 23)
};

/// Computes coverage of `pred` over every bin of `dim`. `min_points` is M
/// (passing bins have count >= M and get the tight chi-squared bounds).
Coverage ComputeCoverage(const HistogramDim& dim, const IntervalSet& pred,
                         uint64_t min_points,
                         const Chi2CriticalCache& critical);

/// Interval-localized coverage written into caller-owned buffers (the query
/// engine's scratch arena): binary-searches the sorted bin edges so only
/// bins overlapping predicate pieces are visited, and bins fully inside a
/// piece are emitted in bulk without touching their metadata. Produces
/// values identical to ComputeCoverage; bins outside [begin, end) are
/// implicitly zero and their buffer slots are left unwritten.
struct CoverageSpan {
  double* beta = nullptr;  ///< caller buffer, dim.NumBins() doubles
  double* lo = nullptr;
  double* hi = nullptr;
  size_t begin = 0;        ///< touched bin range [begin, end)
  size_t end = 0;
  /// Optional caller buffer (2*max_runs uint32s) for fully-covered run
  /// descriptors: runs[2i], runs[2i+1] delimit a bin range [b, e) whose
  /// every bin is fully covered by edge inspection. Such bins are written
  /// as β = β− = β+ = 1 in bulk instead of accumulating and finishing
  /// per bin, and downstream consumers (Eq. 29 weighting) turn whole runs
  /// into weights straight from the bin counts. Runs are ascending and
  /// disjoint (at most one per predicate piece). Note: zero-count bins
  /// inside a run also read 1 (the reference path leaves them 0); every
  /// consumer multiplies coverage by the bin count or its cells, so the
  /// difference never reaches a result.
  uint32_t* runs = nullptr;
  size_t max_runs = 0;  ///< capacity of `runs`, in run pairs
  size_t n_runs = 0;    ///< filled by ComputeCoverageInto
  /// Optional caller buffer (2*max_segs uint32s) for candidate segments:
  /// the merged per-piece bin overlap ranges. Bins of [begin, end) outside
  /// every segment have coverage exactly zero, so consumers walking the
  /// span (the per-row cell reductions) can skip the gaps of scattered
  /// multi-piece predicates instead of scanning the whole span. Ascending
  /// and disjoint; at most one per piece.
  uint32_t* segs = nullptr;
  size_t max_segs = 0;
  size_t n_segs = 0;
};
void ComputeCoverageInto(const HistogramDim& dim, const IntervalSet& pred,
                         uint64_t min_points,
                         const Chi2CriticalCache& critical,
                         CoverageSpan* out);

/// O(log k): total bin count over `pred` when every overlapped bin is
/// fully covered, computed from count_prefix span sums (requires
/// HistogramDim::BuildCountPrefix). Returns false when any bin is only
/// partially covered — callers then take the general coverage path. The
/// accumulated total is identical to the reference COUNT weighting total
/// (integer additions below 2^53 are exact in double under any grouping).
bool CountFullyCovered(const HistogramDim& dim, const IntervalSet& pred,
                       double* total);

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_QUERY_COVERAGE_H_
