#include "query/segment_exec.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace pairwisehist {

namespace {

// ---------------------------------------------------------------------------
// Planner pruning: can any row of a segment satisfy the WHERE clause, given
// the segment's exact per-column [min, max] over non-null rows? Sound
// because rows with a null never satisfy a leaf condition (engine
// semantics), so "no non-null value can pass" means "no row can pass".

bool LeafMayMatch(const Condition& c, const PairwiseHist& syn,
                  const SegmentMeta& meta) {
  auto idx = syn.ColumnIndex(c.column);
  if (!idx.ok()) return true;  // compile surfaces the real error
  const size_t col = idx.value();
  const ColumnTransform& tr = syn.transform(col);

  if (tr.type == DataType::kCategorical || c.is_string) {
    // Equality against a category this segment has never seen matches
    // nothing here (the canonical dictionary only grows, so old segments
    // provably lack late-appended categories).
    if (c.is_string && tr.type == DataType::kCategorical &&
        c.op == CmpOp::kEq) {
      return tr.EncodeCategory(c.text_value).ok();
    }
    return true;
  }

  if (col >= meta.ranges.valid.size() || !meta.ranges.valid[col]) {
    return true;  // unknown range (legacy file / all-null segment)
  }
  // Widen by one code spacing: raw values round to the column's decimal
  // precision on the way into the code domain, so a literal within one
  // spacing of the range edge could still select rows.
  const double slack = tr.scale > 0 ? 1.0 / tr.scale : 1.0;
  const double lo = meta.ranges.min[col] - slack;
  const double hi = meta.ranges.max[col] + slack;
  switch (c.op) {
    case CmpOp::kLt:
      return lo < c.value;
    case CmpOp::kLe:
      return lo <= c.value;
    case CmpOp::kGt:
      return hi > c.value;
    case CmpOp::kGe:
      return hi >= c.value;
    case CmpOp::kEq:
      return lo <= c.value && c.value <= hi;
    case CmpOp::kNe:
      return true;  // conservatively assume a differing value exists
  }
  return true;
}

bool MayMatch(const PredicateNode& node, const PairwiseHist& syn,
              const SegmentMeta& meta) {
  if (node.type == PredicateNode::Type::kCondition) {
    return LeafMayMatch(node.condition, syn, meta);
  }
  const bool is_and = node.type == PredicateNode::Type::kAnd;
  for (const PredicateNode& child : node.children) {
    bool m = MayMatch(child, syn, meta);
    if (is_and && !m) return false;
    if (!is_and && m) return true;
  }
  return is_and;
}

}  // namespace

// ---------------------------------------------------------------------------
// SegmentedPlan

const Query& SegmentedPlan::query() const { return state_->query; }

size_t SegmentedPlan::PlannedSegments() const {
  return state_ == nullptr
             ? 0
             : state_->planned.load(std::memory_order_acquire);
}

size_t SegmentedPlan::PrunedSegments() const {
  if (state_ == nullptr) return 0;
  // Lock: a concurrent execution may be extending `skip` after an append.
  std::lock_guard<std::mutex> lock(state_->mu);
  size_t pruned = 0;
  for (uint8_t s : state_->skip) pruned += s;
  return pruned;
}

// ---------------------------------------------------------------------------
// SegmentedExecutor

SegmentedExecutor::SegmentedExecutor(const SynopsisSet* set,
                                     SegmentedExecOptions options)
    : set_(set), options_(options) {
  Status st = Refresh();
  (void)st;  // engine construction cannot fail; Refresh only grows vectors
}

SegmentedExecutor::~SegmentedExecutor() = default;
SegmentedExecutor::SegmentedExecutor(SegmentedExecutor&&) noexcept = default;
SegmentedExecutor& SegmentedExecutor::operator=(SegmentedExecutor&&) noexcept =
    default;

Status SegmentedExecutor::Refresh() {
  // A structural change (compaction replaced a run of segments) shifts the
  // index space: engine i may now face a different segment, so every
  // engine rebuilds. Pure growth (appends) keeps the prefix and only adds.
  const uint64_t sgen = set_->structure_generation();
  if (sgen != structure_seen_) {
    engines_.clear();
    structure_seen_ = sgen;
  }
  const size_t nseg = set_->NumSegments();
  for (size_t i = engines_.size(); i < nseg; ++i) {
    engines_.push_back(
        std::make_unique<AqpEngine>(&set_->synopsis(i), options_.engine));
  }
  if (pool_ == nullptr && engines_.size() > 1 && options_.exec_threads != 1) {
    pool_ = std::make_unique<TaskPool>(options_.exec_threads);
  }
  return Status::OK();
}

Status SegmentedExecutor::EnsurePlans(SegmentedPlan::State* st) const {
  const size_t nseg = engines_.size();
  const uint64_t gen = set_->meta_generation();
  const uint64_t sgen = structure_seen_;
  if (st->planned.load(std::memory_order_acquire) >= nseg &&
      st->meta_gen.load(std::memory_order_acquire) == gen &&
      st->structure_gen.load(std::memory_order_acquire) == sgen) {
    return Status::OK();
  }
  std::lock_guard<std::mutex> lock(st->mu);
  size_t planned = st->planned.load(std::memory_order_relaxed);
  if (planned >= nseg &&
      st->meta_gen.load(std::memory_order_relaxed) == gen &&
      st->structure_gen.load(std::memory_order_relaxed) == sgen) {
    return Status::OK();
  }
  if (st->structure_gen.load(std::memory_order_relaxed) != sgen) {
    // Compaction replaced segments: every compiled plan may target a
    // retired segment. Discard and recompile the whole set (this is what
    // keeps prepared queries valid across Db::Compact — a cached plan can
    // never read a retired segment).
    st->plans.clear();
    planned = 0;
  }

  // Compile the missing tail into temporaries first so a failure leaves
  // the plan exactly as it was.
  std::vector<CompiledQuery> fresh;
  for (size_t i = planned; i < nseg; ++i) {
    PH_ASSIGN_OR_RETURN(CompiledQuery plan, engines_[i]->Compile(st->query));
    fresh.push_back(std::move(plan));
  }
  for (CompiledQuery& plan : fresh) st->plans.push_back(std::move(plan));
  // Metadata changed (segments sealed, or a kMutateBins append widened
  // the last segment's ranges): recompute every prune flag, not just the
  // tail, so a previously pruned segment that gained matching rows is
  // re-admitted.
  st->skip.assign(nseg, 0);
  if (options_.prune && st->query.where.has_value()) {
    for (size_t i = 0; i < nseg; ++i) {
      st->skip[i] =
          MayMatch(*st->query.where, set_->synopsis(i), set_->meta(i))
              ? 0
              : 1;
    }
  }
  st->meta_gen.store(gen, std::memory_order_release);
  st->structure_gen.store(sgen, std::memory_order_release);
  st->planned.store(nseg, std::memory_order_release);
  return Status::OK();
}

StatusOr<SegmentedPlan> SegmentedExecutor::Prepare(const Query& query) const {
  if (engines_.empty()) {
    return Status::Internal("SegmentedExecutor has no segments");
  }
  SegmentedPlan plan;
  plan.state_ = std::make_shared<SegmentedPlan::State>();
  plan.state_->query = query;
  PH_RETURN_IF_ERROR(EnsurePlans(plan.state_.get()));
  return plan;
}

Status SegmentedExecutor::ExecuteInto(const SegmentedPlan& plan,
                                      QueryResult* result) const {
  if (!plan.valid()) {
    return Status::Internal("SegmentedPlan used before Prepare");
  }
  SegmentedPlan::State* st = plan.state_.get();
  PH_RETURN_IF_ERROR(EnsurePlans(st));

  const size_t nseg = engines_.size();
  if (nseg == 1) {
    // Monolithic special case: the plain engine path, byte-identical to
    // the pre-segmentation behaviour (including zero allocations).
    return engines_[0]->ExecuteInto(st->plans[0], result);
  }

  std::vector<PartialResult> parts(nseg);
  std::vector<Status> statuses(nseg, Status::OK());
  auto work = [&](size_t i) {
    if (st->skip[i]) return;  // pruned: contributes nothing
    statuses[i] = engines_[i]->ExecutePartialInto(st->plans[i], &parts[i]);
  };
  size_t live = 0;
  for (size_t i = 0; i < nseg; ++i) live += st->skip[i] ? 0 : 1;
  if (live > 1 && pool_ != nullptr) {
    pool_->Run(nseg, work);
  } else {
    for (size_t i = 0; i < nseg; ++i) work(i);
  }
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  if (options_.ledger != nullptr && st->query.group_by.empty()) {
    RecordFeedback(*st, parts);
  }

  // Deterministic serial merge in segment order: results are bit-equal for
  // any exec_threads value. The merge runs on the same kernel tier as the
  // per-segment executions.
  MergePartialResults(st->query.func, !st->query.group_by.empty(), parts,
                      result, &GetKernels(options_.engine.kernels));
  return Status::OK();
}

void SegmentedExecutor::RecordFeedback(
    const SegmentedPlan::State& st,
    const std::vector<PartialResult>& parts) const {
  for (size_t i = 0; i < parts.size() && i < set_->NumSegments(); ++i) {
    if (i < st.skip.size() && st.skip[i]) continue;
    if (parts[i].groups.empty()) continue;
    const PartialAggregate& a = parts[i].groups[0].agg;
    if (a.empty) continue;
    double rel;
    if (st.query.func == AggFunc::kCount) {
      rel = (a.count_hi - a.count_lo) / std::max(1.0, a.count);
    } else {
      rel = (a.value.upper - a.value.lower) /
            std::max(1e-12, std::fabs(a.value.estimate));
    }
    options_.ledger->Record(set_->meta(i).row_begin, rel);
  }
}

StatusOr<QueryResult> SegmentedExecutor::Execute(
    const SegmentedPlan& plan) const {
  QueryResult result;
  PH_RETURN_IF_ERROR(ExecuteInto(plan, &result));
  return result;
}

}  // namespace pairwisehist
