#include "query/engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <mutex>

#include "common/stats.h"
#include "query/exec_scratch.h"
#include "query/sql_parser.h"

namespace pairwisehist {

namespace {

constexpr double kWeightEps = 1e-9;
const double kNaN = std::numeric_limits<double>::quiet_NaN();

// Eq. 29's two-sided 98% normal quantile, hoisted out of the per-call path
// (it was recomputed per execution via Acklam's approximation + a Halley
// refinement step).
double Z99() {
  static const double z = NormalQuantile(0.99);
  return z;
}

std::string FormatGroupLabel(const ColumnTransform& tr, uint64_t code) {
  if (tr.type == DataType::kCategorical) {
    auto name = tr.DecodeCategory(code);
    if (name.ok()) return name.value();
  }
  double raw = tr.Decode(code);
  char buf[64];
  if (raw == static_cast<long long>(raw)) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(raw));
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", raw);
  }
  return buf;
}

// Effective per-bin value interval and midpoint after intersecting the bin
// with the aggregation column's own conjunctive predicate (within-bin
// uniformity model). Falls back to the raw metadata when there is no clip
// or no overlap.
struct BinVals {
  double v_lo;
  double v_hi;
  double mid;
};

BinVals EffectiveBin(const HistogramDim& hist, size_t t,
                     const IntervalSet* clip) {
  BinVals out{hist.v_min[t], hist.v_max[t], hist.Midpoint(t)};
  if (clip == nullptr || clip->IsAll() || clip->Empty()) return out;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  double total_len = 0, weighted = 0;
  for (const auto& piece : clip->pieces) {
    double a = std::max(piece.first, out.v_lo);
    double b = std::min(piece.second, out.v_hi);
    if (b < a) continue;
    double len = b - a + 1.0;  // integer-uniform model
    total_len += len;
    weighted += len * (a + b) / 2.0;
    lo = std::min(lo, a);
    hi = std::max(hi, b);
  }
  if (total_len <= 0) return out;  // no overlap: keep raw metadata
  out.v_lo = lo;
  out.v_hi = hi;
  out.mid = weighted / total_len;
  return out;
}

// ---------------------------------------------------------------------------
// Range-restricted execution views. Bins outside [begin, end) are implicitly
// exactly zero; every accumulation below only adds zero terms for them, so
// restricting the loops leaves all results identical to full scans.

/// Per-bin satisfaction probabilities with bounds, on some grid, backed by
/// the scratch arena.
struct ProbSpan {
  double* p = nullptr;
  double* lo = nullptr;
  double* hi = nullptr;
  size_t begin = 0;
  size_t end = 0;
};

/// Per-bin weightings (w, w−, w+) backed by the scratch arena or, on the
/// reference path, the Weightings vectors.
struct WtSpan {
  double* w = nullptr;
  double* lo = nullptr;
  double* hi = nullptr;
  size_t begin = 0;
  size_t end = 0;
};

// ---------------------------------------------------------------------------
// Aggregation (Table 3), shared by the reference path (full range over the
// Weightings vectors) and the fast path (touched range over arena spans).

AggResult AggregateImpl(const PairwiseHist& ph, const AqpEngineOptions& options,
                        AggFunc func, size_t agg_col, const AggGrid& grid,
                        const WtSpan& wt, bool single_column,
                        const IntervalSet* agg_clip, ExecArena& arena) {
  const HistogramDim& hist = *grid.dim;
  const ColumnTransform& tr = ph.transform(agg_col);
  const size_t k = hist.NumBins();
  const size_t rb = wt.begin;
  const size_t re = wt.end;
  const double rho = ph.sampling_ratio();
  const uint64_t m_points = ph.min_points();

  AggResult r;
  double total = 0;
  for (size_t t = rb; t < re; ++t) total += wt.w[t];

  if (func == AggFunc::kCount) {
    double total_lo = 0, total_hi = 0;
    for (size_t t = rb; t < re; ++t) total_lo += wt.lo[t];
    for (size_t t = rb; t < re; ++t) total_hi += wt.hi[t];
    r.estimate = total / rho;
    r.lower = total_lo / rho;
    r.upper = total_hi / rho;
    r.empty_selection = total <= kWeightEps;
    return r;
  }
  if (total <= kWeightEps) {
    r.empty_selection = true;
    r.estimate = r.lower = r.upper = kNaN;
    return r;
  }

  if (!options.clip_agg_values) agg_clip = nullptr;

  // Effective per-bin values, midpoints and weighted-centre bounds in the
  // code domain (touched range only; untouched bins carry zero weight).
  double* v_lo = arena.Alloc(k);
  double* v_hi = arena.Alloc(k);
  double* c = arena.Alloc(k);
  double* c_lo = arena.Alloc(k);
  double* c_hi = arena.Alloc(k);
  for (size_t t = rb; t < re; ++t) {
    BinVals bv = EffectiveBin(hist, t, agg_clip);
    v_lo[t] = bv.v_lo;
    v_hi[t] = bv.v_hi;
    c[t] = bv.mid;
    CentreBounds cb = ph.WeightedCentreBounds(hist, t);
    c_lo[t] = std::clamp(cb.lo, bv.v_lo, bv.v_hi);
    c_hi[t] = std::clamp(cb.hi, c_lo[t], bv.v_hi);
  }
  auto decode = [&](double code) { return tr.Decode(code); };

  switch (func) {
    case AggFunc::kSum: {
      double est = 0;
      double lo = 0, hi = 0;
      for (size_t t = rb; t < re; ++t) {
        est += wt.w[t] * decode(c[t]);
        // Bounds over the per-bin corner combinations of weight and centre
        // (safe also when decoded values are negative).
        double raw_lo = decode(c_lo[t]);
        double raw_hi = decode(c_hi[t]);
        lo += std::min({wt.lo[t] * raw_lo, wt.lo[t] * raw_hi,
                        wt.hi[t] * raw_lo, wt.hi[t] * raw_hi});
        hi += std::max({wt.lo[t] * raw_lo, wt.lo[t] * raw_hi,
                        wt.hi[t] * raw_lo, wt.hi[t] * raw_hi});
      }
      r.estimate = est / rho;
      r.lower = lo / rho;
      r.upper = hi / rho;
      return r;
    }
    case AggFunc::kAvg: {
      double num = 0;
      for (size_t t = rb; t < re; ++t) num += wt.w[t] * c[t];
      r.estimate = decode(num / total);
      // Evaluate both weighting extrema (w• placeholder in Table 3).
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      for (const double* wv : {wt.lo, wt.hi}) {
        double tw = 0, nlo = 0, nhi = 0;
        for (size_t t = rb; t < re; ++t) {
          tw += wv[t];
          nlo += wv[t] * c_lo[t];
          nhi += wv[t] * c_hi[t];
        }
        if (tw > kWeightEps) {
          lo = std::min(lo, nlo / tw);
          hi = std::max(hi, nhi / tw);
        }
      }
      if (!std::isfinite(lo)) {
        lo = hi = num / total;
      }
      r.lower = decode(std::min(lo, num / total));
      r.upper = decode(std::max(hi, num / total));
      return r;
    }
    case AggFunc::kVar: {
      double num1 = 0, num2 = 0;
      for (size_t t = rb; t < re; ++t) {
        double within = 0.0;
        if (options.var_within_bin && hist.unique[t] > 1) {
          double span = v_hi[t] - v_lo[t];
          within = span * span / 12.0;
        }
        num1 += wt.w[t] * c[t];
        num2 += wt.w[t] * (c[t] * c[t] + within);
      }
      double mean = num1 / total;
      double var_code = std::max(0.0, num2 / total - mean * mean);
      double scale2 = tr.scale * tr.scale;
      r.estimate = var_code / scale2;
      // ξ∓ per Eqs. 38–39 around the estimated (code-domain) mean.
      double* xi_lo = arena.Alloc(k);
      double* xi_hi = arena.Alloc(k);
      for (size_t t = rb; t < re; ++t) {
        if (v_hi[t] < mean) {
          xi_lo[t] = v_hi[t];
        } else if (v_lo[t] > mean) {
          xi_lo[t] = v_lo[t];
        } else {
          xi_lo[t] = mean;
        }
        xi_hi[t] = (std::fabs(mean - v_lo[t]) > std::fabs(v_hi[t] - mean))
                       ? v_lo[t]
                       : v_hi[t];
      }
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      for (const double* wv : {wt.lo, wt.hi}) {
        double tw = 0;
        for (size_t t = rb; t < re; ++t) tw += wv[t];
        if (tw <= kWeightEps) continue;
        double l1 = 0, l2 = 0, h1 = 0, h2 = 0;
        for (size_t t = rb; t < re; ++t) {
          l1 += wv[t] * xi_lo[t];
          l2 += wv[t] * xi_lo[t] * xi_lo[t];
          h1 += wv[t] * xi_hi[t];
          h2 += wv[t] * xi_hi[t] * xi_hi[t];
        }
        lo = std::min(lo, l2 / tw - (l1 / tw) * (l1 / tw));
        hi = std::max(hi, h2 / tw - (h1 / tw) * (h1 / tw));
      }
      if (!std::isfinite(lo)) {
        lo = hi = var_code;
      }
      r.lower = std::max(0.0, std::min(lo / scale2, r.estimate));
      r.upper = std::max(r.estimate, hi / scale2);
      return r;
    }
    case AggFunc::kMin:
    case AggFunc::kMax: {
      const bool is_min = func == AggFunc::kMin;
      auto first_idx = [&](const double* wv, double threshold) -> int {
        if (is_min) {
          for (size_t t = rb; t < re; ++t) {
            if (wv[t] > threshold) return static_cast<int>(t);
          }
        } else {
          for (size_t t = re; t-- > rb;) {
            if (wv[t] > threshold) return static_cast<int>(t);
          }
        }
        return -1;
      };

      int t_est = first_idx(wt.w, kWeightEps);
      if (t_est < 0) {
        r.empty_selection = true;
        r.estimate = r.lower = r.upper = kNaN;
        return r;
      }
      {
        size_t t = static_cast<size_t>(t_est);
        bool flip = single_column && hist.unique[t] == 2 &&
                    wt.w[t] < static_cast<double>(hist.counts[t]) / 2.0;
        double v = is_min ? (flip ? v_hi[t] : v_lo[t])
                          : (flip ? v_lo[t] : v_hi[t]);
        r.estimate = decode(v);
      }
      // Outer bound (MIN lower / MAX upper): widest plausible bin from w+.
      {
        int ti = first_idx(wt.hi, kWeightEps);
        size_t t =
            ti < 0 ? static_cast<size_t>(t_est) : static_cast<size_t>(ti);
        bool flip = single_column && hist.unique[t] == 2 &&
                    wt.hi[t] < static_cast<double>(hist.counts[t]) / 5.0;
        double v = is_min ? (flip ? v_hi[t] : v_lo[t])
                          : (flip ? v_lo[t] : v_hi[t]);
        if (is_min) {
          r.lower = decode(v);
        } else {
          r.upper = decode(v);
        }
      }
      // Inner bound (MIN upper / MAX lower): first bin with confident
      // weight (w− > 1/2), tightened by fully covered sub-bins (Eq. 32).
      {
        int ti = first_idx(wt.lo, 0.5);
        size_t t =
            ti < 0 ? static_cast<size_t>(t_est) : static_cast<size_t>(ti);
        double v;
        if (single_column && hist.unique[t] > 2 &&
            hist.counts[t] >= m_points) {
          int s = TerrellScottSubBins(hist.unique[t]);
          double delta = (v_hi[t] - v_lo[t]) / s;
          double a = std::floor(s * wt.lo[t] /
                                static_cast<double>(hist.counts[t]));
          v = is_min ? v_hi[t] - a * delta : v_lo[t] + a * delta;
        } else {
          v = is_min ? v_hi[t] : v_lo[t];
        }
        if (is_min) {
          r.upper = decode(v);
        } else {
          r.lower = decode(v);
        }
      }
      if (r.lower > r.upper) std::swap(r.lower, r.upper);
      r.lower = std::min(r.lower, r.estimate);
      r.upper = std::max(r.upper, r.estimate);
      return r;
    }
    case AggFunc::kMedian: {
      // Rule changes here (half-mass ties, unique==2, bound walk) must be
      // mirrored in MergeMedian (partial_agg.cc), which reimplements this
      // walk over cross-segment raw-domain bins.
      auto median_bin = [&](const double* wv) -> int {
        double tw = 0;
        for (size_t t = rb; t < re; ++t) tw += wv[t];
        if (tw <= kWeightEps) return -1;
        double acc = 0;
        for (size_t t = rb; t < re; ++t) {
          acc += wv[t];
          if (acc >= tw / 2.0) return static_cast<int>(t);
        }
        return static_cast<int>(re) - 1;
      };
      int t_est = median_bin(wt.w);
      if (t_est < 0) {
        r.empty_selection = true;
        r.estimate = r.lower = r.upper = kNaN;
        return r;
      }
      size_t t = static_cast<size_t>(t_est);
      double before = 0;
      for (size_t u = rb; u < t; ++u) before += wt.w[u];
      double f = (total / 2.0 - before) / std::max(wt.w[t], kWeightEps);
      f = std::clamp(f, 0.0, 1.0);
      if (hist.unique[t] == 2) {
        r.estimate = decode(f < 0.5 ? v_lo[t] : v_hi[t]);
      } else {
        r.estimate = decode(v_lo[t] + (v_hi[t] - v_lo[t]) * f);
      }
      int t_lo = t_est, t_hi = t_est;
      for (const double* wv : {wt.lo, wt.hi}) {
        int tb = median_bin(wv);
        if (tb >= 0) {
          t_lo = std::min(t_lo, tb);
          t_hi = std::max(t_hi, tb);
        }
      }
      r.lower = decode(v_lo[static_cast<size_t>(t_lo)]);
      r.upper = decode(v_hi[static_cast<size_t>(t_hi)]);
      r.lower = std::min(r.lower, r.estimate);
      r.upper = std::max(r.upper, r.estimate);
      return r;
    }
    case AggFunc::kCount:
      break;  // handled above
  }
  return r;
}

// Fills mergeable sufficient statistics (see partial_agg.h) from computed
// weightings: the matching mass (COUNT semantics, de-sampled by 1/ρ), the
// function-specific AggResult and — for VAR / MEDIAN — the extra
// statistics the cross-segment merge needs.
void FillPartialFromWeights(const PairwiseHist& ph,
                            const AqpEngineOptions& options, AggFunc func,
                            size_t agg_col, const AggGrid& grid,
                            const WtSpan& wt, bool single,
                            const IntervalSet* agg_clip, ExecArena& arena,
                            PartialAggregate* out) {
  const double rho = ph.sampling_ratio();
  double total = 0, total_lo = 0, total_hi = 0;
  for (size_t t = wt.begin; t < wt.end; ++t) total += wt.w[t];
  for (size_t t = wt.begin; t < wt.end; ++t) total_lo += wt.lo[t];
  for (size_t t = wt.begin; t < wt.end; ++t) total_hi += wt.hi[t];
  out->count = total / rho;
  out->count_lo = total_lo / rho;
  out->count_hi = total_hi / rho;
  out->empty = total <= kWeightEps;
  out->value = AggResult{};
  out->mean = AggResult{};
  out->median_bins.clear();
  if (func == AggFunc::kCount || out->empty) return;

  if (func == AggFunc::kMedian) {
    // Export the touched weighted bins in the raw value domain; the merge
    // walks the combined weighted CDF exactly like Table 3's rule.
    const HistogramDim& hist = *grid.dim;
    const ColumnTransform& tr = ph.transform(agg_col);
    if (!options.clip_agg_values) agg_clip = nullptr;
    auto decode = [&](double code) { return tr.Decode(code); };
    for (size_t t = wt.begin; t < wt.end; ++t) {
      if (wt.w[t] <= 0 && wt.lo[t] <= 0 && wt.hi[t] <= 0) continue;
      BinVals bv = EffectiveBin(hist, t, agg_clip);
      PartialAggregate::MedianBin mb;
      mb.v_lo = decode(bv.v_lo);
      mb.v_hi = decode(bv.v_hi);
      mb.w = wt.w[t] / rho;
      mb.w_lo = wt.lo[t] / rho;
      mb.w_hi = wt.hi[t] / rho;
      mb.unique = hist.unique[t];
      out->median_bins.push_back(mb);
    }
    return;
  }

  out->value = AggregateImpl(ph, options, func, agg_col, grid, wt, single,
                             agg_clip, arena);
  if (func == AggFunc::kVar) {
    out->mean = AggregateImpl(ph, options, AggFunc::kAvg, agg_col, grid, wt,
                              single, agg_clip, arena);
  }
}

// Eq. 29 weightings over the touched range (identical formulas to the
// reference WeightsFromProb; untouched bins carry exactly zero weight).
void WeightsInto(const PairwiseHist& ph, const HistogramDim& dim,
                 const ProbSpan& prob, const WtSpan& wt) {
  const double rho = ph.sampling_ratio();
  const double n_total = static_cast<double>(ph.total_rows());
  const double n_sample = static_cast<double>(ph.sample_rows());
  const bool widen = rho < 1.0 && n_total > 1;
  const double z = Z99();
  const double fpc = widen ? (n_total - n_sample) / (n_total - 1.0) : 0.0;

  for (size_t t = prob.begin; t < prob.end; ++t) {
    double h = static_cast<double>(dim.counts[t]);
    wt.w[t] = h * prob.p[t];
    double lo = h * prob.lo[t];
    double hi = h * prob.hi[t];
    if (widen && h > 0) {
      double beta_lo = std::clamp(lo / h, 0.0, 1.0);
      double beta_hi = std::clamp(hi / h, 0.0, 1.0);
      lo -= z * std::sqrt(h * beta_lo * (1.0 - beta_lo) * fpc);
      hi += z * std::sqrt(h * beta_hi * (1.0 - beta_hi) * fpc);
    }
    wt.lo[t] = std::clamp(lo, 0.0, h);
    wt.hi[t] = std::clamp(hi, 0.0, h);
  }
}

// ---------------------------------------------------------------------------
// Fast-path per-leaf probabilities: sparse cell index + localized coverage.

ProbSpan LeafProbFast(const PairwiseHist& ph, ExecArena& arena, size_t agg_col,
                      size_t col, const IntervalSet& intervals,
                      const std::vector<uint32_t>& g2ta, const AggGrid& grid) {
  const HistogramDim& gdim = *grid.dim;
  const size_t k = gdim.NumBins();
  ProbSpan out;

  if (col == agg_col) {
    // Same-column predicate: localized coverage over the aggregation grid.
    CoverageSpan cov;
    cov.beta = arena.Alloc(k);
    cov.lo = arena.Alloc(k);
    cov.hi = arena.Alloc(k);
    ComputeCoverageInto(gdim, intervals, ph.min_points(), ph.critical_cache(),
                        &cov);
    out.p = cov.beta;
    out.lo = cov.lo;
    out.hi = cov.hi;
    out.begin = cov.begin;
    out.end = cov.end;
    return out;
  }

  if (grid.IsPair() && col == grid.pair_pred_col) {
    // The grid is this leaf's own pair: scatter the covered pred bins'
    // non-zero cells into the grid bins. Each grid bin receives its
    // contributions in ascending pred-bin order, matching the reference
    // row scan's addition order exactly.
    const HistogramDim& pred_dim = grid.pair.pred_dim();
    const size_t kp = pred_dim.NumBins();
    CoverageSpan cov;
    cov.beta = arena.Alloc(kp);
    cov.lo = arena.Alloc(kp);
    cov.hi = arena.Alloc(kp);
    ComputeCoverageInto(pred_dim, intervals, ph.min_points(),
                        ph.critical_cache(), &cov);
    out.p = arena.AllocZeroed(k);
    out.lo = arena.AllocZeroed(k);
    out.hi = arena.AllocZeroed(k);
    size_t gmin = k, gmax = 0;
    for (size_t tp = cov.begin; tp < cov.end; ++tp) {
      double cb = cov.beta[tp];
      if (cb == 0.0) continue;  // lo/hi are zero too; zero terms are exact
      double cl = cov.lo[tp];
      double ch = cov.hi[tp];
      PairView::CellRun run = grid.pair.PredRow(tp);
      for (size_t e = 0; e < run.n; ++e) {
        size_t g = run.bin[e];
        double cell = static_cast<double>(run.count[e]);
        out.p[g] += cell * cb;
        out.lo[g] += cell * cl;
        out.hi[g] += cell * ch;
        gmin = std::min(gmin, g);
        gmax = std::max(gmax, g);
      }
    }
    if (gmin > gmax) {
      out.begin = out.end = 0;
      return out;
    }
    for (size_t g = gmin; g <= gmax; ++g) {
      double h = static_cast<double>(gdim.counts[g]);
      if (h <= 0) continue;
      double acc = out.p[g], acc_lo = out.lo[g], acc_hi = out.hi[g];
      out.p[g] = std::clamp(acc / h, 0.0, 1.0);
      out.lo[g] = std::clamp(acc_lo / h, 0.0, out.p[g]);
      out.hi[g] = std::clamp(acc_hi / h, out.p[g], 1.0);
    }
    out.begin = gmin;
    out.end = gmax + 1;
    return out;
  }

  // Cross-column leaf on a different pair (see the reference LeafProb for
  // the semantics): conditional probability per refined bin of that pair's
  // agg dimension, rescaled by the precomputed per-parent non-null
  // fraction, transferred onto the grid through the compile-time g2ta map.
  PairView pair = ph.GetPair(agg_col, col);
  const HistogramDim& pred_dim = pair.pred_dim();
  const HistogramDim& agg_dim = pair.agg_dim();
  const size_t kp = pred_dim.NumBins();
  const size_t ka = agg_dim.NumBins();
  CoverageSpan cov;
  cov.beta = arena.Alloc(kp);
  cov.lo = arena.Alloc(kp);
  cov.hi = arena.Alloc(kp);
  ComputeCoverageInto(pred_dim, intervals, ph.min_points(),
                      ph.critical_cache(), &cov);

  double* pa = arena.AllocZeroed(ka);
  double* pa_lo = arena.AllocZeroed(ka);
  double* pa_hi = arena.AllocZeroed(ka);
  size_t ta_min = ka, ta_max = 0;
  for (size_t tp = cov.begin; tp < cov.end; ++tp) {
    double cb = cov.beta[tp];
    if (cb == 0.0) continue;
    double cl = cov.lo[tp];
    double ch = cov.hi[tp];
    PairView::CellRun run = pair.PredRow(tp);
    for (size_t e = 0; e < run.n; ++e) {
      size_t ta = run.bin[e];
      double cell = static_cast<double>(run.count[e]);
      pa[ta] += cell * cb;
      pa_lo[ta] += cell * cl;
      pa_hi[ta] += cell * ch;
      ta_min = std::min(ta_min, ta);
      ta_max = std::max(ta_max, ta);
    }
  }

  const HistogramDim& agg1d = ph.hist1d(agg_col);
  const size_t k1 = agg1d.NumBins();
  double* num1 = arena.AllocZeroed(k1);
  double* num1_lo = arena.AllocZeroed(k1);
  double* num1_hi = arena.AllocZeroed(k1);
  if (ta_min <= ta_max) {
    for (size_t ta = ta_min; ta <= ta_max; ++ta) {
      double acc = pa[ta], acc_lo = pa_lo[ta], acc_hi = pa_hi[ta];
      double h = static_cast<double>(agg_dim.counts[ta]);
      if (h > 0) {
        pa[ta] = std::clamp(acc / h, 0.0, 1.0);
        pa_lo[ta] = std::clamp(acc_lo / h, 0.0, pa[ta]);
        pa_hi[ta] = std::clamp(acc_hi / h, pa[ta], 1.0);
      }
      size_t parent = agg_dim.parent.empty() ? ta : agg_dim.parent[ta];
      num1[parent] += acc;
      num1_lo[parent] += acc_lo;
      num1_hi[parent] += acc_hi;
    }
  }
  double* p1 = arena.AllocZeroed(k1);
  double* p1_lo = arena.AllocZeroed(k1);
  double* p1_hi = arena.AllocZeroed(k1);
  for (size_t t = 0; t < k1; ++t) {
    double h = static_cast<double>(agg1d.counts[t]);
    if (h <= 0) continue;
    p1[t] = std::clamp(num1[t] / h, 0.0, 1.0);
    p1_lo[t] = std::clamp(num1_lo[t] / h, 0.0, p1[t]);
    p1_hi[t] = std::clamp(num1_hi[t] / h, p1[t], 1.0);
  }

  // Output is confined to grid bins whose 1-d parent saw any scattered
  // mass: pa is zero outside [ta_min, ta_max] and p1 is zero outside that
  // range's parents, and a grid bin's parent equals its mapped ta's parent
  // (both refine the same 1-d edges). Everything outside is exactly zero.
  if (ta_min > ta_max) {
    out.begin = out.end = 0;
    return out;
  }
  const size_t pmin = agg_dim.parent.empty() ? ta_min : agg_dim.parent[ta_min];
  const size_t pmax = agg_dim.parent.empty() ? ta_max : agg_dim.parent[ta_max];
  size_t gb, ge;
  if (gdim.parent.empty()) {
    gb = std::min(pmin, k);
    ge = std::min(pmax + 1, k);
  } else {
    gb = static_cast<size_t>(
        std::lower_bound(gdim.parent.begin(), gdim.parent.end(),
                         static_cast<uint32_t>(pmin)) -
        gdim.parent.begin());
    ge = static_cast<size_t>(
        std::upper_bound(gdim.parent.begin(), gdim.parent.end(),
                         static_cast<uint32_t>(pmax)) -
        gdim.parent.begin());
  }
  const std::vector<double>& nnf = pair.NonNullFrac();
  out.p = arena.Alloc(k);
  out.lo = arena.Alloc(k);
  out.hi = arena.Alloc(k);
  const bool have_map = g2ta.size() == k;
  for (size_t g = gb; g < ge; ++g) {
    size_t ta = have_map
                    ? g2ta[g]
                    : agg_dim.BinIndex((gdim.edges[g] + gdim.edges[g + 1]) /
                                       2.0);
    size_t parent = gdim.parent.empty() ? g : gdim.parent[g];
    if (agg_dim.counts[ta] > 0) {
      double scale = nnf[parent];
      out.p[g] = pa[ta] * scale;
      out.lo[g] = pa_lo[ta] * scale;
      out.hi[g] = pa_hi[ta] * scale;
    } else {
      out.p[g] = p1[parent];
      out.lo[g] = p1_lo[parent];
      out.hi[g] = p1_hi[parent];
    }
  }
  out.begin = gb;
  out.end = ge;
  return out;
}

// AND/OR combination (Eq. 28) over touched ranges. Outside a child's range
// its probability is exactly zero, so an AND shrinks to the intersection
// and an OR's missing factors are exactly (1 - 0) = 1.
ProbSpan EvalNodeFast(const PairwiseHist& ph, ExecArena& arena, size_t agg_col,
                      const NormalizedPredicate& node, const AggGrid& grid) {
  if (node.type == NormalizedPredicate::Type::kLeaf) {
    return LeafProbFast(ph, arena, agg_col, node.column, node.intervals,
                        node.g2ta, grid);
  }
  const size_t k = grid.dim->NumBins();
  const bool is_and = node.type == NormalizedPredicate::Type::kAnd;
  ProbSpan acc;
  acc.p = arena.Alloc(k);
  acc.lo = arena.Alloc(k);
  acc.hi = arena.Alloc(k);
  bool first = true;
  size_t rb = 0, re = 0;
  for (const NormalizedPredicate& child : node.children) {
    ProbSpan cp = EvalNodeFast(ph, arena, agg_col, child, grid);
    if (is_and) {
      if (cp.begin >= cp.end) {
        rb = re = 0;  // one empty factor zeroes the whole conjunction
        first = false;
        break;
      }
      if (first) {
        rb = cp.begin;
        re = cp.end;
        for (size_t t = rb; t < re; ++t) {
          acc.p[t] = cp.p[t];
          acc.lo[t] = cp.lo[t];
          acc.hi[t] = cp.hi[t];
        }
        first = false;
      } else {
        rb = std::max(rb, cp.begin);
        re = std::min(re, cp.end);
        if (rb >= re) {
          rb = re = 0;
          break;
        }
        for (size_t t = rb; t < re; ++t) {
          acc.p[t] *= cp.p[t];
          acc.lo[t] *= cp.lo[t];
          acc.hi[t] *= cp.hi[t];
        }
      }
    } else {
      if (cp.begin >= cp.end) continue;  // factor (1 - 0) = 1 everywhere
      if (first) {
        rb = cp.begin;
        re = cp.end;
        for (size_t t = rb; t < re; ++t) {
          acc.p[t] = 1.0 - cp.p[t];
          acc.lo[t] = 1.0 - cp.hi[t];  // complement swaps the bounds
          acc.hi[t] = 1.0 - cp.lo[t];
        }
        first = false;
      } else {
        size_t nb = std::min(rb, cp.begin);
        size_t ne = std::max(re, cp.end);
        // Newly exposed bins were untouched by earlier children: their
        // running complement products are exactly 1.
        for (size_t t = nb; t < rb; ++t) {
          acc.p[t] = acc.lo[t] = acc.hi[t] = 1.0;
        }
        for (size_t t = re; t < ne; ++t) {
          acc.p[t] = acc.lo[t] = acc.hi[t] = 1.0;
        }
        rb = nb;
        re = ne;
        for (size_t t = cp.begin; t < cp.end; ++t) {
          acc.p[t] *= 1.0 - cp.p[t];
          acc.lo[t] *= 1.0 - cp.hi[t];
          acc.hi[t] *= 1.0 - cp.lo[t];
        }
      }
    }
  }
  acc.begin = rb;
  acc.end = re;
  if (!is_and) {
    for (size_t t = rb; t < re; ++t) {
      double p = 1.0 - acc.p[t];
      double lo = 1.0 - acc.hi[t];
      double hi = 1.0 - acc.lo[t];
      acc.p[t] = p;
      acc.lo[t] = lo;
      acc.hi[t] = hi;
    }
  }
  return acc;
}

// Shared fast-path pipeline: satisfaction probabilities for the WHERE
// tree (optionally conjoined with the per-value GROUP BY leaf), then
// Eq. 29 weights, all in the arena. Used by ExecuteScalarFast and
// ExecutePartialScalar so the two can never diverge.
WtSpan ComputeWeightSpanFast(const PairwiseHist& ph, ExecArena& arena,
                             size_t agg_col,
                             const NormalizedPredicate* where,
                             const NormalizedPredicate* extra_group_leaf,
                             const std::vector<uint32_t>* extra_g2ta,
                             const AggGrid& grid) {
  const HistogramDim& gdim = *grid.dim;
  const size_t k = gdim.NumBins();
  ProbSpan prob;
  if (where != nullptr) {
    prob = EvalNodeFast(ph, arena, agg_col, *where, grid);
  } else {
    prob.p = arena.Alloc(k);
    prob.lo = arena.Alloc(k);
    prob.hi = arena.Alloc(k);
    std::fill(prob.p, prob.p + k, 1.0);
    std::fill(prob.lo, prob.lo + k, 1.0);
    std::fill(prob.hi, prob.hi + k, 1.0);
    prob.begin = 0;
    prob.end = k;
  }
  if (extra_group_leaf != nullptr) {
    const std::vector<uint32_t>& map =
        (extra_g2ta != nullptr) ? *extra_g2ta : extra_group_leaf->g2ta;
    ProbSpan gp = LeafProbFast(ph, arena, agg_col, extra_group_leaf->column,
                               extra_group_leaf->intervals, map, grid);
    size_t rb = std::max(prob.begin, gp.begin);
    size_t re = std::min(prob.end, gp.end);
    if (rb >= re) {
      prob.begin = prob.end = 0;
    } else {
      for (size_t t = rb; t < re; ++t) {
        prob.p[t] *= gp.p[t];
        prob.lo[t] *= gp.lo[t];
        prob.hi[t] *= gp.hi[t];
      }
      prob.begin = rb;
      prob.end = re;
    }
  }

  WtSpan wt;
  wt.w = arena.Alloc(k);
  wt.lo = arena.Alloc(k);
  wt.hi = arena.Alloc(k);
  wt.begin = prob.begin;
  wt.end = prob.end;
  WeightsInto(ph, gdim, prob, wt);
  return wt;
}

// Aggregation-column clip: a WHERE-level clip wins (it precedes the group
// leaf in the combined tree); otherwise a group leaf on the aggregation
// column supplies it.
const IntervalSet* ResolveAggClip(const std::optional<IntervalSet>& clip,
                                  const NormalizedPredicate* extra_group_leaf,
                                  size_t agg_col) {
  if (clip.has_value()) return &*clip;
  if (extra_group_leaf != nullptr && extra_group_leaf->column == agg_col) {
    return &extra_group_leaf->intervals;
  }
  return nullptr;
}

// Single-column special cases also require the group leaf (if any) to be
// on the aggregation column.
bool ResolveSingle(bool plan_single,
                   const NormalizedPredicate* extra_group_leaf,
                   size_t agg_col) {
  return plan_single && (extra_group_leaf == nullptr ||
                         extra_group_leaf->column == agg_col);
}

}  // namespace

double Weightings::Total() const {
  double s = 0;
  for (double v : w) s += v;
  return s;
}
double Weightings::TotalLo() const {
  double s = 0;
  for (double v : lo) s += v;
  return s;
}
double Weightings::TotalHi() const {
  double s = 0;
  for (double v : hi) s += v;
  return s;
}

// ---------------------------------------------------------------------------
// Execution scratch: a per-execution arena plus a reusable GROUP BY leaf,
// pooled per engine so concurrent executions never share one and steady-
// state execution allocates nothing.

struct AqpEngine::ExecScratch {
  ExecArena arena;
  Node group_leaf;

  ExecScratch() {
    group_leaf.type = Node::Type::kLeaf;
    group_leaf.intervals.pieces.reserve(1);
  }
};

class AqpEngine::ScratchPool {
 public:
  ~ScratchPool() { delete slot_.load(std::memory_order_acquire); }

  /// Returns a pooled scratch, or nullptr when none is free (the caller
  /// allocates outside any lock). A single-slot atomic exchange serves the
  /// common one-executor-at-a-time case without touching the mutex; the
  /// locked overflow list only engages under real concurrency.
  std::unique_ptr<ExecScratch> Acquire() {
    ExecScratch* fast = slot_.exchange(nullptr, std::memory_order_acq_rel);
    if (fast != nullptr) return std::unique_ptr<ExecScratch>(fast);
    std::lock_guard<std::mutex> lock(mu_);
    if (overflow_.empty()) return nullptr;
    std::unique_ptr<ExecScratch> s = std::move(overflow_.back());
    overflow_.pop_back();
    return s;
  }
  void Release(std::unique_ptr<ExecScratch> s) {
    ExecScratch* expected = nullptr;
    ExecScratch* raw = s.get();
    if (slot_.compare_exchange_strong(expected, raw,
                                      std::memory_order_acq_rel)) {
      s.release();
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    overflow_.push_back(std::move(s));
  }

 private:
  std::atomic<ExecScratch*> slot_{nullptr};
  std::mutex mu_;
  std::vector<std::unique_ptr<ExecScratch>> overflow_;
};

// Leases a scratch from the engine's pool for one execution; allocates
// only when the pool is dry (first call, or more concurrent executions
// than ever before). Shared by every execution entry point.
struct AqpEngine::ScratchLease {
  explicit ScratchLease(const AqpEngine* e) : eng(e), s(e->pool_->Acquire()) {
    if (s == nullptr) s = std::make_unique<ExecScratch>();
  }
  ~ScratchLease() { eng->pool_->Release(std::move(s)); }
  ExecScratch& operator*() { return *s; }

  const AqpEngine* eng;
  std::unique_ptr<ExecScratch> s;
};

AqpEngine::AqpEngine(const PairwiseHist* synopsis, AqpEngineOptions options)
    : ph_(synopsis),
      options_(options),
      pool_(std::make_unique<ScratchPool>()) {}

AqpEngine::~AqpEngine() = default;
AqpEngine::AqpEngine(AqpEngine&&) noexcept = default;
AqpEngine& AqpEngine::operator=(AqpEngine&&) noexcept = default;

// ---------------------------------------------------------------------------
// Predicate normalization with delayed transformation.

StatusOr<AqpEngine::Node> AqpEngine::Normalize(
    const PredicateNode& node) const {
  if (node.type == PredicateNode::Type::kCondition) {
    Node leaf;
    leaf.type = Node::Type::kLeaf;
    PH_ASSIGN_OR_RETURN(leaf.column,
                        ph_->ColumnIndex(node.condition.column));
    leaf.intervals =
        ConditionToIntervals(node.condition, ph_->transform(leaf.column));
    return leaf;
  }

  const bool is_and = node.type == PredicateNode::Type::kAnd;
  Node out;
  out.type = is_and ? Node::Type::kAnd : Node::Type::kOr;

  // Consolidate leaf children that touch the same column (the paper's
  // delayed transformation): intersect for AND, union for OR.
  std::vector<Node> leaves;
  for (const auto& child : node.children) {
    PH_ASSIGN_OR_RETURN(Node c, Normalize(child));
    if (c.type == Node::Type::kLeaf) {
      bool merged = false;
      for (Node& existing : leaves) {
        if (existing.column == c.column) {
          existing.intervals =
              is_and ? IntervalSet::Intersect(existing.intervals, c.intervals)
                     : IntervalSet::Union(existing.intervals, c.intervals);
          merged = true;
          break;
        }
      }
      if (!merged) leaves.push_back(std::move(c));
    } else {
      out.children.push_back(std::move(c));
    }
  }
  for (Node& leaf : leaves) out.children.push_back(std::move(leaf));
  if (out.children.size() == 1) return std::move(out.children[0]);
  return out;
}

bool AqpEngine::HasOr(const Node& node) {
  if (node.type == Node::Type::kOr) return true;
  for (const Node& c : node.children) {
    if (HasOr(c)) return true;
  }
  return false;
}

void AqpEngine::CollectLeaves(const Node& node,
                              std::vector<const Node*>* leaves) {
  if (node.type == Node::Type::kLeaf) {
    leaves->push_back(&node);
    return;
  }
  for (const Node& c : node.children) CollectLeaves(c, leaves);
}

const IntervalSet* AqpEngine::FindAggClip(const Node& node, size_t agg_col) {
  // Sound only for conjunctive contexts: a root leaf, or a leaf directly
  // under the root AND.
  if (node.type == Node::Type::kLeaf) {
    return node.column == agg_col ? &node.intervals : nullptr;
  }
  if (node.type != Node::Type::kAnd) return nullptr;
  for (const Node& c : node.children) {
    if (c.type == Node::Type::kLeaf && c.column == agg_col) {
      return &c.intervals;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Grid selection.

AqpEngine::Grid AqpEngine::ChooseGrid(size_t agg_col, const Node* root,
                                      bool has_or) const {
  Grid grid;
  grid.dim = &ph_->hist1d(agg_col);
  if (!options_.use_pair_grid || root == nullptr) return grid;

  std::vector<const Node*> leaves;
  CollectLeaves(*root, &leaves);
  for (const Node* leaf : leaves) {
    if (leaf->column == agg_col) continue;
    PairView pv = ph_->GetPair(agg_col, leaf->column);
    if (!pv.valid()) continue;
    // The pair grid counts rows where BOTH columns are non-null. Under a
    // pure conjunction that exclusion is exact (a null predicate column
    // fails the predicate anyway); under OR it would wrongly drop rows
    // that satisfy a different branch, so only null-free columns qualify.
    if (has_or && ph_->transform(leaf->column).has_nulls) continue;
    if (pv.agg_dim().NumBins() > grid.dim->NumBins()) {
      grid.dim = &pv.agg_dim();
      grid.pair = pv;
      grid.pair_pred_col = leaf->column;
    }
  }
  return grid;
}

// ---------------------------------------------------------------------------
// Fast-path transfer maps (grid bin → refined agg bin of a leaf's pair),
// precomputed at compile time so execution avoids per-bin binary searches.

std::vector<uint32_t> AqpEngine::TransferMap(size_t agg_col, size_t col,
                                             const Grid& grid) const {
  if (col == agg_col) return {};
  if (grid.IsPair() && col == grid.pair_pred_col) return {};
  PairView pair = ph_->GetPair(agg_col, col);
  if (!pair.valid()) return {};
  const HistogramDim& gdim = *grid.dim;
  const HistogramDim& agg_dim = pair.agg_dim();
  const size_t k = gdim.NumBins();
  std::vector<uint32_t> map(k);
  for (size_t g = 0; g < k; ++g) {
    double mid = (gdim.edges[g] + gdim.edges[g + 1]) / 2.0;
    map[g] = static_cast<uint32_t>(agg_dim.BinIndex(mid));
  }
  return map;
}

void AqpEngine::FillTransferMaps(Node* node, size_t agg_col,
                                 const Grid& grid) const {
  if (node->type == Node::Type::kLeaf) {
    node->g2ta = TransferMap(agg_col, node->column, grid);
    return;
  }
  for (Node& c : node->children) FillTransferMaps(&c, agg_col, grid);
}

// ---------------------------------------------------------------------------
// Per-bin satisfaction probabilities (reference path).

AqpEngine::Prob AqpEngine::LeafProb(size_t agg_col, const Node& leaf,
                                    const Grid& grid) const {
  const HistogramDim& gdim = *grid.dim;
  const size_t k = gdim.NumBins();
  Prob prob;
  prob.p.assign(k, 0.0);
  prob.lo.assign(k, 0.0);
  prob.hi.assign(k, 0.0);

  if (leaf.column == agg_col) {
    // Same-column predicate: coverage over the aggregation grid itself.
    Coverage cov = ComputeCoverage(gdim, leaf.intervals, ph_->min_points(),
                                   ph_->critical_cache());
    prob.p = cov.beta;
    prob.lo = cov.lo;
    prob.hi = cov.hi;
    return prob;
  }

  if (grid.IsPair() && leaf.column == grid.pair_pred_col) {
    // The grid is this leaf's own pair: exact per-grid-bin probabilities
    // from the cell matrix (Eq. 27 on the refined grid).
    const HistogramDim& pred_dim = grid.pair.pred_dim();
    Coverage cov = ComputeCoverage(pred_dim, leaf.intervals,
                                   ph_->min_points(), ph_->critical_cache());
    const size_t kp = pred_dim.NumBins();
    for (size_t g = 0; g < k; ++g) {
      double h = static_cast<double>(gdim.counts[g]);
      if (h <= 0) continue;
      double acc = 0, acc_lo = 0, acc_hi = 0;
      for (size_t tp = 0; tp < kp; ++tp) {
        uint64_t cell = grid.pair.Cell(g, tp);
        if (cell == 0) continue;
        double c = static_cast<double>(cell);
        acc += c * cov.beta[tp];
        acc_lo += c * cov.lo[tp];
        acc_hi += c * cov.hi[tp];
      }
      prob.p[g] = std::clamp(acc / h, 0.0, 1.0);
      prob.lo[g] = std::clamp(acc_lo / h, 0.0, prob.p[g]);
      prob.hi[g] = std::clamp(acc_hi / h, prob.p[g], 1.0);
    }
    return prob;
  }

  // Cross-column leaf on a different pair: compute the conditional
  // probability per refined bin of THAT pair's agg dimension (Eq. 27), then
  // transfer onto the grid by locating each grid bin inside the pair's agg
  // dimension (both are refinements of the same 1-d edges; a grid bin that
  // straddles pair bins takes the value at its midpoint). This keeps the
  // full resolution of every pairwise histogram instead of collapsing
  // non-grid leaves to 1-d-parent granularity.
  PairView pair = ph_->GetPair(agg_col, leaf.column);
  const HistogramDim& pred_dim = pair.pred_dim();
  const HistogramDim& agg_dim = pair.agg_dim();
  Coverage cov = ComputeCoverage(pred_dim, leaf.intervals, ph_->min_points(),
                                 ph_->critical_cache());
  const size_t ka = agg_dim.NumBins();
  const size_t kp = pred_dim.NumBins();
  std::vector<double> pa(ka, 0.0), pa_lo(ka, 0.0), pa_hi(ka, 0.0);
  // Parent-level aggregation (exact null semantics) and the per-parent
  // fraction of 1-d rows that have the predicate column non-null — the
  // refined per-bin probabilities are conditioned on "both non-null" and
  // must be rescaled by that fraction before applying to full 1-d counts
  // (rows whose predicate column is null never satisfy the predicate).
  const HistogramDim& agg1d = ph_->hist1d(agg_col);
  const size_t k1 = agg1d.NumBins();
  std::vector<double> num1(k1, 0.0), num1_lo(k1, 0.0), num1_hi(k1, 0.0);
  std::vector<double> pair_rows1(k1, 0.0);
  for (size_t ta = 0; ta < ka; ++ta) {
    double acc = 0, acc_lo = 0, acc_hi = 0;
    for (size_t tp = 0; tp < kp; ++tp) {
      uint64_t cell = pair.Cell(ta, tp);
      if (cell == 0) continue;
      double c = static_cast<double>(cell);
      acc += c * cov.beta[tp];
      acc_lo += c * cov.lo[tp];
      acc_hi += c * cov.hi[tp];
    }
    double h = static_cast<double>(agg_dim.counts[ta]);
    if (h > 0) {
      pa[ta] = std::clamp(acc / h, 0.0, 1.0);
      pa_lo[ta] = std::clamp(acc_lo / h, 0.0, pa[ta]);
      pa_hi[ta] = std::clamp(acc_hi / h, pa[ta], 1.0);
    }
    size_t parent = agg_dim.parent.empty() ? ta : agg_dim.parent[ta];
    num1[parent] += acc;
    num1_lo[parent] += acc_lo;
    num1_hi[parent] += acc_hi;
    pair_rows1[parent] += h;
  }
  std::vector<double> p1(k1, 0.0), p1_lo(k1, 0.0), p1_hi(k1, 0.0);
  std::vector<double> non_null_frac(k1, 1.0);
  for (size_t t = 0; t < k1; ++t) {
    double h = static_cast<double>(agg1d.counts[t]);
    if (h <= 0) continue;
    p1[t] = std::clamp(num1[t] / h, 0.0, 1.0);
    p1_lo[t] = std::clamp(num1_lo[t] / h, 0.0, p1[t]);
    p1_hi[t] = std::clamp(num1_hi[t] / h, p1[t], 1.0);
    non_null_frac[t] = std::clamp(pair_rows1[t] / h, 0.0, 1.0);
  }

  for (size_t g = 0; g < k; ++g) {
    double mid = (gdim.edges[g] + gdim.edges[g + 1]) / 2.0;
    size_t ta = agg_dim.BinIndex(mid);
    size_t parent = gdim.parent.empty() ? g : gdim.parent[g];
    if (agg_dim.counts[ta] > 0) {
      double scale = non_null_frac[parent];
      prob.p[g] = pa[ta] * scale;
      prob.lo[g] = pa_lo[ta] * scale;
      prob.hi[g] = pa_hi[ta] * scale;
    } else {
      prob.p[g] = p1[parent];
      prob.lo[g] = p1_lo[parent];
      prob.hi[g] = p1_hi[parent];
    }
  }
  return prob;
}

AqpEngine::Prob AqpEngine::EvalNode(size_t agg_col, const Node& node,
                                    const Grid& grid) const {
  if (node.type == Node::Type::kLeaf) return LeafProb(agg_col, node, grid);

  const size_t k = grid.dim->NumBins();
  Prob acc;
  const bool is_and = node.type == Node::Type::kAnd;
  // AND accumulates the product; OR accumulates the complement product
  // (Eq. 28), both starting at 1.
  acc.p.assign(k, 1.0);
  acc.lo.assign(k, 1.0);
  acc.hi.assign(k, 1.0);
  for (const Node& child : node.children) {
    Prob cp = EvalNode(agg_col, child, grid);
    for (size_t t = 0; t < k; ++t) {
      if (is_and) {
        acc.p[t] *= cp.p[t];
        acc.lo[t] *= cp.lo[t];
        acc.hi[t] *= cp.hi[t];
      } else {
        acc.p[t] *= 1.0 - cp.p[t];
        acc.lo[t] *= 1.0 - cp.hi[t];  // complement swaps the bounds
        acc.hi[t] *= 1.0 - cp.lo[t];
      }
    }
  }
  if (!is_and) {
    for (size_t t = 0; t < k; ++t) {
      acc.p[t] = 1.0 - acc.p[t];
      double lo = 1.0 - acc.hi[t];
      double hi = 1.0 - acc.lo[t];
      acc.lo[t] = lo;
      acc.hi[t] = hi;
    }
  }
  return acc;
}

// ---------------------------------------------------------------------------
// Weightings.

Weightings AqpEngine::WeightsFromProb(const HistogramDim& dim,
                                      const Prob& prob) const {
  const size_t k = dim.NumBins();
  Weightings wt;
  wt.w.resize(k);
  wt.lo.resize(k);
  wt.hi.resize(k);
  ProbSpan view;
  view.p = const_cast<double*>(prob.p.data());
  view.lo = const_cast<double*>(prob.lo.data());
  view.hi = const_cast<double*>(prob.hi.data());
  view.begin = 0;
  view.end = k;
  WtSpan out{wt.w.data(), wt.lo.data(), wt.hi.data(), 0, k};
  WeightsInto(*ph_, dim, view, out);
  return wt;
}

StatusOr<Weightings> AqpEngine::ComputeWeightings(size_t agg_col,
                                                  const Query& query) const {
  Grid grid;
  grid.dim = &ph_->hist1d(agg_col);  // test hook: fixed 1-d layout
  const size_t k = grid.dim->NumBins();
  Prob prob;
  if (query.where.has_value()) {
    PH_ASSIGN_OR_RETURN(Node root, Normalize(*query.where));
    prob = EvalNode(agg_col, root, grid);
  } else {
    prob.p.assign(k, 1.0);
    prob.lo.assign(k, 1.0);
    prob.hi.assign(k, 1.0);
  }
  return WeightsFromProb(*grid.dim, prob);
}

// ---------------------------------------------------------------------------
// Compilation: everything that depends only on the query text and the
// synopsis structure (not on per-execution state) happens once here.

StatusOr<CompiledQuery> AqpEngine::Compile(const Query& query) const {
  CompiledQuery plan;
  plan.query_ = query;

  // Normalize the WHERE clause once (literal mapping into the code domain
  // + same-column consolidation).
  if (query.where.has_value()) {
    PH_ASSIGN_OR_RETURN(Node n, Normalize(*query.where));
    plan.where_ = std::move(n);
  }
  plan.has_or_ = plan.where_.has_value() && HasOr(*plan.where_);

  // GROUP BY resolution.
  if (!query.group_by.empty()) {
    PH_ASSIGN_OR_RETURN(plan.group_col_,
                        ph_->ColumnIndex(query.group_by));
    const ColumnTransform& tr = ph_->transform(plan.group_col_);
    if (tr.type == DataType::kCategorical) {
      plan.group_values_ = tr.rank_to_code.size();
    } else if (tr.max_code <= 4096) {
      plan.group_values_ = tr.max_code;
    } else {
      return Status::Unsupported(
          "GROUP BY on high-cardinality numeric column '" + query.group_by +
          "' (" + std::to_string(tr.max_code) + " distinct codes)");
    }
    if (plan.group_values_ == 0) plan.group_values_ = 1;
  }

  // Aggregation column; COUNT(*) rides on the first predicate column, or
  // the GROUP BY column when there is no predicate.
  const bool grouped = plan.grouped();
  if (!query.count_star) {
    PH_ASSIGN_OR_RETURN(plan.agg_col_, ph_->ColumnIndex(query.agg_column));
  } else {
    std::vector<std::string> pred_cols = query.PredicateColumns();
    if (!pred_cols.empty()) {
      PH_ASSIGN_OR_RETURN(plan.agg_col_, ph_->ColumnIndex(pred_cols[0]));
    } else if (grouped) {
      plan.agg_col_ = plan.group_col_;
    } else {
      // COUNT(*) with no predicate: answered exactly from N at execution.
      plan.agg_col_ = 0;
      return plan;
    }
  }

  // Grid selection looks only at which columns carry predicates, never at
  // the literal values, so for grouped queries a full-range stand-in leaf
  // on the group column selects the same grid every per-value execution
  // would.
  if (grouped) {
    Node leaf;
    leaf.type = Node::Type::kLeaf;
    leaf.column = plan.group_col_;
    leaf.intervals = IntervalSet::Of(
        1.0, static_cast<double>(ph_->transform(plan.group_col_).max_code));
    std::optional<Node> combined = plan.where_;  // copy; compile-only cost
    if (combined.has_value()) {
      if (combined->type == Node::Type::kAnd) {
        combined->children.push_back(std::move(leaf));
      } else {
        Node root;
        root.type = Node::Type::kAnd;
        root.children.push_back(std::move(*combined));
        root.children.push_back(std::move(leaf));
        combined = std::move(root);
      }
    } else {
      combined = std::move(leaf);
    }
    plan.grid_ = ChooseGrid(plan.agg_col_, &*combined, plan.has_or_);
  } else {
    plan.grid_ = ChooseGrid(plan.agg_col_,
                            plan.where_.has_value() ? &*plan.where_ : nullptr,
                            plan.has_or_);
  }

  // Same-column clip from the WHERE tree (the per-value GROUP BY leaf is
  // folded in at execution time when it lands on the aggregation column).
  if (plan.where_.has_value()) {
    const IntervalSet* clip = FindAggClip(*plan.where_, plan.agg_col_);
    if (clip != nullptr) plan.agg_clip_ = *clip;
  }

  plan.single_column_ = !query.count_star && query.SingleColumn();

  // Fast-path transfer maps: one per cross-column leaf plus one for the
  // per-value GROUP BY leaf (same column every execution).
  if (plan.where_.has_value()) {
    FillTransferMaps(&*plan.where_, plan.agg_col_, plan.grid_);
  }
  if (grouped) {
    plan.group_g2ta_ = TransferMap(plan.agg_col_, plan.group_col_, plan.grid_);
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Execution: coverage + weighting + aggregation over a compiled plan.

Weightings AqpEngine::ComputeWeightsRef(const CompiledQuery& plan,
                                        const Node* extra_group_leaf) const {
  const size_t agg_col = plan.agg_col_;
  const Grid& grid = plan.grid_;
  const size_t k = grid.dim->NumBins();

  // Satisfaction probabilities: the normalized WHERE tree, ANDed with the
  // per-value group leaf. The conjunction distributes over the per-bin
  // products of Eq. 28, so evaluating the two factors separately is
  // identical to evaluating one combined tree.
  Prob prob;
  if (plan.where_.has_value()) {
    prob = EvalNode(agg_col, *plan.where_, grid);
  } else {
    prob.p.assign(k, 1.0);
    prob.lo.assign(k, 1.0);
    prob.hi.assign(k, 1.0);
  }
  if (extra_group_leaf != nullptr) {
    Prob gp = EvalNode(agg_col, *extra_group_leaf, grid);
    for (size_t t = 0; t < k; ++t) {
      prob.p[t] *= gp.p[t];
      prob.lo[t] *= gp.lo[t];
      prob.hi[t] *= gp.hi[t];
    }
  }
  return WeightsFromProb(*grid.dim, prob);
}

StatusOr<AggResult> AqpEngine::ExecuteScalar(const CompiledQuery& plan,
                                             const Node* extra_group_leaf,
                                             ExecScratch& scratch) const {
  const size_t agg_col = plan.agg_col_;
  const Grid& grid = plan.grid_;
  const size_t k = grid.dim->NumBins();

  Weightings wt = ComputeWeightsRef(plan, extra_group_leaf);
  const IntervalSet* agg_clip =
      ResolveAggClip(plan.agg_clip_, extra_group_leaf, agg_col);
  bool single = ResolveSingle(plan.single_column_, extra_group_leaf, agg_col);
  scratch.arena.Reset();
  WtSpan view{wt.w.data(), wt.lo.data(), wt.hi.data(), 0, k};
  return AggregateImpl(*ph_, options_, plan.query_.func, agg_col, grid, view,
                       single, agg_clip, scratch.arena);
}

StatusOr<AggResult> AqpEngine::ExecuteScalarFast(
    const CompiledQuery& plan, const Node* extra_group_leaf,
    const std::vector<uint32_t>* extra_g2ta, ExecScratch& scratch) const {
  ExecArena& arena = scratch.arena;
  arena.Reset();
  const size_t agg_col = plan.agg_col_;
  const Grid& grid = plan.grid_;
  const HistogramDim& gdim = *grid.dim;
  const AggFunc func = plan.query_.func;

  // O(log k) COUNT shortcut: a single same-column predicate whose pieces
  // fully cover every touched bin needs only prefix-sum differences (all
  // contributions are exact integers, so the total is identical to the
  // general path's per-bin sum).
  if (func == AggFunc::kCount && extra_group_leaf == nullptr &&
      !grid.IsPair() && plan.where_.has_value() &&
      plan.where_->type == Node::Type::kLeaf &&
      plan.where_->column == agg_col) {
    double total = 0.0;
    if (CountFullyCovered(gdim, plan.where_->intervals, &total)) {
      AggResult r;
      r.estimate = total / ph_->sampling_ratio();
      r.lower = r.upper = r.estimate;
      r.empty_selection = total <= kWeightEps;
      return r;
    }
  }

  WtSpan wt = ComputeWeightSpanFast(
      *ph_, arena, agg_col, plan.where_.has_value() ? &*plan.where_ : nullptr,
      extra_group_leaf, extra_g2ta, grid);
  const IntervalSet* agg_clip =
      ResolveAggClip(plan.agg_clip_, extra_group_leaf, agg_col);
  bool single = ResolveSingle(plan.single_column_, extra_group_leaf, agg_col);
  return AggregateImpl(*ph_, options_, func, agg_col, grid, wt, single,
                       agg_clip, arena);
}

Status AqpEngine::ExecutePartialScalar(
    const CompiledQuery& plan, const Node* extra_group_leaf,
    const std::vector<uint32_t>* extra_g2ta, ExecScratch& scratch,
    PartialAggregate* out) const {
  ExecArena& arena = scratch.arena;
  arena.Reset();
  const size_t agg_col = plan.agg_col_;
  const Grid& grid = plan.grid_;
  const size_t k = grid.dim->NumBins();

  const IntervalSet* agg_clip =
      ResolveAggClip(plan.agg_clip_, extra_group_leaf, agg_col);
  const bool single =
      ResolveSingle(plan.single_column_, extra_group_leaf, agg_col);

  // Same weighting pipelines as ExecuteScalarFast / ExecuteScalar, ending
  // in mergeable statistics instead of a finalized AggResult.
  WtSpan wt;
  Weightings ref_store;  // reference-path backing storage
  if (options_.use_fast_path) {
    wt = ComputeWeightSpanFast(
        *ph_, arena, agg_col,
        plan.where_.has_value() ? &*plan.where_ : nullptr, extra_group_leaf,
        extra_g2ta, grid);
  } else {
    ref_store = ComputeWeightsRef(plan, extra_group_leaf);
    wt = WtSpan{ref_store.w.data(), ref_store.lo.data(),
                ref_store.hi.data(), 0, k};
  }
  FillPartialFromWeights(*ph_, options_, plan.query_.func, agg_col, grid, wt,
                         single, agg_clip, arena, out);
  return Status::OK();
}

Status AqpEngine::ExecutePartialInto(const CompiledQuery& plan,
                                     PartialResult* out) const {
  ScratchLease lease(this);
  ExecScratch& scratch = *lease;

  out->groups.clear();
  if (!plan.grouped()) {
    PartialAggregate agg;
    // COUNT(*) with no predicate: this segment's exact row count.
    if (plan.query_.count_star && !plan.where_.has_value()) {
      agg.count = agg.count_lo = agg.count_hi =
          static_cast<double>(ph_->total_rows());
      agg.empty = ph_->total_rows() == 0;
    } else {
      PH_RETURN_IF_ERROR(
          ExecutePartialScalar(plan, nullptr, nullptr, scratch, &agg));
    }
    out->groups.push_back(
        PartialResult::Group{std::string(), std::move(agg)});
    return Status::OK();
  }

  const ColumnTransform& tr = ph_->transform(plan.group_col_);
  for (uint64_t code = 1; code <= plan.group_values_; ++code) {
    Node& leaf = scratch.group_leaf;
    leaf.column = plan.group_col_;
    leaf.intervals.pieces.clear();
    leaf.intervals.pieces.emplace_back(static_cast<double>(code),
                                       static_cast<double>(code));
    PartialAggregate agg;
    PH_RETURN_IF_ERROR(
        ExecutePartialScalar(plan, &leaf, &plan.group_g2ta_, scratch, &agg));
    // Keep any group with estimated mass — even one below the grouped
    // COUNT display threshold: segments accumulate before filtering.
    if (agg.empty) continue;
    out->groups.push_back(
        PartialResult::Group{FormatGroupLabel(tr, code), std::move(agg)});
  }
  return Status::OK();
}

Status AqpEngine::ExecuteInto(const CompiledQuery& plan,
                              QueryResult* result) const {
  ScratchLease lease(this);
  ExecScratch& scratch = *lease;

  // Reuse the caller's group storage: overwrite warm slots in place and
  // only grow (or shrink) when the group count changes.
  size_t used = 0;
  auto slot = [&](const AggResult& agg) -> std::string& {
    if (used < result->groups.size()) {
      result->groups[used].agg = agg;
    } else {
      result->groups.push_back(QueryResult::Group{std::string(), agg});
    }
    return result->groups[used++].label;
  };

  if (!plan.grouped()) {
    // COUNT(*) with no predicate: exact row count.
    if (plan.query_.count_star && !plan.where_.has_value()) {
      AggResult r;
      r.estimate = r.lower = r.upper =
          static_cast<double>(ph_->total_rows());
      slot(r).clear();
      result->groups.resize(used);
      return Status::OK();
    }
    AggResult agg;
    if (options_.use_fast_path) {
      PH_ASSIGN_OR_RETURN(agg,
                          ExecuteScalarFast(plan, nullptr, nullptr, scratch));
    } else {
      PH_ASSIGN_OR_RETURN(agg, ExecuteScalar(plan, nullptr, scratch));
    }
    slot(agg).clear();
    result->groups.resize(used);
    return Status::OK();
  }

  const ColumnTransform& tr = ph_->transform(plan.group_col_);
  for (uint64_t code = 1; code <= plan.group_values_; ++code) {
    AggResult agg;
    if (options_.use_fast_path) {
      Node& leaf = scratch.group_leaf;
      leaf.column = plan.group_col_;
      leaf.intervals.pieces.clear();
      leaf.intervals.pieces.emplace_back(static_cast<double>(code),
                                         static_cast<double>(code));
      PH_ASSIGN_OR_RETURN(
          agg, ExecuteScalarFast(plan, &leaf, &plan.group_g2ta_, scratch));
    } else {
      Node leaf;
      leaf.type = Node::Type::kLeaf;
      leaf.column = plan.group_col_;
      leaf.intervals = IntervalSet::Of(static_cast<double>(code),
                                       static_cast<double>(code));
      PH_ASSIGN_OR_RETURN(agg, ExecuteScalar(plan, &leaf, scratch));
    }
    bool empty_count =
        plan.query_.func == AggFunc::kCount && agg.estimate <= 0.5;
    if (agg.empty_selection || empty_count) continue;
    slot(agg) = FormatGroupLabel(tr, code);
  }
  result->groups.resize(used);
  return Status::OK();
}

StatusOr<QueryResult> AqpEngine::Execute(const CompiledQuery& plan) const {
  QueryResult result;
  PH_RETURN_IF_ERROR(ExecuteInto(plan, &result));
  return result;
}

StatusOr<QueryResult> AqpEngine::Execute(const Query& query) const {
  PH_ASSIGN_OR_RETURN(CompiledQuery plan, Compile(query));
  return Execute(plan);
}

StatusOr<QueryResult> AqpEngine::ExecuteSql(const std::string& sql) const {
  PH_ASSIGN_OR_RETURN(Query q, ParseSql(sql));
  return Execute(q);
}

}  // namespace pairwisehist
