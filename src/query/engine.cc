#include "query/engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <mutex>

#include "common/stats.h"
#include "query/exec_scratch.h"
#include "query/sql_parser.h"

namespace pairwisehist {

namespace {

constexpr double kWeightEps = 1e-9;
const double kNaN = std::numeric_limits<double>::quiet_NaN();

// Eq. 29's two-sided 98% normal quantile, hoisted out of the per-call path
// (it was recomputed per execution via Acklam's approximation + a Halley
// refinement step).
double Z99() {
  static const double z = NormalQuantile(0.99);
  return z;
}

std::string FormatGroupLabel(const ColumnTransform& tr, uint64_t code) {
  if (tr.type == DataType::kCategorical) {
    auto name = tr.DecodeCategory(code);
    if (name.ok()) return name.value();
  }
  double raw = tr.Decode(code);
  char buf[64];
  if (raw == static_cast<long long>(raw)) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(raw));
  } else {
    std::snprintf(buf, sizeof(buf), "%.10g", raw);
  }
  return buf;
}

// Effective per-bin value interval and midpoint after intersecting the bin
// with the aggregation column's own conjunctive predicate (within-bin
// uniformity model). Falls back to the raw metadata when there is no clip
// or no overlap.
struct BinVals {
  double v_lo;
  double v_hi;
  double mid;
};

BinVals EffectiveBin(const HistogramDim& hist, size_t t,
                     const IntervalSet* clip) {
  BinVals out{hist.v_min[t], hist.v_max[t], hist.Midpoint(t)};
  if (clip == nullptr || clip->IsAll() || clip->Empty()) return out;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  double total_len = 0, weighted = 0;
  for (const auto& piece : clip->pieces) {
    double a = std::max(piece.first, out.v_lo);
    double b = std::min(piece.second, out.v_hi);
    if (b < a) continue;
    double len = b - a + 1.0;  // integer-uniform model
    total_len += len;
    weighted += len * (a + b) / 2.0;
    lo = std::min(lo, a);
    hi = std::max(hi, b);
  }
  if (total_len <= 0) return out;  // no overlap: keep raw metadata
  out.v_lo = lo;
  out.v_hi = hi;
  out.mid = weighted / total_len;
  return out;
}

// ---------------------------------------------------------------------------
// Range-restricted execution views (exec_scratch.h). Bins outside
// [begin, end) are implicitly exactly zero; every accumulation below only
// adds zero terms for them, and the kernels' phase-aligned lane semantics
// (common/simd.h) make adding those zeros an exact identity, so
// restricting the loops leaves all results identical to full scans — on
// every kernel tier, which is what keeps the fast path and the reference
// path bit-equal.

/// Per-bin satisfaction probabilities with bounds, backed by the scratch
/// arena (fast path) or the Prob vectors (reference path).
using ProbSpan = ProbTable;
/// Per-bin weightings (w, w−, w+) backed by the scratch arena or, on the
/// reference path, the Weightings vectors.
using WtSpan = WeightTable;

// ---------------------------------------------------------------------------
// Aggregation (Table 3), shared by the reference path (full range over the
// Weightings vectors) and the fast path (touched range over arena spans).

AggResult AggregateImpl(const PairwiseHist& ph, const AqpEngineOptions& options,
                        const KernelOps& ks, AggFunc func, size_t agg_col,
                        const AggGrid& grid, const WtSpan& wt,
                        bool single_column, const IntervalSet* agg_clip,
                        ExecArena& arena) {
  const HistogramDim& hist = *grid.dim;
  const ColumnTransform& tr = ph.transform(agg_col);
  const size_t k = hist.NumBins();
  const size_t rb = wt.begin;
  const size_t re = wt.end;
  const double rho = ph.sampling_ratio();
  const uint64_t m_points = ph.min_points();

  AggResult r;
  if (func == AggFunc::kCount) {
    // Fused single-pass totals (w, w−, w+ reduced together).
    double tot[3];
    ks.sum3(wt.w, wt.lo, wt.hi, rb, re, tot);
    r.estimate = tot[0] / rho;
    r.lower = tot[1] / rho;
    r.upper = tot[2] / rho;
    r.empty_selection = tot[0] <= kWeightEps;
    return r;
  }
  double total = ks.sum(wt.w, rb, re);
  if (total <= kWeightEps) {
    r.empty_selection = true;
    r.estimate = r.lower = r.upper = kNaN;
    return r;
  }

  if (!options.clip_agg_values) agg_clip = nullptr;
  const bool clip_active =
      agg_clip != nullptr && !agg_clip->IsAll() && !agg_clip->Empty();

  // Effective per-bin values, midpoints and weighted-centre bounds in the
  // code domain. Without a same-column clip these are query-independent
  // and read straight from the dimension's centre cache (filled at
  // FinishExecIndex); with a clip, or on a dimension lacking the cache,
  // they are materialized per query over the touched range only
  // (untouched bins carry zero weight).
  const double* v_lo;
  const double* v_hi;
  const double* c;
  const double* c_lo;
  const double* c_hi;
  if (!clip_active && hist.HasCentreCache()) {
    v_lo = hist.v_min.data();
    v_hi = hist.v_max.data();
    c = hist.centre_mid.data();
    c_lo = hist.centre_lo.data();
    c_hi = hist.centre_hi.data();
  } else {
    double* e_v_lo = arena.Alloc(k);
    double* e_v_hi = arena.Alloc(k);
    double* e_c = arena.Alloc(k);
    double* e_c_lo = arena.Alloc(k);
    double* e_c_hi = arena.Alloc(k);
    const bool cached = hist.HasCentreCache();
    // Recomputes one bin the clip actually cuts (the raw Theorem-1 bounds
    // are query-independent: the centre cache supplies them when present,
    // same doubles as WeightedCentreBounds).
    auto slow_bin = [&](size_t t) {
      BinVals bv = EffectiveBin(hist, t, agg_clip);
      e_v_lo[t] = bv.v_lo;
      e_v_hi[t] = bv.v_hi;
      e_c[t] = bv.mid;
      CentreBounds cb;
      if (cached) {
        cb.lo = hist.centre_lo[t];
        cb.hi = hist.centre_hi[t];
      } else {
        cb = ph.WeightedCentreBounds(hist, t);
      }
      e_c_lo[t] = std::clamp(cb.lo, bv.v_lo, bv.v_hi);
      e_c_hi[t] = std::clamp(cb.hi, e_c_lo[t], bv.v_hi);
    };
    if (cached) {
      // Bulk path: a bin fully inside one clip piece (or outside every
      // piece) keeps its raw metadata, so copy the cache wholesale and
      // recompute only the O(pieces) boundary bins the clip cuts. v_min
      // and v_max are strictly ascending across bins, so the overlap and
      // fully-inside bin ranges of each piece are binary searches.
      std::copy(hist.v_min.begin() + rb, hist.v_min.begin() + re,
                e_v_lo + rb);
      std::copy(hist.v_max.begin() + rb, hist.v_max.begin() + re,
                e_v_hi + rb);
      std::copy(hist.centre_mid.begin() + rb, hist.centre_mid.begin() + re,
                e_c + rb);
      std::copy(hist.centre_lo.begin() + rb, hist.centre_lo.begin() + re,
                e_c_lo + rb);
      std::copy(hist.centre_hi.begin() + rb, hist.centre_hi.begin() + re,
                e_c_hi + rb);
      for (const auto& piece : agg_clip->pieces) {
        // Bins whose values overlap the piece at all / lie fully inside.
        size_t o0 = static_cast<size_t>(
            std::lower_bound(hist.v_max.begin() + rb, hist.v_max.begin() + re,
                             piece.first) -
            hist.v_max.begin());
        size_t o1 = static_cast<size_t>(
            std::upper_bound(hist.v_min.begin() + rb, hist.v_min.begin() + re,
                             piece.second) -
            hist.v_min.begin());
        size_t f0 = static_cast<size_t>(
            std::lower_bound(hist.v_min.begin() + o0, hist.v_min.begin() + o1,
                             piece.first) -
            hist.v_min.begin());
        size_t f1 = static_cast<size_t>(
            std::upper_bound(hist.v_max.begin() + f0, hist.v_max.begin() + o1,
                             piece.second) -
            hist.v_max.begin());
        for (size_t t = o0; t < f0; ++t) slow_bin(t);
        for (size_t t = std::max(f0, f1); t < o1; ++t) slow_bin(t);
      }
    } else {
      for (size_t t = rb; t < re; ++t) slow_bin(t);
    }
    v_lo = e_v_lo;
    v_hi = e_v_hi;
    c = e_c;
    c_lo = e_c_lo;
    c_hi = e_c_hi;
  }
  auto decode = [&](double code) { return tr.Decode(code); };

  switch (func) {
    case AggFunc::kSum: {
      // Decode the touched centres to the raw domain once, then one dot
      // product for the estimate and one fused corner-bound pass (safe
      // also when decoded values are negative).
      double* dm = arena.Alloc(k);
      double* dlo = arena.Alloc(k);
      double* dhi = arena.Alloc(k);
      for (size_t t = rb; t < re; ++t) {
        dm[t] = decode(c[t]);
        dlo[t] = decode(c_lo[t]);
        dhi[t] = decode(c_hi[t]);
      }
      double bounds[2];
      ks.corner_bounds(wt.lo, wt.hi, dlo, dhi, rb, re, bounds);
      r.estimate = ks.dot(wt.w, dm, rb, re) / rho;
      r.lower = bounds[0] / rho;
      r.upper = bounds[1] / rho;
      return r;
    }
    case AggFunc::kAvg: {
      double num = ks.dot(wt.w, c, rb, re);
      r.estimate = decode(num / total);
      // Evaluate both weighting extrema (w• placeholder in Table 3) with
      // one fused {Σw, Σw·c−, Σw·c+} pass each.
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      for (const double* wv : {wt.lo, wt.hi}) {
        double o[3];
        ks.dot3(wv, c_lo, c_hi, rb, re, o);
        if (o[0] > kWeightEps) {
          lo = std::min(lo, o[1] / o[0]);
          hi = std::max(hi, o[2] / o[0]);
        }
      }
      if (!std::isfinite(lo)) {
        lo = hi = num / total;
      }
      r.lower = decode(std::min(lo, num / total));
      r.upper = decode(std::max(hi, num / total));
      return r;
    }
    case AggFunc::kVar: {
      // Second-moment values (within-bin uniform term included) once,
      // then two dots against the weights.
      double* m2 = arena.Alloc(k);
      for (size_t t = rb; t < re; ++t) {
        double within = 0.0;
        if (options.var_within_bin && hist.unique[t] > 1) {
          double span = v_hi[t] - v_lo[t];
          within = span * span / 12.0;
        }
        m2[t] = c[t] * c[t] + within;
      }
      double num1 = ks.dot(wt.w, c, rb, re);
      double num2 = ks.dot(wt.w, m2, rb, re);
      double mean = num1 / total;
      double var_code = std::max(0.0, num2 / total - mean * mean);
      double scale2 = tr.scale * tr.scale;
      r.estimate = var_code / scale2;
      // ξ∓ per Eqs. 38–39 around the estimated (code-domain) mean.
      double* xi_lo = arena.Alloc(k);
      double* xi_hi = arena.Alloc(k);
      for (size_t t = rb; t < re; ++t) {
        if (v_hi[t] < mean) {
          xi_lo[t] = v_hi[t];
        } else if (v_lo[t] > mean) {
          xi_lo[t] = v_lo[t];
        } else {
          xi_lo[t] = mean;
        }
        xi_hi[t] = (std::fabs(mean - v_lo[t]) > std::fabs(v_hi[t] - mean))
                       ? v_lo[t]
                       : v_hi[t];
      }
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      for (const double* wv : {wt.lo, wt.hi}) {
        // Fused {Σw, Σw·ξ, Σw·ξ²} per extreme.
        double mo_lo[3];
        ks.moments(wv, xi_lo, rb, re, mo_lo);
        double tw = mo_lo[0];
        if (tw <= kWeightEps) continue;
        double mo_hi[3];
        ks.moments(wv, xi_hi, rb, re, mo_hi);
        lo = std::min(lo,
                      mo_lo[2] / tw - (mo_lo[1] / tw) * (mo_lo[1] / tw));
        hi = std::max(hi,
                      mo_hi[2] / tw - (mo_hi[1] / tw) * (mo_hi[1] / tw));
      }
      if (!std::isfinite(lo)) {
        lo = hi = var_code;
      }
      r.lower = std::max(0.0, std::min(lo / scale2, r.estimate));
      r.upper = std::max(r.estimate, hi / scale2);
      return r;
    }
    case AggFunc::kMin:
    case AggFunc::kMax: {
      const bool is_min = func == AggFunc::kMin;
      // Masked search kernels: first (MIN) / last (MAX) bin whose weight
      // clears the threshold. Exact comparisons, identical on every tier.
      auto first_idx = [&](const double* wv, double threshold) -> int {
        size_t t = is_min ? ks.find_first_gt(wv, rb, re, threshold)
                          : ks.find_last_gt(wv, rb, re, threshold);
        return t == kKernelNotFound ? -1 : static_cast<int>(t);
      };

      int t_est = first_idx(wt.w, kWeightEps);
      if (t_est < 0) {
        r.empty_selection = true;
        r.estimate = r.lower = r.upper = kNaN;
        return r;
      }
      {
        size_t t = static_cast<size_t>(t_est);
        bool flip = single_column && hist.unique[t] == 2 &&
                    wt.w[t] < static_cast<double>(hist.counts[t]) / 2.0;
        double v = is_min ? (flip ? v_hi[t] : v_lo[t])
                          : (flip ? v_lo[t] : v_hi[t]);
        r.estimate = decode(v);
      }
      // Outer bound (MIN lower / MAX upper): widest plausible bin from w+.
      {
        int ti = first_idx(wt.hi, kWeightEps);
        size_t t =
            ti < 0 ? static_cast<size_t>(t_est) : static_cast<size_t>(ti);
        bool flip = single_column && hist.unique[t] == 2 &&
                    wt.hi[t] < static_cast<double>(hist.counts[t]) / 5.0;
        double v = is_min ? (flip ? v_hi[t] : v_lo[t])
                          : (flip ? v_lo[t] : v_hi[t]);
        if (is_min) {
          r.lower = decode(v);
        } else {
          r.upper = decode(v);
        }
      }
      // Inner bound (MIN upper / MAX lower): first bin with confident
      // weight (w− > 1/2), tightened by fully covered sub-bins (Eq. 32).
      {
        int ti = first_idx(wt.lo, 0.5);
        size_t t =
            ti < 0 ? static_cast<size_t>(t_est) : static_cast<size_t>(ti);
        double v;
        if (single_column && hist.unique[t] > 2 &&
            hist.counts[t] >= m_points) {
          int s = TerrellScottSubBins(hist.unique[t]);
          double delta = (v_hi[t] - v_lo[t]) / s;
          double a = std::floor(s * wt.lo[t] /
                                static_cast<double>(hist.counts[t]));
          v = is_min ? v_hi[t] - a * delta : v_lo[t] + a * delta;
        } else {
          v = is_min ? v_hi[t] : v_lo[t];
        }
        if (is_min) {
          r.upper = decode(v);
        } else {
          r.lower = decode(v);
        }
      }
      if (r.lower > r.upper) std::swap(r.lower, r.upper);
      r.lower = std::min(r.lower, r.estimate);
      r.upper = std::max(r.upper, r.estimate);
      return r;
    }
    case AggFunc::kMedian: {
      // Rule changes here (half-mass ties, unique==2, bound walk) must be
      // mirrored in MergeMedian (partial_agg.cc), which reimplements this
      // walk over cross-segment raw-domain bins.
      //
      // The CDF walk is an inclusive prefix scan (kernel; on the scalar
      // tier it is the exact sequential accumulation this code used to
      // do inline) followed by a binary search for the half-mass point:
      // weights are non-negative so the scan is non-decreasing, and
      // lower_bound finds the first bin with prefix >= total/2 — the same
      // bin the sequential `acc >= tw/2` walk stops at.
      // The half-mass comparison carries a 1e-9 relative tie tolerance:
      // kernel tiers reassociate the scan (≤ ~n·ulp noise), and without
      // slack a half-mass point that lands exactly on a bin boundary
      // would select adjacent bins on different tiers, jumping the
      // reported bounds by a whole bin.
      auto median_bin = [&](const double* wv, double* prefix) -> int {
        ks.prefix_sum(wv, rb, re, prefix);
        double tw = prefix[re - 1];
        if (tw <= kWeightEps) return -1;
        double target = tw / 2.0 - 1e-9 * tw;
        size_t idx = static_cast<size_t>(
            std::lower_bound(prefix + rb, prefix + re, target) - prefix);
        if (idx >= re) idx = re - 1;
        return static_cast<int>(idx);
      };
      double* pw = arena.Alloc(k);
      int t_est = median_bin(wt.w, pw);
      if (t_est < 0) {
        r.empty_selection = true;
        r.estimate = r.lower = r.upper = kNaN;
        return r;
      }
      size_t t = static_cast<size_t>(t_est);
      // Scan-consistent total and mass before the median bin (on the
      // scalar tier these equal `total` / the old partial re-sum exactly).
      double twm = pw[re - 1];
      double before = t > rb ? pw[t - 1] : 0.0;
      double f = (twm / 2.0 - before) / std::max(wt.w[t], kWeightEps);
      f = std::clamp(f, 0.0, 1.0);
      if (hist.unique[t] == 2) {
        r.estimate = decode(f < 0.5 ? v_lo[t] : v_hi[t]);
      } else {
        r.estimate = decode(v_lo[t] + (v_hi[t] - v_lo[t]) * f);
      }
      int t_lo = t_est, t_hi = t_est;
      for (const double* wv : {wt.lo, wt.hi}) {
        int tb = median_bin(wv, pw);
        if (tb >= 0) {
          t_lo = std::min(t_lo, tb);
          t_hi = std::max(t_hi, tb);
        }
      }
      r.lower = decode(v_lo[static_cast<size_t>(t_lo)]);
      r.upper = decode(v_hi[static_cast<size_t>(t_hi)]);
      r.lower = std::min(r.lower, r.estimate);
      r.upper = std::max(r.upper, r.estimate);
      return r;
    }
    case AggFunc::kCount:
      break;  // handled above
  }
  return r;
}

// Fills mergeable sufficient statistics (see partial_agg.h) from computed
// weightings: the matching mass (COUNT semantics, de-sampled by 1/ρ), the
// function-specific AggResult and — for VAR / MEDIAN — the extra
// statistics the cross-segment merge needs.
void FillPartialFromWeights(const PairwiseHist& ph,
                            const AqpEngineOptions& options,
                            const KernelOps& ks, AggFunc func, size_t agg_col,
                            const AggGrid& grid, const WtSpan& wt, bool single,
                            const IntervalSet* agg_clip, ExecArena& arena,
                            PartialAggregate* out) {
  const double rho = ph.sampling_ratio();
  // Fused single-pass totals (previously three separate sweeps).
  double tot[3];
  ks.sum3(wt.w, wt.lo, wt.hi, wt.begin, wt.end, tot);
  out->count = tot[0] / rho;
  out->count_lo = tot[1] / rho;
  out->count_hi = tot[2] / rho;
  out->empty = tot[0] <= kWeightEps;
  out->value = AggResult{};
  out->mean = AggResult{};
  out->median_bins.clear();
  if (func == AggFunc::kCount || out->empty) return;

  if (func == AggFunc::kMedian) {
    // Export the touched weighted bins in the raw value domain; the merge
    // walks the combined weighted CDF exactly like Table 3's rule.
    const HistogramDim& hist = *grid.dim;
    const ColumnTransform& tr = ph.transform(agg_col);
    if (!options.clip_agg_values) agg_clip = nullptr;
    auto decode = [&](double code) { return tr.Decode(code); };
    for (size_t t = wt.begin; t < wt.end; ++t) {
      if (wt.w[t] <= 0 && wt.lo[t] <= 0 && wt.hi[t] <= 0) continue;
      BinVals bv = EffectiveBin(hist, t, agg_clip);
      PartialAggregate::MedianBin mb;
      mb.v_lo = decode(bv.v_lo);
      mb.v_hi = decode(bv.v_hi);
      mb.w = wt.w[t] / rho;
      mb.w_lo = wt.lo[t] / rho;
      mb.w_hi = wt.hi[t] / rho;
      mb.unique = hist.unique[t];
      out->median_bins.push_back(mb);
    }
    return;
  }

  out->value = AggregateImpl(ph, options, ks, func, agg_col, grid, wt,
                             single, agg_clip, arena);
  if (func == AggFunc::kVar) {
    out->mean = AggregateImpl(ph, options, ks, AggFunc::kAvg, agg_col, grid,
                              wt, single, agg_clip, arena);
  }
}

// Eq. 29 weightings over the touched range (identical formulas to the
// reference WeightsFromProb; untouched bins carry exactly zero weight).
// Fully-covered runs collapse to the bin counts themselves — at β = 1 the
// widening variance term is exactly zero and every clamp is the identity,
// so the bulk counts_to_weights3 kernel reproduces the general formula
// bit-for-bit while skipping its arithmetic.
/// Eq. 29 widening parameters, shared by every weighting of one synopsis.
struct WidenParams {
  bool widen = false;
  double z = 0.0;
  double fpc = 0.0;
};

WidenParams WidenParamsOf(const PairwiseHist& ph) {
  WidenParams wp;
  const double rho = ph.sampling_ratio();
  const double n_total = static_cast<double>(ph.total_rows());
  const double n_sample = static_cast<double>(ph.sample_rows());
  wp.widen = rho < 1.0 && n_total > 1;
  wp.z = Z99();
  wp.fpc = wp.widen ? (n_total - n_sample) / (n_total - 1.0) : 0.0;
  return wp;
}

/// One plan pipeline's slice of a batched weighting call.
WeightRow MakeWeightRow(const HistogramDim& dim, const ProbSpan& prob,
                        const WtSpan& wt) {
  WeightRow row;
  row.h = dim.counts.data();
  row.p = prob.p;
  row.pl = prob.lo;
  row.ph = prob.hi;
  row.w = wt.w;
  row.lo = wt.lo;
  row.hi = wt.hi;
  row.begin = prob.begin;
  row.end = prob.end;
  row.runs = prob.runs;
  row.n_runs = prob.n_runs;
  return row;
}

void WeightsInto(const PairwiseHist& ph, const HistogramDim& dim,
                 const ProbSpan& prob, const WtSpan& wt, const KernelOps& ks) {
  const WidenParams wp = WidenParamsOf(ph);
  WeightRow row = MakeWeightRow(dim, prob, wt);
  // Single-row batch: the kernel's per-row walk is exactly the run walk
  // this function used to do inline, so single-query and batched
  // executions share one weighting code path on every tier.
  ks.weights_batch(&row, 1, wp.z, wp.fpc, wp.widen ? 1 : 0);
}

// ---------------------------------------------------------------------------
// Shared sparse-row reduction. Reduces one aggregation bin's cells against
// per-pred-bin coverage values using the dense per-row cell prefix
// (PairView::AggPrefix): fully-covered runs (β = β− = β+ = 1) collapse to
// one exact integer prefix difference each, and only the few partial
// coverage bins around the runs read individual cells (also as prefix
// differences). The accumulation is plain sequential scalar — identical
// on every kernel tier — and the fast path and the reference path call it
// with identical coverage spans (ComputeCoverageInto produces the same
// values and run descriptors for both), so the two paths stay bit-equal
// while range predicates skip the entire per-cell scan.

/// Reduces one row against the coverage span: candidate segments bound
/// the walk (bins between segments have exactly zero coverage, so
/// scattered multi-piece predicates skip their gaps), and runs inside
/// them collapse to prefix differences. Returns true when the row has
/// any cell in [cov_begin, cov_end).
bool ReduceRow(const PairView& pair, size_t ta, const CoverageSpan& cov,
               double acc[3]) {
  const uint64_t* pre = pair.AggPrefix(ta);
  acc[0] = acc[1] = acc[2] = 0.0;
  if (pre[cov.end] == pre[cov.begin]) return false;
  auto partial_bins = [&](size_t b, size_t e) {
    for (size_t tp = b; tp < e; ++tp) {
      uint64_t cell = pre[tp + 1] - pre[tp];
      if (cell == 0) continue;
      double c = static_cast<double>(cell);
      acc[0] += c * cov.beta[tp];
      acc[1] += c * cov.lo[tp];
      acc[2] += c * cov.hi[tp];
    }
  };
  size_t r = 0;
  auto segment = [&](size_t sb, size_t se) {
    size_t t = sb;
    for (; r < cov.n_runs && cov.runs[2 * r] < se; ++r) {
      const size_t f0 = cov.runs[2 * r];
      const size_t f1 = cov.runs[2 * r + 1];
      partial_bins(t, f0);
      uint64_t mass = pre[f1] - pre[f0];
      if (mass != 0) {
        double total = static_cast<double>(mass);
        acc[0] += total;
        acc[1] += total;
        acc[2] += total;
      }
      t = f1;
    }
    partial_bins(t, se);
  };
  if (cov.n_segs == 0) {
    segment(cov.begin, cov.end);
  } else {
    for (size_t s = 0; s < cov.n_segs; ++s) {
      segment(cov.segs[2 * s], cov.segs[2 * s + 1]);
    }
  }
  return true;
}

/// Multi-row counterpart of ReduceRow over the column-major cell prefixes
/// (PairView::AggPrefixCol): one sweep per coverage event updates EVERY
/// aggregation row's accumulators at once, vectorized across rows by the
/// run_mass3 / cell_axpy3 kernels. Events are driven in exactly
/// ReduceRow's order and lanes never cross rows, so each row's accumulator
/// receives the same addend sequence as the per-row walk — extra zero
/// addends for cells ReduceRow skips are exact identities on non-negative
/// accumulators — keeping the two reductions bit-identical on every tier
/// (the reference path still runs ReduceRow, which cross-checks this).
/// Accumulators must be zero-initialized over [0, n_rows).
void ReduceRowsAll(const PairView& pair, size_t n_rows,
                   const CoverageSpan& cov, const KernelOps& ks, double* ap,
                   double* al, double* ah) {
  auto partial_bins = [&](size_t b, size_t e) {
    for (size_t tp = b; tp < e; ++tp) {
      ks.cell_axpy3(pair.AggPrefixCol(tp), pair.AggPrefixCol(tp + 1),
                    cov.beta[tp], cov.lo[tp], cov.hi[tp], ap, al, ah, 0,
                    n_rows);
    }
  };
  size_t r = 0;
  auto segment = [&](size_t sb, size_t se) {
    size_t t = sb;
    for (; r < cov.n_runs && cov.runs[2 * r] < se; ++r) {
      const size_t f0 = cov.runs[2 * r];
      const size_t f1 = cov.runs[2 * r + 1];
      partial_bins(t, f0);
      ks.run_mass3(pair.AggPrefixCol(f0), pair.AggPrefixCol(f1), ap, al, ah,
                   0, n_rows);
      t = f1;
    }
    partial_bins(t, se);
  };
  if (cov.n_segs == 0) {
    segment(cov.begin, cov.end);
  } else {
    for (size_t s = 0; s < cov.n_segs; ++s) {
      segment(cov.segs[2 * s], cov.segs[2 * s + 1]);
    }
  }
}

// ---------------------------------------------------------------------------
// Fast-path per-leaf probabilities: cell prefix index + localized coverage.

ProbSpan LeafProbFast(const PairwiseHist& ph, ExecArena& arena,
                      const KernelOps& ks, size_t agg_col, size_t col,
                      const IntervalSet& intervals,
                      const std::vector<uint32_t>& g2ta, const AggGrid& grid) {
  const HistogramDim& gdim = *grid.dim;
  const size_t k = gdim.NumBins();
  ProbSpan out;

  if (col == agg_col) {
    // Same-column predicate: localized coverage over the aggregation grid.
    // Fully-covered run descriptors ride along so Eq. 29 weighting can
    // consume those spans in bulk.
    CoverageSpan cov;
    cov.beta = arena.Alloc(k);
    cov.lo = arena.Alloc(k);
    cov.hi = arena.Alloc(k);
    cov.max_runs = cov.max_segs = intervals.pieces.size();
    cov.runs =
        cov.max_runs > 0 ? arena.AllocU32(2 * cov.max_runs) : nullptr;
    cov.segs =
        cov.max_segs > 0 ? arena.AllocU32(2 * cov.max_segs) : nullptr;
    ComputeCoverageInto(gdim, intervals, ph.min_points(), ph.critical_cache(),
                        &cov);
    out.p = cov.beta;
    out.lo = cov.lo;
    out.hi = cov.hi;
    out.begin = cov.begin;
    out.end = cov.end;
    out.runs = cov.runs;
    out.n_runs = cov.n_runs;
    return out;
  }

  if (grid.IsPair() && col == grid.pair_pred_col) {
    // The grid is this leaf's own pair: reduce the covered pred bins'
    // cells into exact per-grid-bin probabilities for ALL grid bins at
    // once via the column-major prefixes (ReduceRowsAll — bit-identical
    // to the reference path's per-row ReduceRow scan of the same rows).
    const HistogramDim& pred_dim = grid.pair.pred_dim();
    const size_t kp = pred_dim.NumBins();
    CoverageSpan cov;
    cov.beta = arena.Alloc(kp);
    cov.lo = arena.Alloc(kp);
    cov.hi = arena.Alloc(kp);
    cov.max_runs = cov.max_segs = intervals.pieces.size();
    cov.runs =
        cov.max_runs > 0 ? arena.AllocU32(2 * cov.max_runs) : nullptr;
    cov.segs =
        cov.max_segs > 0 ? arena.AllocU32(2 * cov.max_segs) : nullptr;
    ComputeCoverageInto(pred_dim, intervals, ph.min_points(),
                        ph.critical_cache(), &cov);
    if (cov.begin >= cov.end) {
      out.begin = out.end = 0;
      return out;
    }
    out.p = arena.AllocZeroed(k);
    out.lo = arena.AllocZeroed(k);
    out.hi = arena.AllocZeroed(k);
    ReduceRowsAll(grid.pair, k, cov, ks, out.p, out.lo, out.hi);
    // Rows with no cell in the covered pred range stay exactly zero; the
    // touched range is bounded by the first/last row with any such cell
    // (an exact integer test on the boundary prefix rows — the same test
    // ReduceRow's early return makes per row).
    const uint64_t* pre_b = grid.pair.AggPrefixCol(cov.begin);
    const uint64_t* pre_e = grid.pair.AggPrefixCol(cov.end);
    size_t gmin = 0;
    while (gmin < k && pre_e[gmin] == pre_b[gmin]) ++gmin;
    if (gmin == k) {
      out.begin = out.end = 0;
      return out;
    }
    size_t gmax = k - 1;
    while (pre_e[gmax] == pre_b[gmax]) --gmax;
    ks.norm_prob3(gdim.counts.data(), out.p, out.lo, out.hi, out.p, out.lo,
                  out.hi, gmin, gmax + 1);
    out.begin = gmin;
    out.end = gmax + 1;
    return out;
  }

  // Cross-column leaf on a different pair (see the reference LeafProb for
  // the semantics): conditional probability per refined bin of that pair's
  // agg dimension, rescaled by the precomputed per-parent non-null
  // fraction, transferred onto the grid through the compile-time g2ta map.
  PairView pair = ph.GetPair(agg_col, col);
  const HistogramDim& pred_dim = pair.pred_dim();
  const HistogramDim& agg_dim = pair.agg_dim();
  const size_t kp = pred_dim.NumBins();
  const size_t ka = agg_dim.NumBins();
  CoverageSpan cov;
  cov.beta = arena.Alloc(kp);
  cov.lo = arena.Alloc(kp);
  cov.hi = arena.Alloc(kp);
  cov.max_runs = cov.max_segs = intervals.pieces.size();
  cov.runs = cov.max_runs > 0 ? arena.AllocU32(2 * cov.max_runs) : nullptr;
  cov.segs = cov.max_segs > 0 ? arena.AllocU32(2 * cov.max_segs) : nullptr;
  ComputeCoverageInto(pred_dim, intervals, ph.min_points(),
                      ph.critical_cache(), &cov);

  double* pa = arena.AllocZeroed(ka);
  double* pa_lo = arena.AllocZeroed(ka);
  double* pa_hi = arena.AllocZeroed(ka);
  const HistogramDim& agg1d = ph.hist1d(agg_col);
  const size_t k1 = agg1d.NumBins();
  double* num1 = arena.AllocZeroed(k1);
  double* num1_lo = arena.AllocZeroed(k1);
  double* num1_hi = arena.AllocZeroed(k1);
  size_t ta_min = ka, ta_max = 0;
  if (cov.begin < cov.end) {
    // All rows reduced in one column-major sweep; the per-parent 1-d
    // accumulation then only touches rows with any covered cell (the same
    // rows ReduceRow would have reported), in ascending ta order so the
    // parent sums see the same addend sequence as the per-row walk.
    ReduceRowsAll(pair, ka, cov, ks, pa, pa_lo, pa_hi);
    const uint64_t* pre_b = pair.AggPrefixCol(cov.begin);
    const uint64_t* pre_e = pair.AggPrefixCol(cov.end);
    for (size_t ta = 0; ta < ka; ++ta) {
      if (pre_e[ta] == pre_b[ta]) continue;
      ta_min = std::min(ta_min, ta);
      ta_max = std::max(ta_max, ta);
      size_t parent = agg_dim.parent.empty() ? ta : agg_dim.parent[ta];
      num1[parent] += pa[ta];
      num1_lo[parent] += pa_lo[ta];
      num1_hi[parent] += pa_hi[ta];
    }
    if (ta_min <= ta_max) {
      ks.norm_prob3(agg_dim.counts.data(), pa, pa_lo, pa_hi, pa, pa_lo,
                    pa_hi, ta_min, ta_max + 1);
    }
  }
  double* p1 = arena.Alloc(k1);
  double* p1_lo = arena.Alloc(k1);
  double* p1_hi = arena.Alloc(k1);
  ks.norm_prob3(agg1d.counts.data(), num1, num1_lo, num1_hi, p1, p1_lo,
                p1_hi, 0, k1);

  // Output is confined to grid bins whose 1-d parent saw any scattered
  // mass: pa is zero outside [ta_min, ta_max] and p1 is zero outside that
  // range's parents, and a grid bin's parent equals its mapped ta's parent
  // (both refine the same 1-d edges). Everything outside is exactly zero.
  if (ta_min > ta_max) {
    out.begin = out.end = 0;
    return out;
  }
  const size_t pmin = agg_dim.parent.empty() ? ta_min : agg_dim.parent[ta_min];
  const size_t pmax = agg_dim.parent.empty() ? ta_max : agg_dim.parent[ta_max];
  size_t gb, ge;
  if (gdim.parent.empty()) {
    gb = std::min(pmin, k);
    ge = std::min(pmax + 1, k);
  } else {
    gb = static_cast<size_t>(
        std::lower_bound(gdim.parent.begin(), gdim.parent.end(),
                         static_cast<uint32_t>(pmin)) -
        gdim.parent.begin());
    ge = static_cast<size_t>(
        std::upper_bound(gdim.parent.begin(), gdim.parent.end(),
                         static_cast<uint32_t>(pmax)) -
        gdim.parent.begin());
  }
  const VecView<double>& nnf = pair.NonNullFrac();
  out.p = arena.Alloc(k);
  out.lo = arena.Alloc(k);
  out.hi = arena.Alloc(k);
  const bool have_map = g2ta.size() == k;
  for (size_t g = gb; g < ge; ++g) {
    size_t ta = have_map
                    ? g2ta[g]
                    : agg_dim.BinIndex((gdim.edges[g] + gdim.edges[g + 1]) /
                                       2.0);
    size_t parent = gdim.parent.empty() ? g : gdim.parent[g];
    if (agg_dim.counts[ta] > 0) {
      double scale = nnf[parent];
      out.p[g] = pa[ta] * scale;
      out.lo[g] = pa_lo[ta] * scale;
      out.hi[g] = pa_hi[ta] * scale;
    } else {
      out.p[g] = p1[parent];
      out.lo[g] = p1_lo[parent];
      out.hi[g] = p1_hi[parent];
    }
  }
  out.begin = gb;
  out.end = ge;
  return out;
}

// AND/OR combination (Eq. 28) over touched ranges. Outside a child's range
// its probability is exactly zero, so an AND shrinks to the intersection
// and an OR's missing factors are exactly (1 - 0) = 1.
ProbSpan EvalNodeFast(const PairwiseHist& ph, ExecArena& arena,
                      const KernelOps& ks, size_t agg_col,
                      const NormalizedPredicate& node, const AggGrid& grid) {
  if (node.type == NormalizedPredicate::Type::kLeaf) {
    return LeafProbFast(ph, arena, ks, agg_col, node.column, node.intervals,
                        node.g2ta, grid);
  }
  const size_t k = grid.dim->NumBins();
  const bool is_and = node.type == NormalizedPredicate::Type::kAnd;
  ProbSpan acc;
  acc.p = arena.Alloc(k);
  acc.lo = arena.Alloc(k);
  acc.hi = arena.Alloc(k);
  bool first = true;
  size_t rb = 0, re = 0;
  for (const NormalizedPredicate& child : node.children) {
    ProbSpan cp = EvalNodeFast(ph, arena, ks, agg_col, child, grid);
    if (is_and) {
      if (cp.begin >= cp.end) {
        rb = re = 0;  // one empty factor zeroes the whole conjunction
        first = false;
        break;
      }
      if (first) {
        rb = cp.begin;
        re = cp.end;
        std::copy(cp.p + rb, cp.p + re, acc.p + rb);
        std::copy(cp.lo + rb, cp.lo + re, acc.lo + rb);
        std::copy(cp.hi + rb, cp.hi + re, acc.hi + rb);
        first = false;
      } else {
        rb = std::max(rb, cp.begin);
        re = std::min(re, cp.end);
        if (rb >= re) {
          rb = re = 0;
          break;
        }
        ks.mul3(acc.p, acc.lo, acc.hi, cp.p, cp.lo, cp.hi, rb, re);
      }
    } else {
      if (cp.begin >= cp.end) continue;  // factor (1 - 0) = 1 everywhere
      if (first) {
        rb = cp.begin;
        re = cp.end;
        for (size_t t = rb; t < re; ++t) {
          acc.p[t] = 1.0 - cp.p[t];
          acc.lo[t] = 1.0 - cp.hi[t];  // complement swaps the bounds
          acc.hi[t] = 1.0 - cp.lo[t];
        }
        first = false;
      } else {
        size_t nb = std::min(rb, cp.begin);
        size_t ne = std::max(re, cp.end);
        // Newly exposed bins were untouched by earlier children: their
        // running complement products are exactly 1.
        for (size_t t = nb; t < rb; ++t) {
          acc.p[t] = acc.lo[t] = acc.hi[t] = 1.0;
        }
        for (size_t t = re; t < ne; ++t) {
          acc.p[t] = acc.lo[t] = acc.hi[t] = 1.0;
        }
        rb = nb;
        re = ne;
        ks.or_mul3(acc.p, acc.lo, acc.hi, cp.p, cp.lo, cp.hi, cp.begin,
                   cp.end);
      }
    }
  }
  acc.begin = rb;
  acc.end = re;
  if (!is_and) ks.complement3(acc.p, acc.lo, acc.hi, rb, re);
  return acc;
}

// Shared fast-path probability stage: satisfaction probabilities for the
// WHERE tree (optionally conjoined with the per-value GROUP BY leaf), all
// in the arena. Used by ComputeWeightSpanFast (single query) and the batch
// path (which collects one ProbSpan per distinct predicate set, then
// weights every row with a single batched kernel call).
ProbSpan ComputeProbSpanFast(const PairwiseHist& ph, ExecArena& arena,
                             const KernelOps& ks, size_t agg_col,
                             const NormalizedPredicate* where,
                             const NormalizedPredicate* extra_group_leaf,
                             const std::vector<uint32_t>* extra_g2ta,
                             const AggGrid& grid) {
  const size_t k = grid.dim->NumBins();
  ProbSpan prob;
  if (where != nullptr) {
    prob = EvalNodeFast(ph, arena, ks, agg_col, *where, grid);
  } else {
    prob.p = arena.Alloc(k);
    prob.lo = arena.Alloc(k);
    prob.hi = arena.Alloc(k);
    std::fill(prob.p, prob.p + k, 1.0);
    std::fill(prob.lo, prob.lo + k, 1.0);
    std::fill(prob.hi, prob.hi + k, 1.0);
    prob.begin = 0;
    prob.end = k;
    if (k > 0) {
      // No predicate: the whole grid is one fully-covered run, so the
      // weighting below is a straight bulk copy of the bin counts.
      uint32_t* run = arena.AllocU32(2);
      run[0] = 0;
      run[1] = static_cast<uint32_t>(k);
      prob.runs = run;
      prob.n_runs = 1;
    }
  }
  if (extra_group_leaf != nullptr) {
    const std::vector<uint32_t>& map =
        (extra_g2ta != nullptr) ? *extra_g2ta : extra_group_leaf->g2ta;
    ProbSpan gp = LeafProbFast(ph, arena, ks, agg_col,
                               extra_group_leaf->column,
                               extra_group_leaf->intervals, map, grid);
    // The product is no longer pure coverage: drop any run descriptors.
    prob.runs = nullptr;
    prob.n_runs = 0;
    size_t rb = std::max(prob.begin, gp.begin);
    size_t re = std::min(prob.end, gp.end);
    if (rb >= re) {
      prob.begin = prob.end = 0;
    } else {
      ks.mul3(prob.p, prob.lo, prob.hi, gp.p, gp.lo, gp.hi, rb, re);
      prob.begin = rb;
      prob.end = re;
    }
  }
  return prob;
}

// Shared fast-path pipeline: probabilities then Eq. 29 weights, all in the
// arena. Used by ExecuteScalarFast and ExecutePartialScalar so the two can
// never diverge.
WtSpan ComputeWeightSpanFast(const PairwiseHist& ph, ExecArena& arena,
                             const KernelOps& ks, size_t agg_col,
                             const NormalizedPredicate* where,
                             const NormalizedPredicate* extra_group_leaf,
                             const std::vector<uint32_t>* extra_g2ta,
                             const AggGrid& grid) {
  ProbSpan prob = ComputeProbSpanFast(ph, arena, ks, agg_col, where,
                                      extra_group_leaf, extra_g2ta, grid);
  WtSpan wt = WeightTable::Make(arena, grid.dim->NumBins());
  wt.begin = prob.begin;
  wt.end = prob.end;
  WeightsInto(ph, *grid.dim, prob, wt, ks);
  return wt;
}

// Aggregation-column clip: a WHERE-level clip wins (it precedes the group
// leaf in the combined tree); otherwise a group leaf on the aggregation
// column supplies it.
const IntervalSet* ResolveAggClip(const std::optional<IntervalSet>& clip,
                                  const NormalizedPredicate* extra_group_leaf,
                                  size_t agg_col) {
  if (clip.has_value()) return &*clip;
  if (extra_group_leaf != nullptr && extra_group_leaf->column == agg_col) {
    return &extra_group_leaf->intervals;
  }
  return nullptr;
}

// Single-column special cases also require the group leaf (if any) to be
// on the aggregation column.
bool ResolveSingle(bool plan_single,
                   const NormalizedPredicate* extra_group_leaf,
                   size_t agg_col) {
  return plan_single && (extra_group_leaf == nullptr ||
                         extra_group_leaf->column == agg_col);
}

// Value equality of normalized predicate trees (columns, exact interval
// endpoints, AND/OR structure). Two plans on the same synopsis with equal
// aggregation column, grid and value-equal WHERE trees run the identical
// coverage + probability + weighting pipeline, so a batch computes it
// once and shares the weight table (the transfer maps are derived from
// (grid, column) and need no separate comparison).
bool NodeEqual(const NormalizedPredicate& a, const NormalizedPredicate& b) {
  if (a.type != b.type) return false;
  if (a.type == NormalizedPredicate::Type::kLeaf) {
    return a.column == b.column && a.intervals.pieces == b.intervals.pieces;
  }
  if (a.children.size() != b.children.size()) return false;
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (!NodeEqual(a.children[i], b.children[i])) return false;
  }
  return true;
}

}  // namespace

double Weightings::Total() const {
  double s = 0;
  for (double v : w) s += v;
  return s;
}
double Weightings::TotalLo() const {
  double s = 0;
  for (double v : lo) s += v;
  return s;
}
double Weightings::TotalHi() const {
  double s = 0;
  for (double v : hi) s += v;
  return s;
}

// ---------------------------------------------------------------------------
// Execution scratch: a per-execution arena plus a reusable GROUP BY leaf
// and the batch-execution bookkeeping, pooled per engine (ObjectPool) so
// concurrent executions never share one and steady-state execution
// allocates nothing.

/// One batch group: scalar plans sharing a weight pipeline.
struct AqpEngine::BatchGroup {
  std::vector<size_t> members;
  ProbTable prob;      // fast path: shared probabilities (arena-backed)
  WeightTable wt;      // shared weight row (SoA block row / ref vectors)
  Weightings ref_wt;   // reference-path backing storage
  bool need_wt = false;
};

struct AqpEngine::ExecScratch {
  ExecArena arena;
  Node group_leaf;

  // Batch-execution bookkeeping (ExecuteBatchInto and the partial
  // variant): kept in the pooled scratch so repeated batches reuse the
  // group/pointer vector capacity instead of allocating per call.
  // groups[0..n_groups) are live for the current call; the tail keeps its
  // warmed member-vector capacity for the next batch.
  std::vector<BatchGroup> groups;
  size_t n_groups = 0;
  std::vector<size_t> singles;
  std::vector<uint8_t> pending;
  std::vector<WeightRow> rows;

  ExecScratch() {
    group_leaf.type = Node::Type::kLeaf;
    group_leaf.intervals.pieces.reserve(1);
  }

  /// Reuses (or appends) a group slot, clearing only per-call state.
  BatchGroup& AppendGroup() {
    if (n_groups == groups.size()) groups.emplace_back();
    BatchGroup& g = groups[n_groups++];
    g.members.clear();
    g.prob = ProbTable();
    g.wt = WeightTable();
    g.need_wt = false;
    return g;
  }
};

// Leases a scratch from the engine's pool for one execution; allocates
// only when the pool is dry (first call, or more concurrent executions
// than ever before). Shared by every execution entry point.
struct AqpEngine::ScratchLease {
  explicit ScratchLease(const AqpEngine* e) : eng(e), s(e->pool_->Acquire()) {
    if (s == nullptr) s = std::make_unique<ExecScratch>();
  }
  ~ScratchLease() { eng->pool_->Release(std::move(s)); }
  ExecScratch& operator*() { return *s; }

  const AqpEngine* eng;
  std::unique_ptr<ExecScratch> s;
};

AqpEngine::AqpEngine(const PairwiseHist* synopsis, AqpEngineOptions options)
    : ph_(synopsis),
      options_(options),
      ks_(&GetKernels(options.kernels)),
      pool_(std::make_unique<ScratchPool>()) {}

AqpEngine::~AqpEngine() = default;
AqpEngine::AqpEngine(AqpEngine&&) noexcept = default;
AqpEngine& AqpEngine::operator=(AqpEngine&&) noexcept = default;

// ---------------------------------------------------------------------------
// Predicate normalization with delayed transformation.

StatusOr<AqpEngine::Node> AqpEngine::Normalize(
    const PredicateNode& node) const {
  if (node.type == PredicateNode::Type::kCondition) {
    Node leaf;
    leaf.type = Node::Type::kLeaf;
    PH_ASSIGN_OR_RETURN(leaf.column,
                        ph_->ColumnIndex(node.condition.column));
    leaf.intervals =
        ConditionToIntervals(node.condition, ph_->transform(leaf.column));
    return leaf;
  }

  const bool is_and = node.type == PredicateNode::Type::kAnd;
  Node out;
  out.type = is_and ? Node::Type::kAnd : Node::Type::kOr;

  // Consolidate leaf children that touch the same column (the paper's
  // delayed transformation): intersect for AND, union for OR.
  std::vector<Node> leaves;
  for (const auto& child : node.children) {
    PH_ASSIGN_OR_RETURN(Node c, Normalize(child));
    if (c.type == Node::Type::kLeaf) {
      bool merged = false;
      for (Node& existing : leaves) {
        if (existing.column == c.column) {
          existing.intervals =
              is_and ? IntervalSet::Intersect(existing.intervals, c.intervals)
                     : IntervalSet::Union(existing.intervals, c.intervals);
          merged = true;
          break;
        }
      }
      if (!merged) leaves.push_back(std::move(c));
    } else {
      out.children.push_back(std::move(c));
    }
  }
  for (Node& leaf : leaves) out.children.push_back(std::move(leaf));
  if (out.children.size() == 1) return std::move(out.children[0]);
  return out;
}

bool AqpEngine::HasOr(const Node& node) {
  if (node.type == Node::Type::kOr) return true;
  for (const Node& c : node.children) {
    if (HasOr(c)) return true;
  }
  return false;
}

void AqpEngine::CollectLeaves(const Node& node,
                              std::vector<const Node*>* leaves) {
  if (node.type == Node::Type::kLeaf) {
    leaves->push_back(&node);
    return;
  }
  for (const Node& c : node.children) CollectLeaves(c, leaves);
}

const IntervalSet* AqpEngine::FindAggClip(const Node& node, size_t agg_col) {
  // Sound only for conjunctive contexts: a root leaf, or a leaf directly
  // under the root AND.
  if (node.type == Node::Type::kLeaf) {
    return node.column == agg_col ? &node.intervals : nullptr;
  }
  if (node.type != Node::Type::kAnd) return nullptr;
  for (const Node& c : node.children) {
    if (c.type == Node::Type::kLeaf && c.column == agg_col) {
      return &c.intervals;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Grid selection.

AqpEngine::Grid AqpEngine::ChooseGrid(size_t agg_col, const Node* root,
                                      bool has_or) const {
  Grid grid;
  grid.dim = &ph_->hist1d(agg_col);
  if (!options_.use_pair_grid || root == nullptr) return grid;

  std::vector<const Node*> leaves;
  CollectLeaves(*root, &leaves);
  for (const Node* leaf : leaves) {
    if (leaf->column == agg_col) continue;
    PairView pv = ph_->GetPair(agg_col, leaf->column);
    if (!pv.valid()) continue;
    // The pair grid counts rows where BOTH columns are non-null. Under a
    // pure conjunction that exclusion is exact (a null predicate column
    // fails the predicate anyway); under OR it would wrongly drop rows
    // that satisfy a different branch, so only null-free columns qualify.
    if (has_or && ph_->transform(leaf->column).has_nulls) continue;
    if (pv.agg_dim().NumBins() > grid.dim->NumBins()) {
      grid.dim = &pv.agg_dim();
      grid.pair = pv;
      grid.pair_pred_col = leaf->column;
    }
  }
  return grid;
}

// ---------------------------------------------------------------------------
// Fast-path transfer maps (grid bin → refined agg bin of a leaf's pair),
// precomputed at compile time so execution avoids per-bin binary searches.

std::vector<uint32_t> AqpEngine::TransferMap(size_t agg_col, size_t col,
                                             const Grid& grid) const {
  if (col == agg_col) return {};
  if (grid.IsPair() && col == grid.pair_pred_col) return {};
  PairView pair = ph_->GetPair(agg_col, col);
  if (!pair.valid()) return {};
  const HistogramDim& gdim = *grid.dim;
  const HistogramDim& agg_dim = pair.agg_dim();
  const size_t k = gdim.NumBins();
  std::vector<uint32_t> map(k);
  for (size_t g = 0; g < k; ++g) {
    double mid = (gdim.edges[g] + gdim.edges[g + 1]) / 2.0;
    map[g] = static_cast<uint32_t>(agg_dim.BinIndex(mid));
  }
  return map;
}

void AqpEngine::FillTransferMaps(Node* node, size_t agg_col,
                                 const Grid& grid) const {
  if (node->type == Node::Type::kLeaf) {
    node->g2ta = TransferMap(agg_col, node->column, grid);
    return;
  }
  for (Node& c : node->children) FillTransferMaps(&c, agg_col, grid);
}

// ---------------------------------------------------------------------------
// Per-bin satisfaction probabilities (reference path).

AqpEngine::Prob AqpEngine::LeafProb(size_t agg_col, const Node& leaf,
                                    const Grid& grid) const {
  const HistogramDim& gdim = *grid.dim;
  const size_t k = gdim.NumBins();
  Prob prob;
  prob.p.assign(k, 0.0);
  prob.lo.assign(k, 0.0);
  prob.hi.assign(k, 0.0);

  if (leaf.column == agg_col) {
    // Same-column predicate: coverage over the aggregation grid itself.
    Coverage cov = ComputeCoverage(gdim, leaf.intervals, ph_->min_points(),
                                   ph_->critical_cache());
    prob.p = cov.beta;
    prob.lo = cov.lo;
    prob.hi = cov.hi;
    return prob;
  }

  if (grid.IsPair() && leaf.column == grid.pair_pred_col) {
    // The grid is this leaf's own pair: exact per-grid-bin probabilities
    // from the cell matrix (Eq. 27 on the refined grid), each grid bin's
    // sparse row reduced by the same ReduceRow the fast path uses — with
    // identical coverage values and run descriptors, so the two paths are
    // bit-equal by construction.
    const HistogramDim& pred_dim = grid.pair.pred_dim();
    const size_t kp = pred_dim.NumBins();
    std::vector<double> cbeta(kp, 0.0), clo(kp, 0.0), chi(kp, 0.0);
    std::vector<uint32_t> cruns(2 * leaf.intervals.pieces.size());
    std::vector<uint32_t> csegs(2 * leaf.intervals.pieces.size());
    CoverageSpan cov;
    cov.beta = cbeta.data();
    cov.lo = clo.data();
    cov.hi = chi.data();
    cov.runs = cruns.empty() ? nullptr : cruns.data();
    cov.segs = csegs.empty() ? nullptr : csegs.data();
    cov.max_runs = cov.max_segs = leaf.intervals.pieces.size();
    ComputeCoverageInto(pred_dim, leaf.intervals, ph_->min_points(),
                        ph_->critical_cache(), &cov);
    for (size_t g = 0; g < k; ++g) {
      double acc[3];
      if (!ReduceRow(grid.pair, g, cov, acc)) {
        continue;  // prob vectors are zero-initialized
      }
      prob.p[g] = acc[0];
      prob.lo[g] = acc[1];
      prob.hi[g] = acc[2];
    }
    ks_->norm_prob3(gdim.counts.data(), prob.p.data(), prob.lo.data(),
                    prob.hi.data(), prob.p.data(), prob.lo.data(),
                    prob.hi.data(), 0, k);
    return prob;
  }

  // Cross-column leaf on a different pair: compute the conditional
  // probability per refined bin of THAT pair's agg dimension (Eq. 27), then
  // transfer onto the grid by locating each grid bin inside the pair's agg
  // dimension (both are refinements of the same 1-d edges; a grid bin that
  // straddles pair bins takes the value at its midpoint). This keeps the
  // full resolution of every pairwise histogram instead of collapsing
  // non-grid leaves to 1-d-parent granularity.
  PairView pair = ph_->GetPair(agg_col, leaf.column);
  const HistogramDim& pred_dim = pair.pred_dim();
  const HistogramDim& agg_dim = pair.agg_dim();
  const size_t kp = pred_dim.NumBins();
  std::vector<double> cbeta(kp, 0.0), clo(kp, 0.0), chi(kp, 0.0);
  std::vector<uint32_t> cruns(2 * leaf.intervals.pieces.size());
  std::vector<uint32_t> csegs(2 * leaf.intervals.pieces.size());
  CoverageSpan cov;
  cov.beta = cbeta.data();
  cov.lo = clo.data();
  cov.hi = chi.data();
  cov.runs = cruns.empty() ? nullptr : cruns.data();
  cov.segs = csegs.empty() ? nullptr : csegs.data();
  cov.max_runs = cov.max_segs = leaf.intervals.pieces.size();
  ComputeCoverageInto(pred_dim, leaf.intervals, ph_->min_points(),
                      ph_->critical_cache(), &cov);
  const size_t ka = agg_dim.NumBins();
  std::vector<double> pa(ka, 0.0), pa_lo(ka, 0.0), pa_hi(ka, 0.0);
  // Parent-level aggregation (exact null semantics) and the per-parent
  // fraction of 1-d rows that have the predicate column non-null — the
  // refined per-bin probabilities are conditioned on "both non-null" and
  // must be rescaled by that fraction before applying to full 1-d counts
  // (rows whose predicate column is null never satisfy the predicate).
  const HistogramDim& agg1d = ph_->hist1d(agg_col);
  const size_t k1 = agg1d.NumBins();
  std::vector<double> num1(k1, 0.0), num1_lo(k1, 0.0), num1_hi(k1, 0.0);
  std::vector<double> pair_rows1(k1, 0.0);
  for (size_t ta = 0; ta < ka; ++ta) {
    double acc[3];
    ReduceRow(pair, ta, cov, acc);
    double h = static_cast<double>(agg_dim.counts[ta]);
    pa[ta] = acc[0];
    pa_lo[ta] = acc[1];
    pa_hi[ta] = acc[2];
    size_t parent = agg_dim.parent.empty() ? ta : agg_dim.parent[ta];
    num1[parent] += acc[0];
    num1_lo[parent] += acc[1];
    num1_hi[parent] += acc[2];
    pair_rows1[parent] += h;
  }
  ks_->norm_prob3(agg_dim.counts.data(), pa.data(), pa_lo.data(),
                  pa_hi.data(), pa.data(), pa_lo.data(), pa_hi.data(), 0,
                  ka);
  std::vector<double> p1(k1), p1_lo(k1), p1_hi(k1);
  ks_->norm_prob3(agg1d.counts.data(), num1.data(), num1_lo.data(),
                  num1_hi.data(), p1.data(), p1_lo.data(), p1_hi.data(), 0,
                  k1);
  std::vector<double> non_null_frac(k1, 1.0);
  for (size_t t = 0; t < k1; ++t) {
    double h = static_cast<double>(agg1d.counts[t]);
    if (h <= 0) continue;
    non_null_frac[t] = std::clamp(pair_rows1[t] / h, 0.0, 1.0);
  }

  for (size_t g = 0; g < k; ++g) {
    double mid = (gdim.edges[g] + gdim.edges[g + 1]) / 2.0;
    size_t ta = agg_dim.BinIndex(mid);
    size_t parent = gdim.parent.empty() ? g : gdim.parent[g];
    if (agg_dim.counts[ta] > 0) {
      double scale = non_null_frac[parent];
      prob.p[g] = pa[ta] * scale;
      prob.lo[g] = pa_lo[ta] * scale;
      prob.hi[g] = pa_hi[ta] * scale;
    } else {
      prob.p[g] = p1[parent];
      prob.lo[g] = p1_lo[parent];
      prob.hi[g] = p1_hi[parent];
    }
  }
  return prob;
}

AqpEngine::Prob AqpEngine::EvalNode(size_t agg_col, const Node& node,
                                    const Grid& grid) const {
  if (node.type == Node::Type::kLeaf) return LeafProb(agg_col, node, grid);

  const size_t k = grid.dim->NumBins();
  Prob acc;
  const bool is_and = node.type == Node::Type::kAnd;
  // AND accumulates the product; OR accumulates the complement product
  // (Eq. 28), both starting at 1.
  acc.p.assign(k, 1.0);
  acc.lo.assign(k, 1.0);
  acc.hi.assign(k, 1.0);
  for (const Node& child : node.children) {
    Prob cp = EvalNode(agg_col, child, grid);
    for (size_t t = 0; t < k; ++t) {
      if (is_and) {
        acc.p[t] *= cp.p[t];
        acc.lo[t] *= cp.lo[t];
        acc.hi[t] *= cp.hi[t];
      } else {
        acc.p[t] *= 1.0 - cp.p[t];
        acc.lo[t] *= 1.0 - cp.hi[t];  // complement swaps the bounds
        acc.hi[t] *= 1.0 - cp.lo[t];
      }
    }
  }
  if (!is_and) {
    for (size_t t = 0; t < k; ++t) {
      acc.p[t] = 1.0 - acc.p[t];
      double lo = 1.0 - acc.hi[t];
      double hi = 1.0 - acc.lo[t];
      acc.lo[t] = lo;
      acc.hi[t] = hi;
    }
  }
  return acc;
}

// ---------------------------------------------------------------------------
// Weightings.

Weightings AqpEngine::WeightsFromProb(const HistogramDim& dim,
                                      const Prob& prob) const {
  const size_t k = dim.NumBins();
  Weightings wt;
  wt.w.resize(k);
  wt.lo.resize(k);
  wt.hi.resize(k);
  ProbSpan view;
  view.p = const_cast<double*>(prob.p.data());
  view.lo = const_cast<double*>(prob.lo.data());
  view.hi = const_cast<double*>(prob.hi.data());
  view.begin = 0;
  view.end = k;
  WtSpan out{wt.w.data(), wt.lo.data(), wt.hi.data(), 0, k};
  WeightsInto(*ph_, dim, view, out, *ks_);
  return wt;
}

StatusOr<Weightings> AqpEngine::ComputeWeightings(size_t agg_col,
                                                  const Query& query) const {
  Grid grid;
  grid.dim = &ph_->hist1d(agg_col);  // test hook: fixed 1-d layout
  const size_t k = grid.dim->NumBins();
  Prob prob;
  if (query.where.has_value()) {
    PH_ASSIGN_OR_RETURN(Node root, Normalize(*query.where));
    prob = EvalNode(agg_col, root, grid);
  } else {
    prob.p.assign(k, 1.0);
    prob.lo.assign(k, 1.0);
    prob.hi.assign(k, 1.0);
  }
  return WeightsFromProb(*grid.dim, prob);
}

// ---------------------------------------------------------------------------
// Compilation: everything that depends only on the query text and the
// synopsis structure (not on per-execution state) happens once here.

StatusOr<CompiledQuery> AqpEngine::Compile(const Query& query) const {
  CompiledQuery plan;
  plan.query_ = query;

  // Normalize the WHERE clause once (literal mapping into the code domain
  // + same-column consolidation).
  if (query.where.has_value()) {
    PH_ASSIGN_OR_RETURN(Node n, Normalize(*query.where));
    plan.where_ = std::move(n);
  }
  plan.has_or_ = plan.where_.has_value() && HasOr(*plan.where_);

  // GROUP BY resolution.
  if (!query.group_by.empty()) {
    PH_ASSIGN_OR_RETURN(plan.group_col_,
                        ph_->ColumnIndex(query.group_by));
    const ColumnTransform& tr = ph_->transform(plan.group_col_);
    if (tr.type == DataType::kCategorical) {
      plan.group_values_ = tr.rank_to_code.size();
    } else if (tr.max_code <= 4096) {
      plan.group_values_ = tr.max_code;
    } else {
      return Status::Unsupported(
          "GROUP BY on high-cardinality numeric column '" + query.group_by +
          "' (" + std::to_string(tr.max_code) + " distinct codes)");
    }
    if (plan.group_values_ == 0) plan.group_values_ = 1;
  }

  // Aggregation column; COUNT(*) rides on the first predicate column, or
  // the GROUP BY column when there is no predicate.
  const bool grouped = plan.grouped();
  if (!query.count_star) {
    PH_ASSIGN_OR_RETURN(plan.agg_col_, ph_->ColumnIndex(query.agg_column));
  } else {
    std::vector<std::string> pred_cols = query.PredicateColumns();
    if (!pred_cols.empty()) {
      PH_ASSIGN_OR_RETURN(plan.agg_col_, ph_->ColumnIndex(pred_cols[0]));
    } else if (grouped) {
      plan.agg_col_ = plan.group_col_;
    } else {
      // COUNT(*) with no predicate: answered exactly from N at execution.
      plan.agg_col_ = 0;
      return plan;
    }
  }

  // Grid selection looks only at which columns carry predicates, never at
  // the literal values, so for grouped queries a full-range stand-in leaf
  // on the group column selects the same grid every per-value execution
  // would.
  if (grouped) {
    Node leaf;
    leaf.type = Node::Type::kLeaf;
    leaf.column = plan.group_col_;
    leaf.intervals = IntervalSet::Of(
        1.0, static_cast<double>(ph_->transform(plan.group_col_).max_code));
    std::optional<Node> combined = plan.where_;  // copy; compile-only cost
    if (combined.has_value()) {
      if (combined->type == Node::Type::kAnd) {
        combined->children.push_back(std::move(leaf));
      } else {
        Node root;
        root.type = Node::Type::kAnd;
        root.children.push_back(std::move(*combined));
        root.children.push_back(std::move(leaf));
        combined = std::move(root);
      }
    } else {
      combined = std::move(leaf);
    }
    plan.grid_ = ChooseGrid(plan.agg_col_, &*combined, plan.has_or_);
  } else {
    plan.grid_ = ChooseGrid(plan.agg_col_,
                            plan.where_.has_value() ? &*plan.where_ : nullptr,
                            plan.has_or_);
  }

  // Same-column clip from the WHERE tree (the per-value GROUP BY leaf is
  // folded in at execution time when it lands on the aggregation column).
  if (plan.where_.has_value()) {
    const IntervalSet* clip = FindAggClip(*plan.where_, plan.agg_col_);
    if (clip != nullptr) plan.agg_clip_ = *clip;
  }

  plan.single_column_ = !query.count_star && query.SingleColumn();

  // Fast-path transfer maps: one per cross-column leaf plus one for the
  // per-value GROUP BY leaf (same column every execution).
  if (plan.where_.has_value()) {
    FillTransferMaps(&*plan.where_, plan.agg_col_, plan.grid_);
  }
  if (grouped) {
    plan.group_g2ta_ = TransferMap(plan.agg_col_, plan.group_col_, plan.grid_);
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Execution: coverage + weighting + aggregation over a compiled plan.

Weightings AqpEngine::ComputeWeightsRef(const CompiledQuery& plan,
                                        const Node* extra_group_leaf) const {
  const size_t agg_col = plan.agg_col_;
  const Grid& grid = plan.grid_;
  const size_t k = grid.dim->NumBins();

  // Satisfaction probabilities: the normalized WHERE tree, ANDed with the
  // per-value group leaf. The conjunction distributes over the per-bin
  // products of Eq. 28, so evaluating the two factors separately is
  // identical to evaluating one combined tree.
  Prob prob;
  if (plan.where_.has_value()) {
    prob = EvalNode(agg_col, *plan.where_, grid);
  } else {
    prob.p.assign(k, 1.0);
    prob.lo.assign(k, 1.0);
    prob.hi.assign(k, 1.0);
  }
  if (extra_group_leaf != nullptr) {
    Prob gp = EvalNode(agg_col, *extra_group_leaf, grid);
    for (size_t t = 0; t < k; ++t) {
      prob.p[t] *= gp.p[t];
      prob.lo[t] *= gp.lo[t];
      prob.hi[t] *= gp.hi[t];
    }
  }
  return WeightsFromProb(*grid.dim, prob);
}

StatusOr<AggResult> AqpEngine::ExecuteScalar(const CompiledQuery& plan,
                                             const Node* extra_group_leaf,
                                             ExecScratch& scratch) const {
  const size_t agg_col = plan.agg_col_;
  const Grid& grid = plan.grid_;
  const size_t k = grid.dim->NumBins();

  Weightings wt = ComputeWeightsRef(plan, extra_group_leaf);
  const IntervalSet* agg_clip =
      ResolveAggClip(plan.agg_clip_, extra_group_leaf, agg_col);
  bool single = ResolveSingle(plan.single_column_, extra_group_leaf, agg_col);
  scratch.arena.Reset();
  WtSpan view{wt.w.data(), wt.lo.data(), wt.hi.data(), 0, k};
  return AggregateImpl(*ph_, options_, *ks_, plan.query_.func, agg_col, grid,
                       view, single, agg_clip, scratch.arena);
}

StatusOr<AggResult> AqpEngine::ExecuteScalarFast(
    const CompiledQuery& plan, const Node* extra_group_leaf,
    const std::vector<uint32_t>* extra_g2ta, ExecScratch& scratch) const {
  ExecArena& arena = scratch.arena;
  arena.Reset();
  const size_t agg_col = plan.agg_col_;
  const Grid& grid = plan.grid_;
  const AggFunc func = plan.query_.func;

  // O(log k) COUNT shortcut (see TryCountShortcutFast).
  if (extra_group_leaf == nullptr) {
    AggResult r;
    if (TryCountShortcutFast(plan, &r)) return r;
  }

  WtSpan wt = ComputeWeightSpanFast(
      *ph_, arena, *ks_, agg_col,
      plan.where_.has_value() ? &*plan.where_ : nullptr, extra_group_leaf,
      extra_g2ta, grid);
  const IntervalSet* agg_clip =
      ResolveAggClip(plan.agg_clip_, extra_group_leaf, agg_col);
  bool single = ResolveSingle(plan.single_column_, extra_group_leaf, agg_col);
  return AggregateImpl(*ph_, options_, *ks_, func, agg_col, grid, wt, single,
                       agg_clip, arena);
}

Status AqpEngine::ExecutePartialScalar(
    const CompiledQuery& plan, const Node* extra_group_leaf,
    const std::vector<uint32_t>* extra_g2ta, ExecScratch& scratch,
    PartialAggregate* out) const {
  ExecArena& arena = scratch.arena;
  arena.Reset();
  const size_t agg_col = plan.agg_col_;
  const Grid& grid = plan.grid_;
  const size_t k = grid.dim->NumBins();

  const IntervalSet* agg_clip =
      ResolveAggClip(plan.agg_clip_, extra_group_leaf, agg_col);
  const bool single =
      ResolveSingle(plan.single_column_, extra_group_leaf, agg_col);

  // Same weighting pipelines as ExecuteScalarFast / ExecuteScalar, ending
  // in mergeable statistics instead of a finalized AggResult.
  WtSpan wt;
  Weightings ref_store;  // reference-path backing storage
  if (options_.use_fast_path) {
    wt = ComputeWeightSpanFast(
        *ph_, arena, *ks_, agg_col,
        plan.where_.has_value() ? &*plan.where_ : nullptr, extra_group_leaf,
        extra_g2ta, grid);
  } else {
    ref_store = ComputeWeightsRef(plan, extra_group_leaf);
    wt = WtSpan{ref_store.w.data(), ref_store.lo.data(),
                ref_store.hi.data(), 0, k};
  }
  FillPartialFromWeights(*ph_, options_, *ks_, plan.query_.func, agg_col,
                         grid, wt, single, agg_clip, arena, out);
  return Status::OK();
}

Status AqpEngine::ExecutePartialInto(const CompiledQuery& plan,
                                     PartialResult* out) const {
  ScratchLease lease(this);
  ExecScratch& scratch = *lease;

  out->groups.clear();
  if (!plan.grouped()) {
    PartialAggregate agg;
    // COUNT(*) with no predicate: this segment's exact row count.
    if (plan.query_.count_star && !plan.where_.has_value()) {
      agg.count = agg.count_lo = agg.count_hi =
          static_cast<double>(ph_->total_rows());
      agg.empty = ph_->total_rows() == 0;
    } else {
      PH_RETURN_IF_ERROR(
          ExecutePartialScalar(plan, nullptr, nullptr, scratch, &agg));
    }
    out->groups.push_back(
        PartialResult::Group{std::string(), std::move(agg)});
    return Status::OK();
  }

  const ColumnTransform& tr = ph_->transform(plan.group_col_);
  for (uint64_t code = 1; code <= plan.group_values_; ++code) {
    Node& leaf = scratch.group_leaf;
    leaf.column = plan.group_col_;
    leaf.intervals.pieces.clear();
    leaf.intervals.pieces.emplace_back(static_cast<double>(code),
                                       static_cast<double>(code));
    PartialAggregate agg;
    PH_RETURN_IF_ERROR(
        ExecutePartialScalar(plan, &leaf, &plan.group_g2ta_, scratch, &agg));
    // Keep any group with estimated mass — even one below the grouped
    // COUNT display threshold: segments accumulate before filtering.
    if (agg.empty) continue;
    out->groups.push_back(
        PartialResult::Group{FormatGroupLabel(tr, code), std::move(agg)});
  }
  return Status::OK();
}

Status AqpEngine::ExecuteInto(const CompiledQuery& plan,
                              QueryResult* result) const {
  ScratchLease lease(this);
  ExecScratch& scratch = *lease;

  // Reuse the caller's group storage: overwrite warm slots in place and
  // only grow (or shrink) when the group count changes.
  size_t used = 0;
  auto slot = [&](const AggResult& agg) -> std::string& {
    if (used < result->groups.size()) {
      result->groups[used].agg = agg;
    } else {
      result->groups.push_back(QueryResult::Group{std::string(), agg});
    }
    return result->groups[used++].label;
  };

  if (!plan.grouped()) {
    // COUNT(*) with no predicate: exact row count.
    if (plan.query_.count_star && !plan.where_.has_value()) {
      AggResult r;
      r.estimate = r.lower = r.upper =
          static_cast<double>(ph_->total_rows());
      slot(r).clear();
      result->groups.resize(used);
      return Status::OK();
    }
    AggResult agg;
    if (options_.use_fast_path) {
      PH_ASSIGN_OR_RETURN(agg,
                          ExecuteScalarFast(plan, nullptr, nullptr, scratch));
    } else {
      PH_ASSIGN_OR_RETURN(agg, ExecuteScalar(plan, nullptr, scratch));
    }
    slot(agg).clear();
    result->groups.resize(used);
    return Status::OK();
  }

  const ColumnTransform& tr = ph_->transform(plan.group_col_);
  for (uint64_t code = 1; code <= plan.group_values_; ++code) {
    AggResult agg;
    if (options_.use_fast_path) {
      Node& leaf = scratch.group_leaf;
      leaf.column = plan.group_col_;
      leaf.intervals.pieces.clear();
      leaf.intervals.pieces.emplace_back(static_cast<double>(code),
                                         static_cast<double>(code));
      PH_ASSIGN_OR_RETURN(
          agg, ExecuteScalarFast(plan, &leaf, &plan.group_g2ta_, scratch));
    } else {
      Node leaf;
      leaf.type = Node::Type::kLeaf;
      leaf.column = plan.group_col_;
      leaf.intervals = IntervalSet::Of(static_cast<double>(code),
                                       static_cast<double>(code));
      PH_ASSIGN_OR_RETURN(agg, ExecuteScalar(plan, &leaf, scratch));
    }
    bool empty_count =
        plan.query_.func == AggFunc::kCount && agg.estimate <= 0.5;
    if (agg.empty_selection || empty_count) continue;
    slot(agg) = FormatGroupLabel(tr, code);
  }
  result->groups.resize(used);
  return Status::OK();
}

StatusOr<QueryResult> AqpEngine::Execute(const CompiledQuery& plan) const {
  QueryResult result;
  PH_RETURN_IF_ERROR(ExecuteInto(plan, &result));
  return result;
}

StatusOr<QueryResult> AqpEngine::Execute(const Query& query) const {
  PH_ASSIGN_OR_RETURN(CompiledQuery plan, Compile(query));
  return Execute(plan);
}

StatusOr<QueryResult> AqpEngine::ExecuteSql(const std::string& sql) const {
  PH_ASSIGN_OR_RETURN(Query q, ParseSql(sql));
  return Execute(q);
}

// ---------------------------------------------------------------------------
// Batch execution. Plans are grouped by shared weight pipeline — same
// aggregation column, same grid, value-equal normalized WHERE tree — so
// coverage, probabilities and Eq. 29 weighting run once per distinct
// predicate set while only the cheap Table-3 aggregation runs per plan.
// Every shared stage is a deterministic pure function of the shared
// inputs, and the per-plan stages run the exact single-query code, so
// results are bit-identical to looping ExecuteInto.

bool AqpEngine::TryCountShortcutFast(const CompiledQuery& plan,
                                     AggResult* out) const {
  // A single same-column predicate whose pieces fully cover every touched
  // bin needs only prefix-sum differences (all contributions are exact
  // integers, so the total is identical to the general path's per-bin
  // sum).
  if (plan.query_.func != AggFunc::kCount || plan.grid_.IsPair() ||
      !plan.where_.has_value() || plan.where_->type != Node::Type::kLeaf ||
      plan.where_->column != plan.agg_col_) {
    return false;
  }
  double total = 0.0;
  if (!CountFullyCovered(*plan.grid_.dim, plan.where_->intervals, &total)) {
    return false;
  }
  out->estimate = total / ph_->sampling_ratio();
  out->lower = out->upper = out->estimate;
  out->empty_selection = total <= kWeightEps;
  return true;
}

StatusOr<std::vector<CompiledQuery>> AqpEngine::CompileBatch(
    const std::vector<Query>& queries) const {
  std::vector<CompiledQuery> plans;
  plans.reserve(queries.size());
  for (const Query& q : queries) {
    PH_ASSIGN_OR_RETURN(CompiledQuery plan, Compile(q));
    plans.push_back(std::move(plan));
  }
  return plans;
}

namespace {

/// Scalar result written the way ExecuteInto's slot() writes it: one
/// unlabeled group, reusing warm storage.
void FillScalarResult(QueryResult* out, const AggResult& agg) {
  if (out->groups.empty()) {
    out->groups.push_back(QueryResult::Group{std::string(), agg});
  } else {
    out->groups[0].agg = agg;
    out->groups[0].label.clear();
  }
  out->groups.resize(1);
}

}  // namespace

void AqpEngine::GroupBatchPlans(const std::vector<const CompiledQuery*>& plans,
                                ExecScratch& scratch) const {
  scratch.n_groups = 0;
  scratch.singles.clear();
  for (size_t i = 0; i < plans.size(); ++i) {
    const CompiledQuery& p = *plans[i];
    if (p.grouped() || (p.query_.count_star && !p.where_.has_value())) {
      scratch.singles.push_back(i);
      continue;
    }
    bool joined = false;
    for (size_t gi = 0; gi < scratch.n_groups; ++gi) {
      BatchGroup& g = scratch.groups[gi];
      const CompiledQuery& h = *plans[g.members.front()];
      if (h.agg_col_ == p.agg_col_ && h.grid_.dim == p.grid_.dim &&
          h.where_.has_value() == p.where_.has_value() &&
          (!p.where_.has_value() || NodeEqual(*h.where_, *p.where_))) {
        g.members.push_back(i);
        joined = true;
        break;
      }
    }
    if (!joined) scratch.AppendGroup().members.push_back(i);
  }
}

void AqpEngine::WeightBatchGroups(
    const std::vector<const CompiledQuery*>& plans,
    ExecScratch& scratch) const {
  ExecArena& arena = scratch.arena;
  size_t max_bins = 0, n_wt = 0;
  for (size_t gi = 0; gi < scratch.n_groups; ++gi) {
    const BatchGroup& g = scratch.groups[gi];
    if (!g.need_wt) continue;
    ++n_wt;
    max_bins =
        std::max(max_bins, plans[g.members.front()]->grid_.dim->NumBins());
  }
  if (n_wt == 0) return;
  if (options_.use_fast_path) {
    // Per-batch arena sizing, then one probability pipeline per group and
    // a single batched Eq.-29 weighting call over the plan-major SoA
    // block.
    arena.Reserve(BatchArenaBytes(max_bins, n_wt));
    WeightTableBlock block(arena, max_bins, n_wt);
    scratch.rows.clear();
    scratch.rows.reserve(n_wt);
    size_t slot = 0;
    for (size_t gi = 0; gi < scratch.n_groups; ++gi) {
      BatchGroup& g = scratch.groups[gi];
      if (!g.need_wt) continue;
      const CompiledQuery& head = *plans[g.members.front()];
      g.prob = ComputeProbSpanFast(
          *ph_, arena, *ks_, head.agg_col_,
          head.where_.has_value() ? &*head.where_ : nullptr, nullptr,
          nullptr, head.grid_);
      g.wt = block.Row(slot++);
      g.wt.begin = g.prob.begin;
      g.wt.end = g.prob.end;
      scratch.rows.push_back(MakeWeightRow(*head.grid_.dim, g.prob, g.wt));
    }
    const WidenParams wp = WidenParamsOf(*ph_);
    ks_->weights_batch(scratch.rows.data(), scratch.rows.size(), wp.z,
                       wp.fpc, wp.widen ? 1 : 0);
  } else {
    for (size_t gi = 0; gi < scratch.n_groups; ++gi) {
      BatchGroup& g = scratch.groups[gi];
      if (!g.need_wt) continue;
      const CompiledQuery& head = *plans[g.members.front()];
      g.ref_wt = ComputeWeightsRef(head, nullptr);
      g.wt = WeightTable{g.ref_wt.w.data(), g.ref_wt.lo.data(),
                         g.ref_wt.hi.data(), 0,
                         head.grid_.dim->NumBins()};
    }
  }
}

Status AqpEngine::ExecuteBatchInto(
    const std::vector<const CompiledQuery*>& plans,
    const std::vector<QueryResult*>& results) const {
  if (plans.size() != results.size()) {
    return Status::InvalidArgument("batch plans/results size mismatch");
  }
  const size_t n = plans.size();
  for (size_t i = 0; i < n; ++i) {
    if (plans[i] == nullptr || results[i] == nullptr) {
      return Status::InvalidArgument("batch plan/result is null");
    }
  }

  // Group scalar plans by shared weight pipeline; everything the batch
  // path does not cover runs the single-query path — trivially identical
  // to the loop. All bookkeeping lives in the pooled scratch so repeated
  // batches are allocation-free in steady state.
  ScratchLease lease(this);
  ExecScratch& scratch = *lease;
  ExecArena& arena = scratch.arena;
  arena.Reset();

  GroupBatchPlans(plans, scratch);
  for (size_t i : scratch.singles) {
    PH_RETURN_IF_ERROR(ExecuteInto(*plans[i], results[i]));
  }
  if (scratch.n_groups == 0) return Status::OK();

  // COUNT shortcut members resolve immediately (the shortcut precedes
  // weighting in the single-query fast path too); a group whose members
  // all shortcut never computes weights.
  scratch.pending.assign(n, 0);
  for (size_t gi = 0; gi < scratch.n_groups; ++gi) {
    BatchGroup& g = scratch.groups[gi];
    for (size_t i : g.members) {
      AggResult agg;
      if (options_.use_fast_path && TryCountShortcutFast(*plans[i], &agg)) {
        FillScalarResult(results[i], agg);
      } else {
        scratch.pending[i] = 1;
        g.need_wt = true;
      }
    }
  }

  WeightBatchGroups(plans, scratch);

  // Table-3 aggregation per plan, deduping identical (func, single) plans
  // within a group (everything else in the aggregation's input is a group
  // invariant, so equal keys mean bit-identical results). At most
  // #functions × 2 single-flags distinct results per group, so the dedup
  // cache is a fixed stack array — no allocation on the hot path.
  constexpr size_t kMaxDone =
      2 * (static_cast<size_t>(AggFunc::kVar) + 1);
  static_assert(static_cast<size_t>(AggFunc::kVar) == 6,
                "AggFunc grew: update kMaxDone's last-enumerator anchor");
  for (size_t gi = 0; gi < scratch.n_groups; ++gi) {
    const BatchGroup& g = scratch.groups[gi];
    if (!g.need_wt) continue;
    struct Done {
      AggFunc func;
      bool single;
      AggResult agg;
    };
    Done done[kMaxDone];
    size_t n_done = 0;
    for (size_t i : g.members) {
      if (!scratch.pending[i]) continue;
      const CompiledQuery& p = *plans[i];
      const bool single = p.single_column_;
      AggResult agg;
      bool copied = false;
      for (size_t d = 0; d < n_done; ++d) {
        if (done[d].func == p.query_.func && done[d].single == single) {
          agg = done[d].agg;
          copied = true;
          break;
        }
      }
      if (!copied) {
        const IntervalSet* clip =
            p.agg_clip_.has_value() ? &*p.agg_clip_ : nullptr;
        agg = AggregateImpl(*ph_, options_, *ks_, p.query_.func, p.agg_col_,
                            p.grid_, g.wt, single, clip, arena);
        done[n_done++] = Done{p.query_.func, single, agg};
      }
      FillScalarResult(results[i], agg);
    }
  }
  return Status::OK();
}

Status AqpEngine::ExecutePartialBatchInto(
    const std::vector<const CompiledQuery*>& plans,
    const std::vector<PartialResult*>& out) const {
  if (plans.size() != out.size()) {
    return Status::InvalidArgument("batch plans/results size mismatch");
  }
  const size_t n = plans.size();
  for (size_t i = 0; i < n; ++i) {
    if (plans[i] == nullptr || out[i] == nullptr) {
      return Status::InvalidArgument("batch plan/result is null");
    }
  }

  ScratchLease lease(this);
  ExecScratch& scratch = *lease;
  ExecArena& arena = scratch.arena;
  arena.Reset();

  GroupBatchPlans(plans, scratch);
  for (size_t i : scratch.singles) {
    PH_RETURN_IF_ERROR(ExecutePartialInto(*plans[i], out[i]));
  }
  if (scratch.n_groups == 0) return Status::OK();

  // The partial path has no COUNT shortcut, so every group needs weights.
  for (size_t gi = 0; gi < scratch.n_groups; ++gi) {
    scratch.groups[gi].need_wt = true;
  }
  WeightBatchGroups(plans, scratch);

  for (size_t gi = 0; gi < scratch.n_groups; ++gi) {
    const BatchGroup& g = scratch.groups[gi];
    for (size_t i : g.members) {
      const CompiledQuery& p = *plans[i];
      const IntervalSet* clip =
          p.agg_clip_.has_value() ? &*p.agg_clip_ : nullptr;
      out[i]->groups.clear();
      PartialAggregate agg;
      FillPartialFromWeights(*ph_, options_, *ks_, p.query_.func, p.agg_col_,
                             p.grid_, g.wt, p.single_column_, clip, arena,
                             &agg);
      out[i]->groups.push_back(
          PartialResult::Group{std::string(), std::move(agg)});
    }
  }
  return Status::OK();
}

}  // namespace pairwisehist
