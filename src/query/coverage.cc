#include "query/coverage.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"

namespace pairwisehist {

IntervalSet IntervalSet::All() {
  IntervalSet s;
  s.pieces.emplace_back(-kInf, kInf);
  return s;
}

IntervalSet IntervalSet::None() { return IntervalSet(); }

IntervalSet IntervalSet::Of(double lo, double hi) {
  IntervalSet s;
  if (lo <= hi) s.pieces.emplace_back(lo, hi);
  return s;
}

IntervalSet IntervalSet::Union(const IntervalSet& a, const IntervalSet& b) {
  std::vector<std::pair<double, double>> all = a.pieces;
  all.insert(all.end(), b.pieces.begin(), b.pieces.end());
  std::sort(all.begin(), all.end());
  IntervalSet out;
  for (const auto& piece : all) {
    // Coalesce overlapping or integer-adjacent pieces ([1,5] + [6,9] = [1,9]).
    if (!out.pieces.empty() && piece.first <= out.pieces.back().second + 1) {
      out.pieces.back().second =
          std::max(out.pieces.back().second, piece.second);
    } else {
      out.pieces.push_back(piece);
    }
  }
  return out;
}

IntervalSet IntervalSet::Intersect(const IntervalSet& a,
                                   const IntervalSet& b) {
  IntervalSet out;
  size_t i = 0, j = 0;
  while (i < a.pieces.size() && j < b.pieces.size()) {
    double lo = std::max(a.pieces[i].first, b.pieces[j].first);
    double hi = std::min(a.pieces[i].second, b.pieces[j].second);
    if (lo <= hi) out.pieces.emplace_back(lo, hi);
    if (a.pieces[i].second < b.pieces[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

bool IntervalSet::Contains(double code) const {
  for (const auto& p : pieces) {
    if (code >= p.first && code <= p.second) return true;
    if (p.first > code) break;
  }
  return false;
}

IntervalSet ConditionToIntervals(const Condition& condition,
                                 const ColumnTransform& transform) {
  const double inf = IntervalSet::kInf;
  if (condition.is_string ||
      transform.type == DataType::kCategorical) {
    // Categorical: only equality semantics are meaningful; ranges over the
    // frequency ranks are still honoured for numeric literals (the rank
    // order is an implementation detail, but the exact engine sees the same
    // dictionary codes, so = / != round-trip identically).
    double code;
    if (condition.is_string) {
      auto c = transform.EncodeCategory(condition.text_value);
      if (!c.ok()) {
        // Unknown category: = matches nothing, != matches everything.
        return condition.op == CmpOp::kNe ? IntervalSet::All()
                                          : IntervalSet::None();
      }
      code = static_cast<double>(c.value());
    } else {
      // Numeric literal on a categorical column refers to a dictionary
      // code; map it through the frequency ranking.
      int64_t dict_code = static_cast<int64_t>(condition.value);
      if (dict_code < 0 ||
          dict_code >= static_cast<int64_t>(transform.code_to_rank.size())) {
        return condition.op == CmpOp::kNe ? IntervalSet::All()
                                          : IntervalSet::None();
      }
      code = static_cast<double>(
          transform.code_to_rank[static_cast<size_t>(dict_code)] + 1);
    }
    switch (condition.op) {
      case CmpOp::kEq:
        return IntervalSet::Of(code, code);
      case CmpOp::kNe:
        return IntervalSet::Union(IntervalSet::Of(-inf, code - 1),
                                  IntervalSet::Of(code + 1, inf));
      default:
        // Order comparisons on categorical values are not meaningful after
        // frequency ranking; treat them as unsatisfiable, like the paper's
        // unsupported-template cases.
        return IntervalSet::None();
    }
  }

  // Numeric: map the literal into the continuous code domain, then derive
  // the closed integer interval. Literals that land within float epsilon of
  // an integer code (e.g. 10.22 * 100 = 1021.999...) snap onto it.
  double c = transform.EncodeContinuous(condition.value);
  if (std::fabs(c - std::round(c)) < 1e-6) c = std::round(c);
  bool integral = (c == std::floor(c));
  switch (condition.op) {
    case CmpOp::kLt:
      return IntervalSet::Of(-inf, integral ? c - 1 : std::floor(c));
    case CmpOp::kLe:
      return IntervalSet::Of(-inf, std::floor(c));
    case CmpOp::kGt:
      return IntervalSet::Of(integral ? c + 1 : std::ceil(c), inf);
    case CmpOp::kGe:
      return IntervalSet::Of(std::ceil(c), inf);
    case CmpOp::kEq:
      return integral ? IntervalSet::Of(c, c) : IntervalSet::None();
    case CmpOp::kNe:
      if (!integral) return IntervalSet::All();
      return IntervalSet::Union(IntervalSet::Of(-inf, c - 1),
                                IntervalSet::Of(c + 1, inf));
  }
  return IntervalSet::None();
}

namespace {

// Coverage of one interval piece over one bin (Eqs. 15–16).
double PieceCoverage(double lo, double hi, double v_min, double v_max,
                     uint64_t unique) {
  if (hi < v_min || lo > v_max) return 0.0;
  if (lo <= v_min && hi >= v_max) return 1.0;
  if (unique <= 1) {
    // Single value: either in or out (the full/empty cases above catch
    // v_min == v_max, so reaching here means out).
    return 0.0;
  }
  if (lo == hi) {
    // Equality piece: Eq. 15.
    return 1.0 / static_cast<double>(unique);
  }
  if (unique == 2) {
    // Exactly two values (the extrema): Eq. 16's 0.5 case.
    int inside = (lo <= v_min && v_min <= hi) + (lo <= v_max && v_max <= hi);
    return 0.5 * inside;
  }
  // Fraction of the bin width covered, on the integer-uniform model.
  double a = std::max(lo, v_min);
  double b = std::min(hi, v_max);
  if (b < a) return 0.0;
  return (b - a + 1.0) / (v_max - v_min + 1.0);
}

}  // namespace

Coverage ComputeCoverage(const HistogramDim& dim, const IntervalSet& pred,
                         uint64_t min_points,
                         const Chi2CriticalCache& critical) {
  const size_t k = dim.NumBins();
  Coverage cov;
  cov.beta.assign(k, 0.0);
  cov.lo.assign(k, 0.0);
  cov.hi.assign(k, 0.0);
  for (size_t t = 0; t < k; ++t) {
    uint64_t h = dim.counts[t];
    if (h == 0) continue;
    double beta = 0;
    for (const auto& piece : pred.pieces) {
      beta += PieceCoverage(piece.first, piece.second, dim.v_min[t],
                            dim.v_max[t], dim.unique[t]);
    }
    beta = std::clamp(beta, 0.0, 1.0);
    cov.beta[t] = beta;
    if (beta == 0.0 || beta == 1.0) {
      cov.lo[t] = cov.hi[t] = beta;
      continue;
    }
    if (h < min_points) {
      // Non-passing bin: at least one point satisfies / fails (Eqs. 22–23
      // middle case).
      cov.lo[t] = std::min(beta, 1.0 / static_cast<double>(h));
      cov.hi[t] = std::max(beta, 1.0 - 1.0 / static_cast<double>(h));
      continue;
    }
    // Passing bin: Theorem 2 partial-bin-count bounds.
    int s = TerrellScottSubBins(dim.unique[t]);
    if (s < 2) {
      cov.lo[t] = cov.hi[t] = beta;
      continue;
    }
    double chi2 = critical.Get(s - 1);
    double hd = static_cast<double>(h);
    double a = std::floor(beta * s);
    double b = std::ceil(beta * s);
    double lo;
    if (a <= 0) {
      lo = 0.0;
    } else {
      lo = a / s * (1.0 - std::sqrt(chi2 * (s - a) / (hd * a)));
    }
    double hi;
    if (b >= s) {
      hi = 1.0;
    } else {
      hi = b / s * (1.0 + std::sqrt(chi2 * (s - b) / (hd * b)));
    }
    cov.lo[t] = std::clamp(lo, 0.0, beta);
    cov.hi[t] = std::clamp(hi, beta, 1.0);
  }
  return cov;
}

}  // namespace pairwisehist
