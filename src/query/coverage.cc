#include "query/coverage.h"

#include <span>

#include <algorithm>
#include <cmath>

#include "common/stats.h"

namespace pairwisehist {

IntervalSet IntervalSet::All() {
  IntervalSet s;
  s.pieces.emplace_back(-kInf, kInf);
  return s;
}

IntervalSet IntervalSet::None() { return IntervalSet(); }

IntervalSet IntervalSet::Of(double lo, double hi) {
  IntervalSet s;
  if (lo <= hi) s.pieces.emplace_back(lo, hi);
  return s;
}

IntervalSet IntervalSet::Union(const IntervalSet& a, const IntervalSet& b) {
  std::vector<std::pair<double, double>> all = a.pieces;
  all.insert(all.end(), b.pieces.begin(), b.pieces.end());
  std::sort(all.begin(), all.end());
  IntervalSet out;
  for (const auto& piece : all) {
    // Coalesce overlapping or integer-adjacent pieces ([1,5] + [6,9] = [1,9]).
    if (!out.pieces.empty() && piece.first <= out.pieces.back().second + 1) {
      out.pieces.back().second =
          std::max(out.pieces.back().second, piece.second);
    } else {
      out.pieces.push_back(piece);
    }
  }
  return out;
}

IntervalSet IntervalSet::Intersect(const IntervalSet& a,
                                   const IntervalSet& b) {
  IntervalSet out;
  size_t i = 0, j = 0;
  while (i < a.pieces.size() && j < b.pieces.size()) {
    double lo = std::max(a.pieces[i].first, b.pieces[j].first);
    double hi = std::min(a.pieces[i].second, b.pieces[j].second);
    if (lo <= hi) out.pieces.emplace_back(lo, hi);
    if (a.pieces[i].second < b.pieces[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

bool IntervalSet::Contains(double code) const {
  // Pieces are sorted and disjoint: binary-search the first piece starting
  // beyond `code`; only its predecessor can contain it.
  auto it = std::upper_bound(
      pieces.begin(), pieces.end(), code,
      [](double v, const std::pair<double, double>& p) { return v < p.first; });
  if (it == pieces.begin()) return false;
  --it;
  return code <= it->second;
}

IntervalSet ConditionToIntervals(const Condition& condition,
                                 const ColumnTransform& transform) {
  const double inf = IntervalSet::kInf;
  if (condition.is_string ||
      transform.type == DataType::kCategorical) {
    // Categorical: only equality semantics are meaningful; ranges over the
    // frequency ranks are still honoured for numeric literals (the rank
    // order is an implementation detail, but the exact engine sees the same
    // dictionary codes, so = / != round-trip identically).
    double code;
    if (condition.is_string) {
      auto c = transform.EncodeCategory(condition.text_value);
      if (!c.ok()) {
        // Unknown category: = matches nothing, != matches everything.
        return condition.op == CmpOp::kNe ? IntervalSet::All()
                                          : IntervalSet::None();
      }
      code = static_cast<double>(c.value());
    } else {
      // Numeric literal on a categorical column refers to a dictionary
      // code; map it through the frequency ranking.
      int64_t dict_code = static_cast<int64_t>(condition.value);
      if (dict_code < 0 ||
          dict_code >= static_cast<int64_t>(transform.code_to_rank.size())) {
        return condition.op == CmpOp::kNe ? IntervalSet::All()
                                          : IntervalSet::None();
      }
      code = static_cast<double>(
          transform.code_to_rank[static_cast<size_t>(dict_code)] + 1);
    }
    switch (condition.op) {
      case CmpOp::kEq:
        return IntervalSet::Of(code, code);
      case CmpOp::kNe:
        return IntervalSet::Union(IntervalSet::Of(-inf, code - 1),
                                  IntervalSet::Of(code + 1, inf));
      default:
        // Order comparisons on categorical values are not meaningful after
        // frequency ranking; treat them as unsatisfiable, like the paper's
        // unsupported-template cases.
        return IntervalSet::None();
    }
  }

  // Numeric: map the literal into the continuous code domain, then derive
  // the closed integer interval. Literals that land within float epsilon of
  // an integer code (e.g. 10.22 * 100 = 1021.999...) snap onto it.
  double c = transform.EncodeContinuous(condition.value);
  if (std::fabs(c - std::round(c)) < 1e-6) c = std::round(c);
  bool integral = (c == std::floor(c));
  switch (condition.op) {
    case CmpOp::kLt:
      return IntervalSet::Of(-inf, integral ? c - 1 : std::floor(c));
    case CmpOp::kLe:
      return IntervalSet::Of(-inf, std::floor(c));
    case CmpOp::kGt:
      return IntervalSet::Of(integral ? c + 1 : std::ceil(c), inf);
    case CmpOp::kGe:
      return IntervalSet::Of(std::ceil(c), inf);
    case CmpOp::kEq:
      return integral ? IntervalSet::Of(c, c) : IntervalSet::None();
    case CmpOp::kNe:
      if (!integral) return IntervalSet::All();
      return IntervalSet::Union(IntervalSet::Of(-inf, c - 1),
                                IntervalSet::Of(c + 1, inf));
  }
  return IntervalSet::None();
}

namespace {

// Coverage of one interval piece over one bin (Eqs. 15–16).
double PieceCoverage(double lo, double hi, double v_min, double v_max,
                     uint64_t unique) {
  if (hi < v_min || lo > v_max) return 0.0;
  if (lo <= v_min && hi >= v_max) return 1.0;
  if (unique <= 1) {
    // Single value: either in or out (the full/empty cases above catch
    // v_min == v_max, so reaching here means out).
    return 0.0;
  }
  if (lo == hi) {
    // Equality piece: Eq. 15.
    return 1.0 / static_cast<double>(unique);
  }
  if (unique == 2) {
    // Exactly two values (the extrema): Eq. 16's 0.5 case.
    int inside = (lo <= v_min && v_min <= hi) + (lo <= v_max && v_max <= hi);
    return 0.5 * inside;
  }
  // Fraction of the bin width covered, on the integer-uniform model.
  double a = std::max(lo, v_min);
  double b = std::min(hi, v_max);
  if (b < a) return 0.0;
  return (b - a + 1.0) / (v_max - v_min + 1.0);
}

// Theorem-2 bounds for one bin, shared verbatim between the reference
// full-scan coverage and the interval-localized path so both produce
// identical doubles. `beta_raw` is the un-clamped sum of piece coverages.
void FinishCoverageBin(uint64_t h, uint64_t unique, uint64_t min_points,
                       const Chi2CriticalCache& critical, double beta_raw,
                       double* beta_out, double* lo_out, double* hi_out) {
  double beta = std::clamp(beta_raw, 0.0, 1.0);
  *beta_out = beta;
  if (beta == 0.0 || beta == 1.0) {
    *lo_out = *hi_out = beta;
    return;
  }
  if (h < min_points) {
    // Non-passing bin: at least one point satisfies / fails (Eqs. 22–23
    // middle case).
    *lo_out = std::min(beta, 1.0 / static_cast<double>(h));
    *hi_out = std::max(beta, 1.0 - 1.0 / static_cast<double>(h));
    return;
  }
  // Passing bin: Theorem 2 partial-bin-count bounds.
  int s = TerrellScottSubBins(unique);
  if (s < 2) {
    *lo_out = *hi_out = beta;
    return;
  }
  double chi2 = critical.Get(s - 1);
  double hd = static_cast<double>(h);
  double a = std::floor(beta * s);
  double b = std::ceil(beta * s);
  double lo;
  if (a <= 0) {
    lo = 0.0;
  } else {
    lo = a / s * (1.0 - std::sqrt(chi2 * (s - a) / (hd * a)));
  }
  double hi;
  if (b >= s) {
    hi = 1.0;
  } else {
    hi = b / s * (1.0 + std::sqrt(chi2 * (s - b) / (hd * b)));
  }
  *lo_out = std::clamp(lo, 0.0, beta);
  *hi_out = std::clamp(hi, beta, 1.0);
}

// First bin whose half-open edge span [e_t, e_{t+1}) can intersect values
// >= v: the first t with edges[t+1] > v. Returns k when v is past the last
// edge.
size_t FirstOverlapBin(std::span<const double> edges, double v) {
  return static_cast<size_t>(
      std::upper_bound(edges.begin() + 1, edges.end(), v) -
      (edges.begin() + 1));
}

// One past the last bin whose edge span can intersect values <= v: the
// number of lower edges <= v.
size_t EndOverlapBin(std::span<const double> edges, double v) {
  return static_cast<size_t>(
      std::upper_bound(edges.begin(), edges.end() - 1, v) - edges.begin());
}

// Sub-range [f0, f1) of [a, b) whose bins a finite piece [lo, hi] fully
// covers by edges alone: edges[t] >= lo and edges[t+1] <= hi + 0.5. Values
// are integer codes and v_max < edges[t+1], so edges[t+1] <= hi + 0.5
// implies v_max <= hi; bins outside [f0, f1) may still be fully covered
// (checked per bin against v_min/v_max by the caller).
void FullSpan(std::span<const double> edges, double lo, double hi,
              size_t a, size_t b, size_t* f0, size_t* f1) {
  *f0 = static_cast<size_t>(
      std::lower_bound(edges.begin() + a, edges.begin() + b, lo) -
      edges.begin());
  size_t f1_raw = static_cast<size_t>(
      std::upper_bound(edges.begin() + 1 + a, edges.begin() + 1 + b,
                       hi + 0.5) -
      (edges.begin() + 1));
  *f1 = std::max(*f0, f1_raw);
}

}  // namespace

Coverage ComputeCoverage(const HistogramDim& dim, const IntervalSet& pred,
                         uint64_t min_points,
                         const Chi2CriticalCache& critical) {
  const size_t k = dim.NumBins();
  Coverage cov;
  cov.beta.assign(k, 0.0);
  cov.lo.assign(k, 0.0);
  cov.hi.assign(k, 0.0);
  for (size_t t = 0; t < k; ++t) {
    uint64_t h = dim.counts[t];
    if (h == 0) continue;
    double beta = 0;
    for (const auto& piece : pred.pieces) {
      beta += PieceCoverage(piece.first, piece.second, dim.v_min[t],
                            dim.v_max[t], dim.unique[t]);
    }
    FinishCoverageBin(h, dim.unique[t], min_points, critical, beta,
                      &cov.beta[t], &cov.lo[t], &cov.hi[t]);
  }
  return cov;
}

void ComputeCoverageInto(const HistogramDim& dim, const IntervalSet& pred,
                         uint64_t min_points,
                         const Chi2CriticalCache& critical,
                         CoverageSpan* out) {
  const size_t k = dim.NumBins();
  out->begin = out->end = 0;
  out->n_runs = 0;
  out->n_segs = 0;
  if (k == 0 || pred.Empty()) return;
  const std::span<const double> edges = dim.edges;

  // Overall candidate range: pieces are sorted, so the first piece's lower
  // bound and the last piece's upper bound delimit every touched bin.
  size_t t_begin = FirstOverlapBin(edges, pred.pieces.front().first);
  size_t t_end = EndOverlapBin(edges, pred.pieces.back().second);
  if (t_begin >= t_end) return;

  std::fill(out->beta + t_begin, out->beta + t_end, 0.0);

  // Accumulate piece coverages exactly as the reference does (per bin,
  // ascending piece order — pieces ascend, so visiting pieces in the outer
  // loop preserves each bin's addition order). Bins fully inside a piece
  // by edge inspection are recorded as a run descriptor when the caller
  // provided a run buffer (they are filled with the constant 1 in bulk
  // below and never touch metadata); without a buffer they take the
  // per-bin += 1.0 path.
  for (const auto& piece : pred.pieces) {
    const double lo = piece.first;
    const double hi = piece.second;
    size_t a = FirstOverlapBin(edges, lo);
    size_t b = EndOverlapBin(edges, hi);
    if (a >= b) continue;
    if (out->segs != nullptr) {
      // Record (merging adjacent/overlapping) candidate segments.
      if (out->n_segs > 0 &&
          static_cast<size_t>(out->segs[2 * out->n_segs - 1]) >= a) {
        out->segs[2 * out->n_segs - 1] =
            std::max(out->segs[2 * out->n_segs - 1],
                     static_cast<uint32_t>(b));
      } else if (out->n_segs < out->max_segs) {
        out->segs[2 * out->n_segs] = static_cast<uint32_t>(a);
        out->segs[2 * out->n_segs + 1] = static_cast<uint32_t>(b);
        ++out->n_segs;
      } else {
        // Capacity exhausted (cannot happen with the callers' one-slot-
        // per-piece sizing): widen the last segment to stay sound.
        out->segs[2 * out->n_segs - 1] = static_cast<uint32_t>(b);
      }
    }
    size_t f0, f1;
    FullSpan(edges, lo, hi, a, b, &f0, &f1);
    for (size_t t = a; t < f0; ++t) {
      out->beta[t] +=
          PieceCoverage(lo, hi, dim.v_min[t], dim.v_max[t], dim.unique[t]);
    }
    if (f1 > f0 && out->runs != nullptr && out->n_runs < out->max_runs) {
      // Disjoint pieces cannot add coverage to bins fully inside this one,
      // so their β is exactly 1 regardless of the other pieces; skip the
      // accumulation entirely.
      out->runs[2 * out->n_runs] = static_cast<uint32_t>(f0);
      out->runs[2 * out->n_runs + 1] = static_cast<uint32_t>(f1);
      ++out->n_runs;
    } else {
      for (size_t t = f0; t < f1; ++t) out->beta[t] += 1.0;
    }
    for (size_t t = f1; t < b; ++t) {
      out->beta[t] +=
          PieceCoverage(lo, hi, dim.v_min[t], dim.v_max[t], dim.unique[t]);
    }
  }

  size_t run_i = 0;
  for (size_t t = t_begin; t < t_end; ++t) {
    if (run_i < out->n_runs && t >= out->runs[2 * run_i]) {
      // Inside a recorded run: bulk-filled below; jump past it.
      t = out->runs[2 * run_i + 1] - 1;
      ++run_i;
      continue;
    }
    uint64_t h = dim.counts[t];
    if (h == 0) {
      out->beta[t] = out->lo[t] = out->hi[t] = 0.0;
      continue;
    }
    FinishCoverageBin(h, dim.unique[t], min_points, critical, out->beta[t],
                      &out->beta[t], &out->lo[t], &out->hi[t]);
  }
  for (size_t r = 0; r < out->n_runs; ++r) {
    const size_t f0 = out->runs[2 * r];
    const size_t f1 = out->runs[2 * r + 1];
    std::fill(out->beta + f0, out->beta + f1, 1.0);
    std::fill(out->lo + f0, out->lo + f1, 1.0);
    std::fill(out->hi + f0, out->hi + f1, 1.0);
  }
  out->begin = t_begin;
  out->end = t_end;
}

bool CountFullyCovered(const HistogramDim& dim, const IntervalSet& pred,
                       double* total) {
  const std::span<const double> edges = dim.edges;
  const std::span<const uint64_t> prefix = dim.count_prefix;
  if (prefix.size() != dim.NumBins() + 1) return false;  // no exec index
  double sum = 0.0;
  for (const auto& piece : pred.pieces) {
    const double lo = piece.first;
    const double hi = piece.second;
    size_t a = FirstOverlapBin(edges, lo);
    size_t b = EndOverlapBin(edges, hi);
    if (a >= b) continue;
    size_t f0, f1;
    FullSpan(edges, lo, hi, a, b, &f0, &f1);
    // Boundary bins: fully covered (counted), untouched (skipped) or
    // partially covered (caller must take the general path).
    auto boundary = [&](size_t t) -> bool {
      if (dim.counts[t] == 0) return true;
      if (hi < dim.v_min[t] || lo > dim.v_max[t]) return true;  // untouched
      if (lo <= dim.v_min[t] && hi >= dim.v_max[t]) {
        sum += static_cast<double>(dim.counts[t]);
        return true;
      }
      return false;  // partial
    };
    for (size_t t = a; t < f0; ++t) {
      if (!boundary(t)) return false;
    }
    sum += static_cast<double>(prefix[f1] - prefix[f0]);
    for (size_t t = f1; t < b; ++t) {
      if (!boundary(t)) return false;
    }
  }
  *total = sum;
  return true;
}

}  // namespace pairwisehist
