// Mergeable per-segment partial aggregates.
//
// Cross-segment execution splits a query into one ExecutePartialInto call
// per sealed segment (coverage + weighting on that segment's own synopsis)
// followed by a deterministic serial MergePartials step. The merge rules:
//
//   COUNT     exact: sums of per-segment estimates and bounds.
//   SUM       exact: sums (an empty segment contributes zero).
//   AVG       count-weighted mean of segment means; bounds from the
//             box-constrained weighted-average extremes (segment weights
//             range over their own [count−, count+] intervals).
//   VAR       pooled variance (within + between): Σw(v+m²)/W − m̄²; lower
//             bound is the smallest segment lower bound (pooled variance
//             dominates the weighted mean of within-segment variances),
//             upper bound from extremal second moments.
//   MIN/MAX   exact: min/max of segment estimates and of their bounds.
//   MEDIAN    weighted cross-segment quantile merge: each segment exports
//             its touched bins as (value interval, de-sampled weight)
//             triples in the raw domain; the merged weighted CDF is walked
//             exactly like the single-segment Table-3 rule.
//
// Group results merge by label (first-seen order across segments in
// segment order), so per-segment categorical dictionaries only need to
// agree on strings, not on codes.
#ifndef PAIRWISEHIST_QUERY_PARTIAL_AGG_H_
#define PAIRWISEHIST_QUERY_PARTIAL_AGG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/simd.h"
#include "query/ast.h"

namespace pairwisehist {

/// Sufficient statistics of one query over one segment. `count` carries
/// the estimated matching-row mass (COUNT semantics, already de-sampled by
/// 1/ρ of the owning segment) for every function; `value` carries the
/// function-specific AggResult; `mean` is filled for VAR only; and
/// `median_bins` only for MEDIAN.
struct PartialAggregate {
  bool empty = true;  ///< no estimated matching mass in this segment
  double count = 0, count_lo = 0, count_hi = 0;
  AggResult value;
  AggResult mean;  ///< VAR only: the segment mean with bounds

  /// One touched bin of a MEDIAN query, decoded to the raw value domain
  /// with de-sampled weights.
  struct MedianBin {
    double v_lo = 0, v_hi = 0;
    double w = 0, w_lo = 0, w_hi = 0;
    uint64_t unique = 0;
  };
  std::vector<MedianBin> median_bins;
};

/// One segment's result: a group per emitted label ("" for scalar
/// queries). Grouped execution omits groups with no estimated mass.
struct PartialResult {
  struct Group {
    std::string label;
    PartialAggregate agg;
  };
  std::vector<Group> groups;
};

/// Merges per-segment partials for one (group, function) into a final
/// AggResult. Empty partials contribute nothing; all-empty yields
/// empty_selection (COUNT: estimate 0). `ks` selects the kernel tier for
/// the MEDIAN CDF merge (it can walk thousands of exported bins); null
/// means scalar. The merge itself is always serial and deterministic.
AggResult MergePartials(AggFunc func,
                        const std::vector<const PartialAggregate*>& parts,
                        const KernelOps* ks = nullptr);

/// Merges whole per-segment results by label into `out` (cleared first).
/// Group order: first seen, walking segments in order. Grouped COUNT
/// results drop groups whose merged estimate is <= 0.5, and grouped
/// non-COUNT results drop empty-selection groups, mirroring the
/// single-segment engine's filtering.
void MergePartialResults(AggFunc func, bool grouped,
                         const std::vector<PartialResult>& parts,
                         QueryResult* out, const KernelOps* ks = nullptr);

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_QUERY_PARTIAL_AGG_H_
