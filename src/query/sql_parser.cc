#include "query/sql_parser.h"

#include <cctype>
#include <cstdlib>

namespace pairwisehist {

namespace {

enum class TokenType {
  kIdent,
  kNumber,
  kString,
  kSymbol,  // operators and punctuation
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // identifier (upper-cased copy in `upper`), literal
  std::string upper;  // upper-cased text for keyword matching
  double number = 0;
  size_t pos = 0;  // byte offset for error messages
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : in_(input) {}

  StatusOr<Token> Next() {
    while (pos_ < in_.size() &&
           std::isspace(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
    Token t;
    t.pos = pos_;
    if (pos_ >= in_.size()) {
      t.type = TokenType::kEnd;
      return t;
    }
    char c = in_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < in_.size() &&
             (std::isalnum(static_cast<unsigned char>(in_[pos_])) ||
              in_[pos_] == '_' || in_[pos_] == '.')) {
        ++pos_;
      }
      t.type = TokenType::kIdent;
      t.text = in_.substr(start, pos_ - start);
      t.upper = t.text;
      for (char& ch : t.upper) ch = std::toupper(static_cast<unsigned char>(ch));
      return t;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '+' ||
        c == '.') {
      // Could be a number or a lone sign; try strtod.
      char* end = nullptr;
      double v = std::strtod(in_.c_str() + pos_, &end);
      if (end != in_.c_str() + pos_) {
        t.type = TokenType::kNumber;
        t.number = v;
        t.text = in_.substr(pos_, end - (in_.c_str() + pos_));
        pos_ = end - in_.c_str();
        return t;
      }
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      size_t start = ++pos_;
      std::string s;
      while (pos_ < in_.size()) {
        if (in_[pos_] == quote) {
          if (pos_ + 1 < in_.size() && in_[pos_ + 1] == quote) {
            s += quote;
            pos_ += 2;
            continue;
          }
          break;
        }
        s += in_[pos_++];
      }
      if (pos_ >= in_.size()) {
        return Status::InvalidArgument("SQL: unterminated string at offset " +
                                       std::to_string(start - 1));
      }
      ++pos_;  // closing quote
      t.type = TokenType::kString;
      t.text = std::move(s);
      return t;
    }
    // Multi-char operators first.
    static const char* kTwoChar[] = {"<=", ">=", "!=", "<>", "=="};
    for (const char* op : kTwoChar) {
      if (in_.compare(pos_, 2, op) == 0) {
        t.type = TokenType::kSymbol;
        t.text = op;
        pos_ += 2;
        return t;
      }
    }
    t.type = TokenType::kSymbol;
    t.text = std::string(1, c);
    ++pos_;
    return t;
  }

 private:
  const std::string& in_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(const std::string& sql) : lexer_(sql) {}

  StatusOr<Query> Parse() {
    PH_RETURN_IF_ERROR(Advance());
    PH_RETURN_IF_ERROR(ExpectKeyword("SELECT"));

    Query q;
    PH_ASSIGN_OR_RETURN(q.func, ParseAggFunc());
    PH_RETURN_IF_ERROR(ExpectSymbol("("));
    if (cur_.type == TokenType::kSymbol && cur_.text == "*") {
      q.count_star = true;
      if (q.func != AggFunc::kCount) {
        return Status::InvalidArgument(
            "SQL: '*' argument is only valid for COUNT");
      }
      PH_RETURN_IF_ERROR(Advance());
    } else if (cur_.type == TokenType::kIdent) {
      q.agg_column = cur_.text;
      PH_RETURN_IF_ERROR(Advance());
    } else {
      return ErrorHere("expected column name or '*'");
    }
    PH_RETURN_IF_ERROR(ExpectSymbol(")"));
    PH_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    if (cur_.type != TokenType::kIdent) {
      return ErrorHere("expected table name");
    }
    q.table = cur_.text;
    PH_RETURN_IF_ERROR(Advance());

    if (IsKeyword("WHERE")) {
      PH_RETURN_IF_ERROR(Advance());
      PH_ASSIGN_OR_RETURN(PredicateNode node, ParseOr());
      q.where = std::move(node);
    }
    if (IsKeyword("GROUP")) {
      PH_RETURN_IF_ERROR(Advance());
      PH_RETURN_IF_ERROR(ExpectKeyword("BY"));
      if (cur_.type != TokenType::kIdent) {
        return ErrorHere("expected GROUP BY column");
      }
      q.group_by = cur_.text;
      PH_RETURN_IF_ERROR(Advance());
    }
    if (cur_.type == TokenType::kSymbol && cur_.text == ";") {
      PH_RETURN_IF_ERROR(Advance());
    }
    if (cur_.type != TokenType::kEnd) {
      return ErrorHere("unexpected trailing input");
    }
    return q;
  }

 private:
  Status Advance() {
    PH_ASSIGN_OR_RETURN(cur_, lexer_.Next());
    return Status::OK();
  }

  bool IsKeyword(const std::string& kw) const {
    return cur_.type == TokenType::kIdent && cur_.upper == kw;
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!IsKeyword(kw)) {
      return ErrorHere("expected " + kw);
    }
    return Advance();
  }

  Status ExpectSymbol(const std::string& sym) {
    if (cur_.type != TokenType::kSymbol || cur_.text != sym) {
      return ErrorHere("expected '" + sym + "'");
    }
    return Advance();
  }

  Status ErrorHere(const std::string& what) const {
    return Status::InvalidArgument("SQL: " + what + " at offset " +
                                   std::to_string(cur_.pos));
  }

  StatusOr<AggFunc> ParseAggFunc() {
    if (cur_.type != TokenType::kIdent) {
      return ErrorHere("expected aggregation function");
    }
    std::string name = cur_.upper;
    PH_RETURN_IF_ERROR(Advance());
    if (name == "COUNT") return AggFunc::kCount;
    if (name == "SUM") return AggFunc::kSum;
    if (name == "AVG" || name == "MEAN") return AggFunc::kAvg;
    if (name == "MIN") return AggFunc::kMin;
    if (name == "MAX") return AggFunc::kMax;
    if (name == "MEDIAN") return AggFunc::kMedian;
    if (name == "VAR" || name == "VARIANCE") return AggFunc::kVar;
    return Status::InvalidArgument("SQL: unknown aggregation '" + name + "'");
  }

  StatusOr<PredicateNode> ParseOr() {
    PH_ASSIGN_OR_RETURN(PredicateNode left, ParseAnd());
    if (!IsKeyword("OR")) return left;
    PredicateNode node;
    node.type = PredicateNode::Type::kOr;
    node.children.push_back(std::move(left));
    while (IsKeyword("OR")) {
      PH_RETURN_IF_ERROR(Advance());
      PH_ASSIGN_OR_RETURN(PredicateNode right, ParseAnd());
      node.children.push_back(std::move(right));
    }
    return node;
  }

  StatusOr<PredicateNode> ParseAnd() {
    PH_ASSIGN_OR_RETURN(PredicateNode left, ParsePrimary());
    if (!IsKeyword("AND")) return left;
    PredicateNode node;
    node.type = PredicateNode::Type::kAnd;
    node.children.push_back(std::move(left));
    while (IsKeyword("AND")) {
      PH_RETURN_IF_ERROR(Advance());
      PH_ASSIGN_OR_RETURN(PredicateNode right, ParsePrimary());
      node.children.push_back(std::move(right));
    }
    return node;
  }

  StatusOr<PredicateNode> ParsePrimary() {
    if (cur_.type == TokenType::kSymbol && cur_.text == "(") {
      PH_RETURN_IF_ERROR(Advance());
      PH_ASSIGN_OR_RETURN(PredicateNode node, ParseOr());
      PH_RETURN_IF_ERROR(ExpectSymbol(")"));
      return node;
    }
    if (cur_.type != TokenType::kIdent) {
      return ErrorHere("expected predicate column or '('");
    }
    PredicateNode node;
    node.type = PredicateNode::Type::kCondition;
    node.condition.column = cur_.text;
    PH_RETURN_IF_ERROR(Advance());

    if (cur_.type != TokenType::kSymbol) {
      return ErrorHere("expected comparison operator");
    }
    std::string op = cur_.text;
    PH_RETURN_IF_ERROR(Advance());
    if (op == "<") node.condition.op = CmpOp::kLt;
    else if (op == "<=") node.condition.op = CmpOp::kLe;
    else if (op == ">") node.condition.op = CmpOp::kGt;
    else if (op == ">=") node.condition.op = CmpOp::kGe;
    else if (op == "=" || op == "==") node.condition.op = CmpOp::kEq;
    else if (op == "!=" || op == "<>") node.condition.op = CmpOp::kNe;
    else return ErrorHere("unknown operator '" + op + "'");

    if (cur_.type == TokenType::kNumber) {
      node.condition.value = cur_.number;
    } else if (cur_.type == TokenType::kString) {
      node.condition.is_string = true;
      node.condition.text_value = cur_.text;
    } else {
      return ErrorHere("expected literal");
    }
    PH_RETURN_IF_ERROR(Advance());
    return node;
  }

  Lexer lexer_;
  Token cur_;
};

}  // namespace

StatusOr<Query> ParseSql(const std::string& sql) {
  Parser parser(sql);
  return parser.Parse();
}

}  // namespace pairwisehist
