#include "query/batch_exec.h"

#include <algorithm>

#include "query/partial_agg.h"

namespace pairwisehist {

// ---------------------------------------------------------------------------
// SegmentedExecutor batch execution (declared in segment_exec.h; lives here
// with the rest of the batch machinery).

Status SegmentedExecutor::ExecuteBatchInto(
    const std::vector<const SegmentedPlan*>& plans,
    const std::vector<QueryResult*>& results) const {
  if (plans.size() != results.size()) {
    return Status::InvalidArgument("batch plans/results size mismatch");
  }
  const size_t nq = plans.size();
  if (nq == 0) return Status::OK();
  for (const SegmentedPlan* p : plans) {
    if (p == nullptr || !p->valid()) {
      return Status::Internal("SegmentedPlan used before Prepare");
    }
  }
  // Extend lazily compiled plans (post-append segments) up front, under
  // each plan's own mutex, so the fan-out below reads stable state.
  for (const SegmentedPlan* p : plans) {
    PH_RETURN_IF_ERROR(EnsurePlans(p->state_.get()));
  }

  const size_t nseg = engines_.size();
  if (nseg == 1) {
    // Monolithic special case: the whole batch in one engine call.
    std::vector<const CompiledQuery*> cps(nq);
    for (size_t q = 0; q < nq; ++q) {
      cps[q] = &plans[q]->state_->plans[0];
    }
    return engines_[0]->ExecuteBatchInto(cps, results);
  }

  // Fan the batch × segment tasks over the pool: one task per segment,
  // each running the whole batch's mergeable partials on that segment
  // through the engine's batched partial path (so grid sharing is
  // amortized inside every segment too). Pruned (plan, segment) pairs
  // contribute nothing, exactly like single-plan execution.
  std::vector<std::vector<PartialResult>> parts(
      nq, std::vector<PartialResult>(nseg));
  std::vector<Status> statuses(nseg, Status::OK());
  auto work = [&](size_t s) {
    std::vector<const CompiledQuery*> cps;
    std::vector<PartialResult*> outs;
    cps.reserve(nq);
    outs.reserve(nq);
    for (size_t q = 0; q < nq; ++q) {
      SegmentedPlan::State* st = plans[q]->state_.get();
      if (st->skip[s]) continue;
      cps.push_back(&st->plans[s]);
      outs.push_back(&parts[q][s]);
    }
    if (!cps.empty()) {
      statuses[s] = engines_[s]->ExecutePartialBatchInto(cps, outs);
    }
  };
  size_t live = 0;
  for (size_t s = 0; s < nseg; ++s) {
    bool any = false;
    for (size_t q = 0; q < nq && !any; ++q) {
      any = plans[q]->state_->skip[s] == 0;
    }
    live += any ? 1 : 0;
  }
  if (live > 1 && pool_ != nullptr) {
    pool_->Run(nseg, work);
  } else {
    for (size_t s = 0; s < nseg; ++s) work(s);
  }
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }

  // Deterministic serial merge per query in segment order — the same
  // merge the single-plan path runs, so any exec_threads (and the batch
  // itself) leaves results bit-identical to the per-query loop.
  const KernelOps* ks = &GetKernels(options_.engine.kernels);
  for (size_t q = 0; q < nq; ++q) {
    const Query& query = plans[q]->state_->query;
    MergePartialResults(query.func, !query.group_by.empty(), parts[q],
                        results[q], ks);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// PreparedBatch

Status PreparedBatch::ExecuteInto(std::vector<QueryResult>* results) const {
  if (exec_ == nullptr) {
    return Status::Internal("PreparedBatch used before Db::PrepareBatch");
  }
  const size_t nq = plan_of_query_.size();
  results->resize(nq);
  if (plans_.size() == nq) {
    // No duplicates: plan_of_query_ is the identity by construction, so
    // execute straight into the caller's (warm) results — no scatter
    // copies on the hot path.
    std::vector<const SegmentedPlan*> plan_ptrs(nq);
    std::vector<QueryResult*> result_ptrs(nq);
    for (size_t i = 0; i < nq; ++i) {
      plan_ptrs[i] = &plans_[i];
      result_ptrs[i] = &(*results)[i];
    }
    return exec_->ExecuteBatchInto(plan_ptrs, result_ptrs);
  }
  // Execute the distinct plans as one batch, then scatter to statement
  // order (duplicates copy the shared result — identical by determinism).
  std::vector<QueryResult> distinct(plans_.size());
  std::vector<const SegmentedPlan*> plan_ptrs(plans_.size());
  std::vector<QueryResult*> result_ptrs(plans_.size());
  for (size_t i = 0; i < plans_.size(); ++i) {
    plan_ptrs[i] = &plans_[i];
    result_ptrs[i] = &distinct[i];
  }
  PH_RETURN_IF_ERROR(exec_->ExecuteBatchInto(plan_ptrs, result_ptrs));
  for (size_t q = 0; q < nq; ++q) {
    (*results)[q] = distinct[plan_of_query_[q]];
  }
  return Status::OK();
}

StatusOr<std::vector<QueryResult>> PreparedBatch::Execute() const {
  std::vector<QueryResult> results;
  PH_RETURN_IF_ERROR(ExecuteInto(&results));
  return results;
}

}  // namespace pairwisehist
