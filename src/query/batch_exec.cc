#include "query/batch_exec.h"

#include <algorithm>

#include "query/partial_agg.h"

namespace pairwisehist {

// ---------------------------------------------------------------------------
// SegmentedExecutor batch execution (declared in segment_exec.h; lives here
// with the rest of the batch machinery).

Status SegmentedExecutor::ExecuteBatchInto(
    const std::vector<const SegmentedPlan*>& plans,
    const std::vector<QueryResult*>& results) const {
  if (plans.size() != results.size()) {
    return Status::InvalidArgument("batch plans/results size mismatch");
  }
  if (plans.empty()) return Status::OK();
  PoolLease<BatchExecScratch> lease(batch_pool_.get());
  return ExecuteBatchImpl(plans.data(), results.data(), plans.size(), *lease);
}

Status SegmentedExecutor::ExecuteBatchInto(const SegmentedPlan* plans,
                                           QueryResult* results,
                                           size_t n) const {
  if (n == 0) return Status::OK();
  PoolLease<BatchExecScratch> lease(batch_pool_.get());
  BatchExecScratch& scratch = *lease;
  scratch.plan_ptrs.resize(n);
  scratch.result_ptrs.resize(n);
  for (size_t i = 0; i < n; ++i) {
    scratch.plan_ptrs[i] = &plans[i];
    scratch.result_ptrs[i] = &results[i];
  }
  return ExecuteBatchImpl(scratch.plan_ptrs.data(), scratch.result_ptrs.data(),
                          n, scratch);
}

Status SegmentedExecutor::ExecuteBatchImpl(const SegmentedPlan* const* plans,
                                           QueryResult* const* results,
                                           size_t nq,
                                           BatchExecScratch& scratch) const {
  for (size_t q = 0; q < nq; ++q) {
    if (plans[q] == nullptr || !plans[q]->valid()) {
      return Status::Internal("SegmentedPlan used before Prepare");
    }
  }
  // Extend lazily compiled plans (post-append segments) up front, under
  // each plan's own mutex, so the fan-out below reads stable state.
  for (size_t q = 0; q < nq; ++q) {
    PH_RETURN_IF_ERROR(EnsurePlans(plans[q]->state_.get()));
  }

  const size_t nseg = engines_.size();
  if (nseg == 1) {
    // Monolithic special case: the whole batch in one engine call.
    scratch.cps.resize(nq);
    scratch.outs.resize(nq);
    for (size_t q = 0; q < nq; ++q) {
      scratch.cps[q] = &plans[q]->state_->plans[0];
      scratch.outs[q] = results[q];
    }
    return engines_[0]->ExecuteBatchInto(scratch.cps, scratch.outs);
  }

  // Fan the batch × segment tasks over the pool: one task per segment,
  // each running the whole batch's mergeable partials on that segment
  // through the engine's batched partial path (so grid sharing is
  // amortized inside every segment too). Pruned (plan, segment) pairs
  // contribute nothing, exactly like single-plan execution. The merge
  // below reads every (query, segment) slot, so stale groups from a
  // previous lease are cleared up front.
  scratch.parts.resize(nq);
  scratch.statuses.assign(nseg, Status::OK());
  scratch.task_cps.resize(nseg);
  scratch.task_outs.resize(nseg);
  for (size_t q = 0; q < nq; ++q) {
    scratch.parts[q].resize(nseg);
    for (PartialResult& pr : scratch.parts[q]) pr.groups.clear();
  }
  auto work = [&](size_t s) {
    std::vector<const CompiledQuery*>& cps = scratch.task_cps[s];
    std::vector<PartialResult*>& outs = scratch.task_outs[s];
    cps.clear();
    outs.clear();
    for (size_t q = 0; q < nq; ++q) {
      SegmentedPlan::State* st = plans[q]->state_.get();
      if (st->skip[s]) continue;
      cps.push_back(&st->plans[s]);
      outs.push_back(&scratch.parts[q][s]);
    }
    if (!cps.empty()) {
      scratch.statuses[s] = engines_[s]->ExecutePartialBatchInto(cps, outs);
    }
  };
  size_t live = 0;
  for (size_t s = 0; s < nseg; ++s) {
    bool any = false;
    for (size_t q = 0; q < nq && !any; ++q) {
      any = plans[q]->state_->skip[s] == 0;
    }
    live += any ? 1 : 0;
  }
  if (live > 1 && pool_ != nullptr) {
    pool_->Run(nseg, work);
  } else {
    for (size_t s = 0; s < nseg; ++s) work(s);
  }
  for (const Status& s : scratch.statuses) {
    if (!s.ok()) return s;
  }
  if (options_.ledger != nullptr) {
    for (size_t q = 0; q < nq; ++q) {
      const SegmentedPlan::State& st = *plans[q]->state_;
      if (st.query.group_by.empty()) RecordFeedback(st, scratch.parts[q]);
    }
  }

  // Deterministic serial merge per query in segment order — the same
  // merge the single-plan path runs, so any exec_threads (and the batch
  // itself) leaves results bit-identical to the per-query loop.
  const KernelOps* ks = &GetKernels(options_.engine.kernels);
  for (size_t q = 0; q < nq; ++q) {
    const Query& query = plans[q]->state_->query;
    MergePartialResults(query.func, !query.group_by.empty(), scratch.parts[q],
                        results[q], ks);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// PreparedBatch

Status PreparedBatch::ExecuteInto(std::vector<QueryResult>* results) const {
  if (exec_ == nullptr) {
    return Status::Internal("PreparedBatch used before Db::PrepareBatch");
  }
  const size_t nq = plan_of_query_.size();
  results->resize(nq);
  if (plans_.size() == nq) {
    // No duplicates: plan_of_query_ is the identity by construction, so
    // execute straight into the caller's (warm) results through the
    // contiguous overload — no per-call pointer marshalling at all.
    return exec_->ExecuteBatchInto(plans_.data(), results->data(), nq);
  }
  // Execute the distinct plans as one batch, then scatter to statement
  // order (duplicates copy the shared result — identical by determinism).
  std::vector<QueryResult> distinct(plans_.size());
  PH_RETURN_IF_ERROR(
      exec_->ExecuteBatchInto(plans_.data(), distinct.data(), plans_.size()));
  for (size_t q = 0; q < nq; ++q) {
    (*results)[q] = distinct[plan_of_query_[q]];
  }
  return Status::OK();
}

StatusOr<std::vector<QueryResult>> PreparedBatch::Execute() const {
  std::vector<QueryResult> results;
  PH_RETURN_IF_ERROR(ExecuteInto(&results));
  return results;
}

}  // namespace pairwisehist
