// Exact (ground-truth) query engine over an in-memory Table.
//
// Stands in for the paper's SQLite ground truth: full scans with standard
// SQL semantics (predicates on NULL are false; aggregations skip NULLs;
// COUNT(*) counts rows, COUNT(col) counts non-null values). Used to compute
// relative errors, to validate bounds, and to enforce workload selectivity
// floors.
#ifndef PAIRWISEHIST_QUERY_EXACT_H_
#define PAIRWISEHIST_QUERY_EXACT_H_

#include <string>

#include "common/status.h"
#include "query/ast.h"
#include "storage/table.h"

namespace pairwisehist {

/// Executes `query` exactly against `table`.
StatusOr<QueryResult> ExecuteExact(const Table& table, const Query& query);

/// Parses and executes a SQL string exactly.
StatusOr<QueryResult> ExecuteExactSql(const Table& table,
                                      const std::string& sql);

/// Fraction of rows satisfying the predicate (1.0 when absent).
StatusOr<double> ExactSelectivity(const Table& table, const Query& query);

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_QUERY_EXACT_H_
