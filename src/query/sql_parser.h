// Recursive-descent parser for the supported SQL subset (Fig. 2's "SQL
// Parser" stage). Returns positioned error messages on malformed input.
//
// Grammar (case-insensitive keywords):
//   query     := SELECT func '(' (ident | '*') ')' FROM ident
//                [WHERE or_expr] [GROUP BY ident] [';']
//   func      := COUNT | SUM | AVG | MIN | MAX | MEDIAN | VAR | VARIANCE
//   or_expr   := and_expr (OR and_expr)*
//   and_expr  := primary (AND primary)*        // AND binds tighter than OR
//   primary   := '(' or_expr ')' | ident op literal
//   op        := '<' | '<=' | '>' | '>=' | '=' | '==' | '!=' | '<>'
//   literal   := number | quoted string
#ifndef PAIRWISEHIST_QUERY_SQL_PARSER_H_
#define PAIRWISEHIST_QUERY_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "query/ast.h"

namespace pairwisehist {

/// Parses one SQL statement into a Query.
StatusOr<Query> ParseSql(const std::string& sql);

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_QUERY_SQL_PARSER_H_
