#include "query/join_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "query/coverage.h"
#include "query/sql_parser.h"

namespace pairwisehist {

namespace {

constexpr double kWeightEps = 1e-9;

// Aggregates per-refined-bin numerators onto the 1-d parent bins of the
// aggregation column and normalizes by the 1-d counts.
void NormalizeToParents(const HistogramDim& agg1d,
                        const HistogramDim& agg_dim,
                        const std::vector<double>& num,
                        const std::vector<double>& num_lo,
                        const std::vector<double>& num_hi,
                        std::vector<double>* p, std::vector<double>* lo,
                        std::vector<double>* hi) {
  const size_t k1 = agg1d.NumBins();
  std::vector<double> acc(k1, 0.0), acc_lo(k1, 0.0), acc_hi(k1, 0.0);
  for (size_t ta = 0; ta < num.size(); ++ta) {
    size_t parent = agg_dim.parent.empty() ? ta : agg_dim.parent[ta];
    acc[parent] += num[ta];
    acc_lo[parent] += num_lo[ta];
    acc_hi[parent] += num_hi[ta];
  }
  p->assign(k1, 0.0);
  lo->assign(k1, 0.0);
  hi->assign(k1, 0.0);
  for (size_t t = 0; t < k1; ++t) {
    double h = static_cast<double>(agg1d.counts[t]);
    if (h <= 0) continue;
    (*p)[t] = std::clamp(acc[t] / h, 0.0, 1.0);
    (*lo)[t] = std::clamp(acc_lo[t] / h, 0.0, (*p)[t]);
    (*hi)[t] = std::clamp(acc_hi[t] / h, (*p)[t], 1.0);
  }
}

}  // namespace

JoinAqpEngine::Prob JoinAqpEngine::FactLeaf(
    size_t agg_col, size_t col, const IntervalSet& intervals) const {
  const HistogramDim& agg1d = fact_->hist1d(agg_col);
  Prob prob;
  if (col == agg_col) {
    Coverage cov = ComputeCoverage(agg1d, intervals, fact_->min_points(),
                                   fact_->critical_cache());
    prob.p = cov.beta;
    prob.lo = cov.lo;
    prob.hi = cov.hi;
    return prob;
  }
  PairView pair = fact_->GetPair(agg_col, col);
  const HistogramDim& pred_dim = pair.pred_dim();
  const HistogramDim& agg_dim = pair.agg_dim();
  Coverage cov = ComputeCoverage(pred_dim, intervals, fact_->min_points(),
                                 fact_->critical_cache());
  const size_t ka = agg_dim.NumBins();
  std::vector<double> num(ka, 0.0), num_lo(ka, 0.0), num_hi(ka, 0.0);
  for (size_t ta = 0; ta < ka; ++ta) {
    for (size_t tp = 0; tp < pred_dim.NumBins(); ++tp) {
      uint64_t cell = pair.Cell(ta, tp);
      if (cell == 0) continue;
      double c = static_cast<double>(cell);
      num[ta] += c * cov.beta[tp];
      num_lo[ta] += c * cov.lo[tp];
      num_hi[ta] += c * cov.hi[tp];
    }
  }
  NormalizeToParents(agg1d, agg_dim, num, num_lo, num_hi, &prob.p,
                     &prob.lo, &prob.hi);
  return prob;
}

StatusOr<JoinAqpEngine::Prob> JoinAqpEngine::DimLeaf(
    size_t agg_col, size_t dim_col, const IntervalSet& intervals) const {
  PH_ASSIGN_OR_RETURN(size_t dim_key_col, dim_->ColumnIndex(dim_key_));
  PH_ASSIGN_OR_RETURN(size_t fact_key_col, fact_->ColumnIndex(fact_key_));
  if (dim_col == dim_key_col) {
    // A predicate on the key itself: evaluate it directly on the fact side
    // (the key values coincide across tables by join semantics).
    return FactLeaf(agg_col, fact_key_col, intervals);
  }

  // 1. Coverage of the dimension attribute, conditioned per key bin of the
  //    dimension synopsis's (key, attr) pairwise histogram.
  PairView dim_pair = dim_->GetPair(dim_key_col, dim_col);
  if (!dim_pair.valid()) {
    return Status::Internal("join: missing (key, attr) pair histogram");
  }
  const HistogramDim& key_dim = dim_pair.agg_dim();   // key bins
  const HistogramDim& attr_dim = dim_pair.pred_dim(); // attr bins
  Coverage cov = ComputeCoverage(attr_dim, intervals, dim_->min_points(),
                                 dim_->critical_cache());
  const size_t kk = key_dim.NumBins();
  std::vector<double> q(kk, 0.0), q_lo(kk, 0.0), q_hi(kk, 0.0);
  for (size_t tk = 0; tk < kk; ++tk) {
    double acc = 0, acc_lo = 0, acc_hi = 0;
    for (size_t tp = 0; tp < attr_dim.NumBins(); ++tp) {
      uint64_t cell = dim_pair.Cell(tk, tp);
      if (cell == 0) continue;
      double c = static_cast<double>(cell);
      acc += c * cov.beta[tp];
      acc_lo += c * cov.lo[tp];
      acc_hi += c * cov.hi[tp];
    }
    double h = static_cast<double>(key_dim.counts[tk]);
    if (h > 0) {
      q[tk] = std::clamp(acc / h, 0.0, 1.0);
      q_lo[tk] = std::clamp(acc_lo / h, 0.0, q[tk]);
      q_hi[tk] = std::clamp(acc_hi / h, q[tk], 1.0);
    }
  }

  // The two synopses encode keys in their own code domains; transfer via
  // the RAW key value (Decode on the dim side, Decode on the fact side).
  const ColumnTransform& dim_key_tr = dim_->transform(dim_key_col);
  const ColumnTransform& fact_key_tr = fact_->transform(fact_key_col);

  // 2. Transfer onto the fact synopsis's (agg, key) histogram: each fact
  //    key bin takes the dimension-side conditional probability of the
  //    key bin containing its midpoint value.
  PairView fact_pair = fact_->GetPair(agg_col, fact_key_col);
  if (!fact_pair.valid()) {
    return Status::Internal("join: missing (agg, key) pair histogram");
  }
  const HistogramDim& fkey_dim = fact_pair.pred_dim();
  const HistogramDim& agg_dim = fact_pair.agg_dim();
  const size_t kf = fkey_dim.NumBins();
  std::vector<double> beta_f(kf, 0.0), beta_f_lo(kf, 0.0),
      beta_f_hi(kf, 0.0);
  for (size_t tf = 0; tf < kf; ++tf) {
    if (fkey_dim.counts[tf] == 0) continue;
    // Midpoint of the fact key bin, mapped through raw key space into the
    // dimension synopsis's key code domain.
    double mid_code = fkey_dim.Midpoint(tf);
    double raw = fact_key_tr.Decode(mid_code);
    double dim_code = dim_key_tr.EncodeContinuous(raw);
    size_t tk = key_dim.BinIndex(dim_code);
    beta_f[tf] = q[tk];
    beta_f_lo[tf] = q_lo[tk];
    beta_f_hi[tf] = q_hi[tk];
  }

  // 3. Fold through the fact (agg, key) cells exactly like a coverage
  //    vector (Eq. 27 with β replaced by the transferred conditionals).
  const size_t ka = agg_dim.NumBins();
  std::vector<double> num(ka, 0.0), num_lo(ka, 0.0), num_hi(ka, 0.0);
  for (size_t ta = 0; ta < ka; ++ta) {
    for (size_t tf = 0; tf < kf; ++tf) {
      uint64_t cell = fact_pair.Cell(ta, tf);
      if (cell == 0) continue;
      double c = static_cast<double>(cell);
      num[ta] += c * beta_f[tf];
      num_lo[ta] += c * beta_f_lo[tf];
      num_hi[ta] += c * beta_f_hi[tf];
    }
  }
  Prob prob;
  NormalizeToParents(fact_->hist1d(agg_col), agg_dim, num, num_lo, num_hi,
                     &prob.p, &prob.lo, &prob.hi);
  return prob;
}

StatusOr<QueryResult> JoinAqpEngine::Execute(const Query& query) const {
  if (!query.group_by.empty()) {
    return Status::Unimplemented("join engine: GROUP BY not supported");
  }
  if (query.func != AggFunc::kCount && query.func != AggFunc::kSum &&
      query.func != AggFunc::kAvg) {
    return Status::Unimplemented(
        "join engine: only COUNT/SUM/AVG are supported");
  }
  if (query.count_star) {
    return Status::Unimplemented(
        "join engine: aggregate a named fact column");
  }
  PH_ASSIGN_OR_RETURN(size_t agg_col, fact_->ColumnIndex(query.agg_column));

  // Flatten the predicate to conjunctive conditions.
  std::vector<const Condition*> conds;
  if (query.where.has_value()) {
    const PredicateNode& root = *query.where;
    if (root.type == PredicateNode::Type::kCondition) {
      conds.push_back(&root.condition);
    } else if (root.type == PredicateNode::Type::kAnd) {
      for (const auto& child : root.children) {
        if (child.type != PredicateNode::Type::kCondition) {
          return Status::Unimplemented(
              "join engine: only flat conjunctions are supported");
        }
        conds.push_back(&child.condition);
      }
    } else {
      return Status::Unimplemented("join engine: OR not supported");
    }
  }

  const HistogramDim& agg1d = fact_->hist1d(agg_col);
  const size_t k = agg1d.NumBins();
  Prob acc;
  acc.p.assign(k, 1.0);
  acc.lo.assign(k, 1.0);
  acc.hi.assign(k, 1.0);
  for (const Condition* cond : conds) {
    Prob leaf;
    auto fact_col = fact_->ColumnIndex(cond->column);
    if (fact_col.ok()) {
      leaf = FactLeaf(agg_col, fact_col.value(),
                      ConditionToIntervals(
                          *cond, fact_->transform(fact_col.value())));
    } else {
      PH_ASSIGN_OR_RETURN(size_t dim_col, dim_->ColumnIndex(cond->column));
      PH_ASSIGN_OR_RETURN(
          leaf, DimLeaf(agg_col, dim_col,
                        ConditionToIntervals(*cond,
                                             dim_->transform(dim_col))));
    }
    for (size_t t = 0; t < k; ++t) {
      acc.p[t] *= leaf.p[t];
      acc.lo[t] *= leaf.lo[t];
      acc.hi[t] *= leaf.hi[t];
    }
  }

  // Weightings and Table-3 aggregation (COUNT/SUM/AVG subset).
  const double rho = fact_->sampling_ratio();
  const ColumnTransform& tr = fact_->transform(agg_col);
  double total = 0, total_lo = 0, total_hi = 0;
  double num = 0, num_c_lo = 0, num_c_hi = 0;
  double sum_lo = 0, sum_hi = 0;
  for (size_t t = 0; t < k; ++t) {
    double h = static_cast<double>(agg1d.counts[t]);
    if (h <= 0) continue;
    double w = h * acc.p[t];
    double w_lo = h * acc.lo[t];
    double w_hi = h * acc.hi[t];
    total += w;
    total_lo += w_lo;
    total_hi += w_hi;
    double c = agg1d.Midpoint(t);
    CentreBounds cb = fact_->WeightedCentreBounds(agg1d, t);
    num += w * c;
    num_c_lo += w * cb.lo;
    num_c_hi += w * cb.hi;
    double raw_lo = tr.Decode(cb.lo), raw_hi = tr.Decode(cb.hi);
    sum_lo += std::min({w_lo * raw_lo, w_lo * raw_hi, w_hi * raw_lo,
                        w_hi * raw_hi});
    sum_hi += std::max({w_lo * raw_lo, w_lo * raw_hi, w_hi * raw_lo,
                        w_hi * raw_hi});
  }

  AggResult r;
  switch (query.func) {
    case AggFunc::kCount:
      r.estimate = total / rho;
      r.lower = total_lo / rho;
      r.upper = total_hi / rho;
      r.empty_selection = total <= kWeightEps;
      break;
    case AggFunc::kSum:
      if (total <= kWeightEps) {
        r.empty_selection = true;
        r.estimate = r.lower = r.upper =
            std::numeric_limits<double>::quiet_NaN();
      } else {
        r.estimate = 0;
        for (size_t t = 0; t < k; ++t) {
          double h = static_cast<double>(agg1d.counts[t]);
          r.estimate += h * acc.p[t] * tr.Decode(agg1d.Midpoint(t));
        }
        r.estimate /= rho;
        r.lower = sum_lo / rho;
        r.upper = sum_hi / rho;
      }
      break;
    case AggFunc::kAvg:
      if (total <= kWeightEps) {
        r.empty_selection = true;
        r.estimate = r.lower = r.upper =
            std::numeric_limits<double>::quiet_NaN();
      } else {
        r.estimate = tr.Decode(num / total);
        r.lower = tr.Decode(num_c_lo / total);
        r.upper = tr.Decode(num_c_hi / total);
      }
      break;
    default:
      break;
  }
  QueryResult result;
  result.groups.push_back({"", r});
  return result;
}

StatusOr<QueryResult> JoinAqpEngine::ExecuteSql(
    const std::string& sql) const {
  PH_ASSIGN_OR_RETURN(Query q, ParseSql(sql));
  return Execute(q);
}

}  // namespace pairwisehist
